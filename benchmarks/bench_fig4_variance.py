"""Figure 4 benchmark: effect of variance on LP−LF vs LP+LF.

Paper shape: both near perfect at negligible variance, both degrade as
variance grows, LP−LF faster; both level out once means are diluted.
"""

from _helpers import record

from repro.experiments import fig4_variance

COLUMNS = ["algorithm", "variance", "energy_mj", "accuracy"]


def test_fig4_variance(benchmark):
    rows = benchmark.pedantic(fig4_variance.run, rounds=1, iterations=1)
    record("fig4_variance", rows, COLUMNS, title="Figure 4: effect of variance")

    lf = [r for r in rows if r["algorithm"] == "lp-lf"]
    assert lf[0]["accuracy"] >= 0.9          # predictable regime
    assert lf[-1]["accuracy"] < lf[0]["accuracy"]  # diluted regime
