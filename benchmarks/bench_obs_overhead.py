"""Disabled-path observability overhead micro-benchmark (ISSUE bar).

When no :class:`~repro.obs.Instrumentation` is attached, every hook in
the hot path collapses to a shared no-op singleton —
``maybe_span(None, ...)`` returns ``NULL_SPAN`` and
``maybe_timer(None, ...)`` returns ``NULL_TIMER`` — so the disabled
path allocates nothing.  This benchmark prices that path:

- ``span_ns`` / ``timer_ns``: per-call cost of entering and exiting
  the null span / null timer, measured over a tight loop;
- ``hooks``: how many hook executions one real ``plan()`` performs,
  counted by running the identical work once *with* instrumentation
  attached (retained + dropped spans, plus every histogram
  observation — an over-count, which only makes the bar stricter);
- ``bare_s``: best-of wall time of the uninstrumented ``plan()``.

``overhead_fraction = hooks * max(span, timer) cost / bare_s`` — the
share of an uninstrumented planning run spent inside no-op
observability hooks.  The ISSUE bar, < 2%, is asserted here together
with the singleton identities that make the disabled path
allocation-free.  A machine-readable ``results/BENCH_obs_overhead.json``
is written for the regression gate, whose acceptance maximum re-checks
the 2% bar; the fraction is a machine-relative ratio, so it stays
meaningful across runner hardware.

A second row prices the *distributed* hooks on the service request
path (client span + trace adoption + server span + latency histogram
+ slow-request offer): request qps is measured end to end through an
uninstrumented client/service pair, hook executions are counted on an
instrumented twin, and the same < 2% bar is asserted on the resulting
fraction — so the telemetry plane provably costs nothing when off.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np
from _helpers import RESULTS_DIR, record

from repro.datagen.gaussian import random_gaussian_field
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.obs import NULL_SPAN, NULL_TIMER, Instrumentation, maybe_span, maybe_timer
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner

K = 10


def _context(n: int, m: int, instrumentation=None) -> PlanningContext:
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()
    topology = random_topology(n, rng=rng, radio_range=max(25.0, 200.0 / n**0.5))
    field = random_gaussian_field(n, rng).scaled_variance(4.0)
    samples = field.trace(m, rng).sample_matrix(K)
    budget = energy.message_cost(1) * 2 * K
    return PlanningContext(
        topology, energy, samples, K, budget,
        instrumentation=instrumentation,
    )


def _per_call_null_span(loops: int) -> float:
    start = time.perf_counter()
    for _ in range(loops):
        with maybe_span(None, "bench", tag=1):
            pass
    return (time.perf_counter() - start) / loops


def _per_call_null_timer(loops: int) -> float:
    start = time.perf_counter()
    for _ in range(loops):
        with maybe_timer(None, "bench"):
            pass
    return (time.perf_counter() - start) / loops


def _count_hooks(n: int, m: int) -> int:
    """Hook executions in one plan(), counted on an instrumented twin."""
    obs = Instrumentation()
    LPLFPlanner().plan(_context(n, m, instrumentation=obs))
    spans = obs.spans.retained + obs.spans.dropped
    observations = sum(h.count for h in obs.metrics.histograms.values())
    return spans + observations


def _per_call_null_adopt(loops: int) -> float:
    from repro.obs import NULL_SPAN
    from repro.obs.distributed import adopt_trace

    start = time.perf_counter()
    for _ in range(loops):
        adopt_trace(None, NULL_SPAN)
    return (time.perf_counter() - start) / loops


def _service_workload(requests: int, instrumented: bool):
    """A client/service pair plus the request sequence to time."""
    from repro.service.client import InProcessClient
    from repro.service.server import TopKService

    from repro.network.builder import random_topology

    rng = np.random.default_rng(77)
    nodes = 24
    service = TopKService(
        instrumentation=Instrumentation() if instrumented else None
    )
    client = InProcessClient(
        service,
        instrumentation=Instrumentation() if instrumented else None,
    )
    topology = random_topology(nodes, rng=rng, radio_range=70.0)
    topology_id = client.register_topology(topology)
    session = client.open_session(topology_id, 5, budget_mj=50.0)
    rows = [rng.normal(25, 3, nodes) for _ in range(3)]
    for row in rows:
        session.feed(row)
    queries = [rng.normal(25, 3, nodes) for _ in range(requests)]
    return service, client, session, queries


def _count_service_hooks(requests: int) -> int:
    """Distributed-hook executions per request sequence, counted on an
    instrumented twin (client spans, trace adoptions, server spans,
    latency observations, slow-request offers — all over-counted)."""
    service, client, session, queries = _service_workload(
        requests, instrumented=True
    )
    for row in queries:
        session.query(row)
    hooks = 0
    for obs in (service.instrumentation, client.instrumentation):
        hooks += obs.spans.retained + obs.spans.dropped
        hooks += sum(h.count for h in obs.metrics.histograms.values())
    hooks += len(service.slow_requests)  # offers actually retained
    hooks += requests  # one trace adoption per client request
    return hooks


def _service_row(quick: bool, span_s: float, timer_s: float) -> dict:
    requests = 60 if quick else 200
    adopt_s = _per_call_null_adopt(50_000 if quick else 200_000)
    hooks = _count_service_hooks(requests)
    bare_s = float("inf")
    for _ in range(3):
        __, __, session, queries = _service_workload(
            requests, instrumented=False
        )
        start = time.perf_counter()
        for row in queries:
            session.query(row)
        bare_s = min(bare_s, time.perf_counter() - start)
    fraction = hooks * max(span_s, timer_s, adopt_s) / bare_s
    return {
        "workload": f"service qps requests={requests}",
        "bare_s": bare_s,
        "span_ns": span_s * 1e9,
        "timer_ns": max(timer_s, adopt_s) * 1e9,
        "hooks": hooks,
        "overhead_fraction": fraction,
    }


def run(quick: bool = False) -> list[dict]:
    n, m = (30, 10) if quick else (60, 25)
    loops = 50_000 if quick else 200_000
    span_s = _per_call_null_span(loops)
    timer_s = _per_call_null_timer(loops)
    hooks = _count_hooks(n, m)

    planner = LPLFPlanner()
    bare_context = _context(n, m)
    bare_s = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        planner.plan(bare_context)
        bare_s = min(bare_s, time.perf_counter() - start)

    fraction = hooks * max(span_s, timer_s) / bare_s
    return [
        {
            "workload": f"plan lp-lf n={n} m={m}",
            "bare_s": bare_s,
            "span_ns": span_s * 1e9,
            "timer_ns": timer_s * 1e9,
            "hooks": hooks,
            "overhead_fraction": fraction,
        },
        _service_row(quick, span_s, timer_s),
    ]


def _archive(rows: list[dict], quick: bool) -> None:
    record(
        "obs_overhead",
        rows,
        columns=[
            "workload", "bare_s", "span_ns", "timer_ns", "hooks",
            "overhead_fraction",
        ],
        title="Disabled-instrumentation overhead on the planning hot path",
    )
    payload = {
        "benchmark": "obs_overhead",
        "quick": quick,
        "rows": rows,
        "acceptance": {
            # the 2% bar holds at every size, quick runs included
            "maxima": [{"metric": "overhead_fraction", "max": 0.02}],
            "enforced": True,
        },
    }
    (RESULTS_DIR / "BENCH_obs_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def _assert_bars(rows: list[dict], quick: bool) -> None:
    # the singletons ARE the disabled path: no per-call allocation
    assert maybe_span(None, "x", a=1) is NULL_SPAN
    assert maybe_timer(None, "x") is NULL_TIMER
    for row in rows:
        assert row["overhead_fraction"] < 0.02, row


def test_obs_overhead(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    rows = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    _archive(rows, quick)
    _assert_bars(rows, quick)


if __name__ == "__main__":
    quick_mode = "--quick" in sys.argv or bool(os.environ.get("BENCH_QUICK"))
    result_rows = run(quick=quick_mode)
    _archive(result_rows, quick_mode)
    _assert_bars(result_rows, quick_mode)
