"""Disabled-path observability overhead micro-benchmark (ISSUE bar).

When no :class:`~repro.obs.Instrumentation` is attached, every hook in
the hot path collapses to a shared no-op singleton —
``maybe_span(None, ...)`` returns ``NULL_SPAN`` and
``maybe_timer(None, ...)`` returns ``NULL_TIMER`` — so the disabled
path allocates nothing.  This benchmark prices that path:

- ``span_ns`` / ``timer_ns``: per-call cost of entering and exiting
  the null span / null timer, measured over a tight loop;
- ``hooks``: how many hook executions one real ``plan()`` performs,
  counted by running the identical work once *with* instrumentation
  attached (retained + dropped spans, plus every histogram
  observation — an over-count, which only makes the bar stricter);
- ``bare_s``: best-of wall time of the uninstrumented ``plan()``.

``overhead_fraction = hooks * max(span, timer) cost / bare_s`` — the
share of an uninstrumented planning run spent inside no-op
observability hooks.  The ISSUE bar, < 2%, is asserted here together
with the singleton identities that make the disabled path
allocation-free.  A machine-readable ``results/BENCH_obs_overhead.json``
is written for the regression gate, whose acceptance maximum re-checks
the 2% bar; the fraction is a machine-relative ratio, so it stays
meaningful across runner hardware.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np
from _helpers import RESULTS_DIR, record

from repro.datagen.gaussian import random_gaussian_field
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.obs import NULL_SPAN, NULL_TIMER, Instrumentation, maybe_span, maybe_timer
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner

K = 10


def _context(n: int, m: int, instrumentation=None) -> PlanningContext:
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()
    topology = random_topology(n, rng=rng, radio_range=max(25.0, 200.0 / n**0.5))
    field = random_gaussian_field(n, rng).scaled_variance(4.0)
    samples = field.trace(m, rng).sample_matrix(K)
    budget = energy.message_cost(1) * 2 * K
    return PlanningContext(
        topology, energy, samples, K, budget,
        instrumentation=instrumentation,
    )


def _per_call_null_span(loops: int) -> float:
    start = time.perf_counter()
    for _ in range(loops):
        with maybe_span(None, "bench", tag=1):
            pass
    return (time.perf_counter() - start) / loops


def _per_call_null_timer(loops: int) -> float:
    start = time.perf_counter()
    for _ in range(loops):
        with maybe_timer(None, "bench"):
            pass
    return (time.perf_counter() - start) / loops


def _count_hooks(n: int, m: int) -> int:
    """Hook executions in one plan(), counted on an instrumented twin."""
    obs = Instrumentation()
    LPLFPlanner().plan(_context(n, m, instrumentation=obs))
    spans = obs.spans.retained + obs.spans.dropped
    observations = sum(h.count for h in obs.metrics.histograms.values())
    return spans + observations


def run(quick: bool = False) -> list[dict]:
    n, m = (30, 10) if quick else (60, 25)
    loops = 50_000 if quick else 200_000
    span_s = _per_call_null_span(loops)
    timer_s = _per_call_null_timer(loops)
    hooks = _count_hooks(n, m)

    planner = LPLFPlanner()
    bare_context = _context(n, m)
    bare_s = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        planner.plan(bare_context)
        bare_s = min(bare_s, time.perf_counter() - start)

    fraction = hooks * max(span_s, timer_s) / bare_s
    return [
        {
            "workload": f"plan lp-lf n={n} m={m}",
            "bare_s": bare_s,
            "span_ns": span_s * 1e9,
            "timer_ns": timer_s * 1e9,
            "hooks": hooks,
            "overhead_fraction": fraction,
        }
    ]


def _archive(rows: list[dict], quick: bool) -> None:
    record(
        "obs_overhead",
        rows,
        columns=[
            "workload", "bare_s", "span_ns", "timer_ns", "hooks",
            "overhead_fraction",
        ],
        title="Disabled-instrumentation overhead on the planning hot path",
    )
    payload = {
        "benchmark": "obs_overhead",
        "quick": quick,
        "rows": rows,
        "acceptance": {
            # the 2% bar holds at every size, quick runs included
            "maxima": [{"metric": "overhead_fraction", "max": 0.02}],
            "enforced": True,
        },
    }
    (RESULTS_DIR / "BENCH_obs_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def _assert_bars(rows: list[dict], quick: bool) -> None:
    # the singletons ARE the disabled path: no per-call allocation
    assert maybe_span(None, "x", a=1) is NULL_SPAN
    assert maybe_timer(None, "x") is NULL_TIMER
    for row in rows:
        assert row["overhead_fraction"] < 0.02, row


def test_obs_overhead(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    rows = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    _archive(rows, quick)
    _assert_bars(rows, quick)


if __name__ == "__main__":
    quick_mode = "--quick" in sys.argv or bool(os.environ.get("BENCH_QUICK"))
    result_rows = run(quick=quick_mode)
    _archive(result_rows, quick_mode)
    _assert_bars(result_rows, quick_mode)
