"""Ablation: the footnote-1 DP vs LP−LF.

The paper's footnote 1 notes the LP−LF problem (a tree knapsack) admits
an arbitrarily good DP approximation but the LP framework generalizes
to local filtering and proofs.  This ablation checks the DP's solution
quality tracks LP−LF's across budgets, and records the runtime trade.
"""

import time

import numpy as np
from _helpers import record

from repro.datagen.gaussian import random_gaussian_field
from repro.experiments.common import evaluate_plan
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.dp import DPPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner

K = 8


def run():
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()
    topology = random_topology(50, rng=rng)
    field = random_gaussian_field(50, rng).scaled_variance(6.0)
    train = field.trace(20, rng)
    eval_trace = field.trace(12, rng)
    samples = train.sample_matrix(K)

    rows = []
    for factor in (1.0, 2.0, 3.5):
        budget = energy.message_cost(1) * K * factor
        context = PlanningContext(topology, energy, samples, K, budget)
        for planner in (LPNoLFPlanner(), DPPlanner(buckets=200)):
            start = time.perf_counter()
            plan = planner.plan(context)
            elapsed = time.perf_counter() - start
            evaluation = evaluate_plan(
                planner.name, plan, topology, energy, eval_trace, K
            )
            rows.append(
                {
                    "planner": planner.name,
                    "budget_mj": round(budget, 1),
                    "accuracy": evaluation.mean_accuracy,
                    "energy_mj": evaluation.mean_energy_mj,
                    "plan_seconds": elapsed,
                }
            )
    return rows


def test_ablation_dp(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_dp", rows, title="Ablation: DP (footnote 1) vs LP−LF")

    budgets = sorted({r["budget_mj"] for r in rows})
    for budget in budgets:
        lp = next(r for r in rows
                  if r["planner"] == "lp-no-lf" and r["budget_mj"] == budget)
        dp = next(r for r in rows
                  if r["planner"] == "dp-no-lf" and r["budget_mj"] == budget)
        # the DP tracks the LP's quality closely on its shared problem
        assert dp["accuracy"] >= lp["accuracy"] - 0.15