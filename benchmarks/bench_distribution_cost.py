"""Section 5 note: plan installation costs ≈ one collection phase,
and is amortized over many runs because re-triggers are cheap.
"""

import numpy as np
from _helpers import record

from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.plans.plan import QueryPlan
from repro.simulation.distribution import initial_distribution_cost, trigger_cost


def run():
    energy = EnergyModel.mica2()
    rng = np.random.default_rng(2006)
    rows = []
    for n in (30, 60, 100):
        topology = random_topology(n, rng=rng)
        plan = QueryPlan.naive_k(topology, 10)
        collection = plan.static_cost(energy)
        install = initial_distribution_cost(plan, energy)
        trigger = trigger_cost(plan, energy)
        rows.append(
            {
                "n": n,
                "collection_mj": collection,
                "install_mj": install,
                "install_over_collection": install / collection,
                "trigger_mj": trigger,
                "trigger_over_collection": trigger / collection,
            }
        )
    return rows


def test_distribution_cost(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("distribution_cost", rows,
           title="Distribution phases vs collection phase")
    for row in rows:
        # "on the order of the cost of one collection phase"
        assert 0.1 <= row["install_over_collection"] <= 10.0
        # re-triggers are much cheaper than collections
        assert row["trigger_over_collection"] < 0.5
