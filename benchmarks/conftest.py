"""Benchmark harness configuration.

Each ``bench_*.py`` file regenerates one table/figure of the paper's
evaluation (or one ablation), times the regeneration with
pytest-benchmark, prints the series, and archives it under
``benchmarks/results/`` — EXPERIMENTS.md records the shapes against the
paper's.  Run with::

    pytest benchmarks/ --benchmark-only
"""
