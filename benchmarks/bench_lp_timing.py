"""LP solve-time benchmark (§5 "Other Results").

The paper's CPLEX runs took seconds to ~minutes in the worst cases;
this records build+solve wall time of each formulation on the HiGHS
backend across problem sizes, the fast-path compile time, and the
parametric budget-sweep columns (one compile + ``solve_sweep`` over an
8-budget ladder vs per-budget cold compile+solve).
"""

from _helpers import record

from repro.experiments import lp_timing

COLUMNS = [
    "formulation", "n", "m", "variables", "constraints",
    "build_s", "fastbuild_s", "build_speedup", "solve_s",
    "sweep_s", "sweep_speedup",
]


def _check(rows):
    # the proof formulation is the largest, as the paper notes
    by_formulation = {}
    for row in rows:
        by_formulation.setdefault(row["formulation"], []).append(row)
    largest_proof = max(r["variables"] for r in by_formulation["prospector-proof"])
    largest_lf = max(r["variables"] for r in by_formulation["lp-lf"])
    assert largest_proof > largest_lf
    assert all(r["solve_s"] < 60 for r in rows)
    # compile sharing alone must not make sweeps slower than cold loops
    assert all(r["sweep_speedup"] > 0.8 for r in rows)


def test_lp_timing(benchmark):
    rows = benchmark.pedantic(lp_timing.run, rounds=1, iterations=1)
    record("lp_timing", rows, columns=COLUMNS, title="LP build+solve times")
    _check(rows)


if __name__ == "__main__":
    result_rows = lp_timing.run()
    record("lp_timing", result_rows, columns=COLUMNS,
           title="LP build+solve times")
    _check(result_rows)
