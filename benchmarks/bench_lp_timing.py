"""LP solve-time benchmark (§5 "Other Results").

The paper's CPLEX runs took seconds to ~minutes in the worst cases;
this records build+solve wall time of each formulation on the HiGHS
backend across problem sizes.
"""

from _helpers import record

from repro.experiments import lp_timing


def test_lp_timing(benchmark):
    rows = benchmark.pedantic(lp_timing.run, rounds=1, iterations=1)
    record("lp_timing", rows, title="LP build+solve times")

    # the proof formulation is the largest, as the paper notes
    by_formulation = {}
    for row in rows:
        by_formulation.setdefault(row["formulation"], []).append(row)
    largest_proof = max(r["variables"] for r in by_formulation["prospector-proof"])
    largest_lf = max(r["variables"] for r in by_formulation["lp-lf"])
    assert largest_proof > largest_lf
    assert all(r["solve_s"] < 60 for r in rows)
