"""Sharded-service scaling and pipelined-client throughput (ISSUE bars).

Three workload families over live socket deployments:

- ``scale``: one row per worker count (1, 2, 4).  ``groups`` distinct
  topologies, each with ``tenants`` equal-content sessions, routed by
  content hash across the workers; the timed loop fires pipelined
  query bursts across every session and drains them, so all workers
  execute concurrently.  ``scaling_speedup`` is each row's aggregate
  qps over the 1-worker row's.  The ISSUE bar — >= 3x at 4 workers —
  is only physically reachable with >= 4 usable cores, so it is
  asserted (and written into the acceptance block) only when the
  machine has them; every row records ``cores`` so a baseline
  from a small box is legible.
- ``pipeline``: one session on a 1-worker deployment; the same feed
  frames sent lockstep (one round trip each) and pipelined (bursts of
  ``BURST`` frames, one flush + one drain per burst).
  ``pipeline_speedup`` is the pipelined qps over lockstep — this bar
  (>= 2x) holds even on one core, because it removes per-request
  syscalls and context switches, not compute.
- ``wire``: the same pipelined query bursts on a 2-worker deployment
  under each wire protocol (``wire_v1`` JSON-lines, ``wire_v2``
  negotiated binary).  ``wire_speedup`` is v2's aggregate qps over
  v1's; both transcripts are collected and must agree exactly
  (``identical``, asserted always).
- ``parity``: the sharded deployment must be *byte-identical* to a
  single-process service on the same requests — same query replies
  (nodes, values, energy, accuracy) and same serialized plans —
  under **both** wire protocols.  Recorded as ``identical`` 1/0 and
  asserted always, full and quick.

``run(quick=True)`` (or ``--quick`` / ``BENCH_QUICK=1``) shrinks
worker counts and request volumes for the CI smoke job.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np
from _helpers import RESULTS_DIR, record

from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.service import (
    InProcessClient,
    ServiceConfig,
    ShardedService,
    TopKService,
)

K = 5
N = 30
WARMUP_ROWS = 3
BURST = 128
"""Pipelined frames per flush/drain cycle (stays under the server's
read-ahead bound so neither direction of the TCP stream stalls)."""

BUDGET = EnergyModel.mica2().message_cost(1) * 2.5 * K


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _config(sessions: int) -> ServiceConfig:
    return ServiceConfig(
        max_sessions=sessions + 4,
        cache_capacity=max(32, sessions + 4),
        replan_cache_capacity=max(16, sessions + 4),
    )


def _topologies(groups: int):
    rng = np.random.default_rng(2006)
    return [
        random_topology(N, rng=rng, radio_range=max(25.0, 200.0 / N**0.5))
        for __ in range(groups)
    ]


def _open_fleet(client, topologies, tenants: int, budget: float):
    """Register every topology, open ``tenants`` sessions per group,
    feed the shared warmup window, pay the first (planning) query."""
    rng = np.random.default_rng(7)
    warmup = [rng.normal(25.0, 3.0, N) for __ in range(WARMUP_ROWS)]
    probe = rng.normal(25.0, 3.0, N)
    handles = []
    for topology in topologies:
        topology_id = client.register_topology(topology)
        for __ in range(tenants):
            handle = client.open_session(topology_id, K, budget_mj=budget)
            for row in warmup:
                handle.feed(row)
            handle.query(probe)
            handles.append(handle)
    return handles


def _scale_row(workers: int, groups: int, tenants: int, queries: int) -> dict:
    """Aggregate pipelined-query throughput at one worker count."""
    sessions = groups * tenants
    with ShardedService(workers, _config(sessions)) as deployment:
        client = deployment.client()
        try:
            budget = BUDGET
            handles = _open_fleet(
                client, _topologies(groups), tenants, budget
            )
            rng = np.random.default_rng(99)
            readings = [rng.normal(25.0, 3.0, N) for __ in range(8)]
            fired = 0
            start = time.perf_counter()
            while fired < queries:
                burst = 0
                for handle in handles:
                    if fired + burst >= queries or burst >= BURST:
                        break
                    handle.query_nowait(readings[(fired + burst) % 8])
                    burst += 1
                for reply in client.drain():
                    assert len(reply.nodes) == K
                fired += burst
            elapsed = time.perf_counter() - start
        finally:
            client.close()
    return {
        "workload": "scale",
        "workers": workers,
        "sessions": sessions,
        "requests": queries,
        "cores": _cores(),
        "qps": queries / max(elapsed, 1e-12),
    }


def _pipeline_rows(feeds: int) -> list[dict]:
    """Lockstep vs pipelined feed throughput on one connection."""
    rng = np.random.default_rng(13)
    rows = [rng.normal(25.0, 3.0, N) for __ in range(16)]
    timings = {}
    with ShardedService(1, _config(2)) as deployment:
        for mode in ("lockstep", "pipelined"):
            client = deployment.client()
            try:
                handle = _open_fleet(
                    client, _topologies(1), 1, BUDGET
                )[0]
                start = time.perf_counter()
                if mode == "lockstep":
                    for index in range(feeds):
                        handle.feed(rows[index % 16])
                else:
                    fired = 0
                    while fired < feeds:
                        burst = min(BURST, feeds - fired)
                        for offset in range(burst):
                            handle.feed_nowait(
                                rows[(fired + offset) % 16]
                            )
                        for reply in client.drain():
                            assert reply.kind == "sample_accepted"
                        fired += burst
                timings[mode] = time.perf_counter() - start
                handle.close()
            finally:
                client.close()
    out = []
    for mode, elapsed in timings.items():
        out.append(
            {
                "workload": f"pipeline_{mode}",
                "workers": 1,
                "sessions": 1,
                "requests": feeds,
                "cores": _cores(),
                "qps": feeds / max(elapsed, 1e-12),
            }
        )
    speedup = timings["lockstep"] / max(timings["pipelined"], 1e-12)
    for row in out:
        row["pipeline_speedup"] = (
            speedup if row["workload"] == "pipeline_pipelined" else 1.0
        )
    return out


def _protocol_rows(queries: int) -> list[dict]:
    """Pipelined sharded query throughput per wire protocol."""
    rng = np.random.default_rng(23)
    readings = [rng.normal(25.0, 3.0, N) for __ in range(16)]
    timings: dict[str, float] = {}
    transcripts: dict[str, list] = {}
    with ShardedService(2, _config(8)) as deployment:
        for protocol in ("v1", "v2"):
            client = deployment.client(protocol=protocol)
            try:
                handles = _open_fleet(client, _topologies(2), 1, BUDGET)
                transcript = []
                fired = 0
                start = time.perf_counter()
                while fired < queries:
                    burst = 0
                    for handle in handles:
                        if fired + burst >= queries or burst >= BURST:
                            break
                        handle.query_nowait(readings[(fired + burst) % 16])
                        burst += 1
                    for reply in client.drain():
                        transcript.append(
                            (
                                reply.nodes,
                                reply.values,
                                reply.energy_mj,
                                reply.accuracy,
                            )
                        )
                    fired += burst
                timings[protocol] = time.perf_counter() - start
                transcripts[protocol] = transcript
                for handle in handles:
                    handle.close()
            finally:
                client.close()
    identical = float(transcripts["v1"] == transcripts["v2"])
    out = []
    for protocol, elapsed in timings.items():
        out.append(
            {
                "workload": f"wire_{protocol}",
                "workers": 2,
                "sessions": 2,
                "requests": queries,
                "cores": _cores(),
                "qps": queries / max(elapsed, 1e-12),
                "identical": identical,
            }
        )
    base_qps = out[0]["qps"]
    for row in out:
        row["wire_speedup"] = row["qps"] / max(base_qps, 1e-12)
    return out


def _parity_row(groups: int) -> dict:
    """Sharded replies must equal single-process replies exactly."""
    topologies = _topologies(groups)
    rng = np.random.default_rng(41)
    readings = [rng.normal(25.0, 3.0, N) for __ in range(4)]

    def transcript(client) -> list:
        out = []
        handles = _open_fleet(client, topologies, 1, BUDGET)
        for handle in handles:
            for row in readings:
                reply = handle.query(row)
                out.append(
                    (
                        reply.nodes,
                        reply.values,
                        reply.energy_mj,
                        reply.accuracy,
                    )
                )
            out.append(handle.plan())
            handle.close()
        return out

    single = transcript(
        InProcessClient(TopKService(_config(groups)))
    )
    sharded: dict[str, list] = {}
    with ShardedService(2, _config(2 * groups)) as deployment:
        for protocol in ("v1", "v2"):
            client = deployment.client(protocol=protocol)
            try:
                sharded[protocol] = transcript(client)
            finally:
                client.close()
    return {
        "workload": "parity",
        "workers": 2,
        "sessions": groups,
        "requests": groups * len(readings),
        "cores": _cores(),
        "identical": float(sharded["v1"] == sharded["v2"] == single),
    }


def run(quick: bool = False) -> list[dict]:
    if quick:
        worker_counts, groups, tenants, queries, feeds, parity_groups = (
            (1, 2), 2, 1, 80, 400, 2
        )
        wire_queries = 160
    else:
        worker_counts, groups, tenants, queries, feeds, parity_groups = (
            (1, 2, 4), 8, 2, 1600, 4000, 4
        )
        wire_queries = 1200
    rows = [
        _scale_row(workers, groups, tenants, queries)
        for workers in worker_counts
    ]
    base_qps = rows[0]["qps"]
    for row in rows:
        row["scaling_speedup"] = row["qps"] / max(base_qps, 1e-12)
    rows.extend(_pipeline_rows(feeds))
    rows.extend(_protocol_rows(wire_queries))
    rows.append(_parity_row(parity_groups))
    return rows


def _archive(rows: list[dict], quick: bool) -> None:
    record(
        "shard",
        rows,
        columns=[
            "workload", "workers", "sessions", "requests", "cores",
            "qps", "scaling_speedup", "pipeline_speedup",
            "wire_speedup", "identical",
        ],
        title="Sharded service scaling and pipelined-client throughput",
    )
    cores = _cores()
    minima = [
        {
            "metric": "identical",
            "where": {"workload": "parity"},
            "min": 1.0,
        },
        {
            "metric": "identical",
            "where": {"workload": "wire_v2"},
            "min": 1.0,
        },
    ]
    if not quick:
        minima.append(
            {
                "metric": "pipeline_speedup",
                "where": {"workload": "pipeline_pipelined"},
                "min": 2.0,
            }
        )
        if cores >= 4:
            minima.append(
                {
                    "metric": "scaling_speedup",
                    "where": {"workload": "scale", "workers": 4},
                    "min": 3.0,
                }
            )
    payload = {
        "benchmark": "shard",
        "quick": quick,
        "cores": cores,
        "rows": rows,
        "acceptance": {"minima": minima, "enforced": True},
    }
    (RESULTS_DIR / "BENCH_shard.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def _assert_bars(rows: list[dict], quick: bool) -> None:
    parity = next(r for r in rows if r["workload"] == "parity")
    assert parity["identical"] == 1.0, (
        "sharded replies diverged from the single-process service"
    )
    wire = next(r for r in rows if r["workload"] == "wire_v2")
    assert wire["identical"] == 1.0, (
        "sharded transcripts diverged between wire protocols"
    )
    if quick:
        assert all(r["qps"] > 0 for r in rows if "qps" in r)
        return
    pipelined = next(
        r for r in rows if r["workload"] == "pipeline_pipelined"
    )
    assert pipelined["pipeline_speedup"] >= 2.0, (
        f"pipelining gained only {pipelined['pipeline_speedup']:.2f}x"
    )
    four = next(
        (r for r in rows if r["workload"] == "scale" and r["workers"] == 4),
        None,
    )
    if four is not None and four["cores"] >= 4:
        assert four["scaling_speedup"] >= 3.0, (
            f"4 workers scaled only {four['scaling_speedup']:.2f}x"
        )


def test_shard(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    rows = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    _archive(rows, quick)
    _assert_bars(rows, quick)


if __name__ == "__main__":
    quick_mode = "--quick" in sys.argv or bool(os.environ.get("BENCH_QUICK"))
    result_rows = run(quick=quick_mode)
    _archive(result_rows, quick_mode)
    _assert_bars(result_rows, quick_mode)
