"""Figure 8 benchmark: PROSPECTOR-Exact phase breakdown.

Paper shape: U-shaped total cost over the phase-1 budget trials; the
optimum beats NAIVE-k and recovers a substantial share of the gap to
ORACLE-PROOF.
"""

from _helpers import record

from repro.experiments import fig8_exact


def test_fig8_exact(benchmark):
    rows = benchmark.pedantic(fig8_exact.run, rounds=1, iterations=1)
    record("fig8_exact", rows, title="Figure 8: PROSPECTOR-Exact")

    naive = rows[0]["naive_k_mj"]
    oracle = rows[0]["oracle_proof_mj"]
    best = min(r["total_cost_mj"] for r in rows)
    assert oracle < naive
    assert best < naive
    recovered = (naive - best) / (naive - oracle)
    print(f"\ngap recovered vs paper's ~50%: {recovered:.0%}")
    assert recovered > 0.25
    # phase-2 cost decreases along the trials
    assert rows[0]["phase2_cost_mj"] >= rows[-1]["phase2_cost_mj"]
