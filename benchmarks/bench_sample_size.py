"""Sample-size benchmark (§5 "Other Results").

Paper shape: a single sample is poor; accuracy rises steeply up to
~5-25 samples and essentially levels out by 25-50.
"""

import numpy as np
from _helpers import record

from repro.experiments import sample_size

COLUMNS = ["workload", "num_samples", "energy_mj", "accuracy"]
SEEDS = (2006, 7, 13)


def run_averaged():
    """Mean over seeds: single-instance curves are noisy at the tail."""
    per_seed = [sample_size.run(seed=seed) for seed in SEEDS]
    averaged = []
    for index, base in enumerate(per_seed[0]):
        rows = [runs[index] for runs in per_seed]
        averaged.append(
            {
                "workload": base["workload"],
                "num_samples": base["num_samples"],
                "energy_mj": float(np.mean([r["energy_mj"] for r in rows])),
                "accuracy": float(np.mean([r["accuracy"] for r in rows])),
            }
        )
    return averaged


def test_sample_size_gaussian(benchmark):
    rows = benchmark.pedantic(run_averaged, rounds=1, iterations=1)
    record("sample_size_gaussian", rows, COLUMNS,
           title=f"Sample-size study (gaussian workload, mean of {SEEDS})")

    accuracy = {r["num_samples"]: r["accuracy"] for r in rows}
    assert accuracy[25] > accuracy[1]
    # leveling out: going 25 -> 50 gains far less than 1 -> 25
    early_gain = accuracy[25] - accuracy[1]
    late_gain = accuracy[50] - accuracy[25]
    assert late_gain < early_gain


def test_sample_size_intel(benchmark):
    rows = benchmark.pedantic(
        lambda: sample_size.run(workload="intel", sizes=(1, 5, 25, 50)),
        rounds=1,
        iterations=1,
    )
    record("sample_size_intel", rows, COLUMNS,
           title="Sample-size study (intel surrogate)")
    accuracy = {r["num_samples"]: r["accuracy"] for r in rows}
    assert accuracy[25] >= accuracy[1]
