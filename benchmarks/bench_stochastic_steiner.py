"""Extension benchmark: §3.1's sample-complexity claim, empirically.

Shmoys & Swamy guarantee that polynomially many sampled scenarios
approximate the true two-stage objective; the paper leans on this to
justify planning from a handful of samples.  This benchmark solves
SIMPLE-TOP-K from growing scenario samples and scores the decisions on
a large held-out scenario set.
"""

import numpy as np
from _helpers import record

from repro.stochastic.simple_topk import sample_complexity_curve


def run():
    rng = np.random.default_rng(2006)
    n, k, budget = 40, 5, 10
    weights = rng.dirichlet(np.ones(n) * 0.25)

    def draw():
        return set(rng.choice(n, size=k, replace=False, p=weights).tolist())

    return sample_complexity_curve(
        n, k, budget=budget, draw_scenario=draw,
        scenario_counts=(1, 2, 5, 10, 25, 50, 100),
        evaluation_scenarios=600, rng=rng,
    )


def test_stochastic_steiner_sample_complexity(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("stochastic_sample_complexity", rows,
           title="SIMPLE-TOP-K: held-out quality vs sampled scenarios")

    first, last = rows[0], rows[-1]
    assert last["heldout_misses"] <= first["heldout_misses"]
    # the curve levels out: the last doubling buys little
    mid = next(r for r in rows if r["training_scenarios"] == 25)
    early_gain = first["heldout_misses"] - mid["heldout_misses"]
    late_gain = mid["heldout_misses"] - last["heldout_misses"]
    assert late_gain <= early_gain + 1e-9