"""Ablation: what the rounding repair and budget-fill passes buy.

The paper's raw ½-threshold rounding guarantees cost <= 2E; our default
planners add (a) a repair pass back under E and (b) a fill pass that
spends stranded budget.  This ablation quantifies both on the Figure 3
workload.
"""

import numpy as np
from _helpers import record

from repro.datagen.gaussian import random_gaussian_field
from repro.experiments.common import evaluate_planner
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner

VARIANTS = [
    ("paper (raw 1/2-rounding)", {"strict_budget": False, "fill_budget": False}),
    ("repair only", {"strict_budget": True, "fill_budget": False}),
    ("repair + fill (default)", {"strict_budget": True, "fill_budget": True}),
]


def run():
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()
    n, k = 60, 10
    topology = random_topology(n, rng=rng)
    field = random_gaussian_field(n, rng).scaled_variance(9.0)
    train = field.trace(25, rng)
    eval_trace = field.trace(15, rng)
    budget = energy.message_cost(1) * 2 * k

    rows = []
    for planner_cls in (LPNoLFPlanner, LPLFPlanner):
        for label, kwargs in VARIANTS:
            planner = planner_cls(**kwargs)
            evaluation = evaluate_planner(
                planner, topology, energy, train, eval_trace, k, budget
            )
            rows.append(
                {
                    "planner": planner.name,
                    "variant": label,
                    "static_cost_mj": evaluation.static_cost_mj,
                    "energy_mj": evaluation.mean_energy_mj,
                    "accuracy": evaluation.mean_accuracy,
                    "budget_mj": budget,
                }
            )
    return rows


def test_ablation_rounding(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_rounding", rows, title="Ablation: rounding repair + fill")

    for planner in ("lp-no-lf", "lp-lf"):
        subset = {r["variant"]: r for r in rows if r["planner"] == planner}
        budget = subset["repair only"]["budget_mj"]
        # paper rounding may exceed E but never 2E
        assert subset["paper (raw 1/2-rounding)"]["static_cost_mj"] <= 2 * budget + 1e-6
        # repair restores strict feasibility
        assert subset["repair only"]["static_cost_mj"] <= budget + 1e-6
        assert subset["repair + fill (default)"]["static_cost_mj"] <= budget + 1e-6
        # fill never hurts accuracy relative to repair-only
        assert (
            subset["repair + fill (default)"]["accuracy"]
            >= subset["repair only"]["accuracy"] - 1e-9
        )
