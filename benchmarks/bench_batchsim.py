"""Batched simulation benchmark (ISSUE acceptance numbers).

Two measurements, both against the scalar epoch-by-epoch oracle:

- ``replay``: one installed plan evaluated over a 500-epoch trace at
  n = 60 — :class:`~repro.simulation.batch.BatchSimulator` versus a
  ``Simulator.run_collection`` loop.  Acceptance bar: >= 8x.
- ``fig3``: the full Figure 3 experiment end-to-end with
  ``engine="batch"`` (vectorized replay, batched NAIVE-k, vectorized
  ORACLE plan sweep) versus ``engine="scalar"``.  Acceptance bar:
  >= 3x wall time.

Equivalence is asserted alongside the timings: identical per-epoch
node sets and energies within 1e-9 relative tolerance.

``run(quick=True)`` (or ``--quick`` / ``BENCH_QUICK=1``) shrinks the
trace sizes for the CI smoke job, which checks equivalence and records
the numbers without enforcing the full-size speedup bars.  Besides the
human-readable ``results/batchsim.txt`` table, a machine-readable
``results/BENCH_batchsim.json`` is written for the CI artifact.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np
from _helpers import RESULTS_DIR, record

from repro.datagen.gaussian import random_gaussian_field
from repro.experiments import fig3_comparison
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.plans.plan import QueryPlan
from repro.simulation.batch import BatchSimulator
from repro.simulation.runtime import Simulator

N = 60
K = 10


def _replay_row(quick: bool) -> dict:
    epochs = 60 if quick else 500
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()
    topology = random_topology(N, rng=rng)
    trace = random_gaussian_field(N, rng).trace(epochs, rng)
    plan = QueryPlan.naive_k(topology, K)

    scalar = Simulator(topology, energy)
    start = time.perf_counter()
    reports = [scalar.run_collection(plan, readings) for readings in trace]
    scalar_s = time.perf_counter() - start

    batch_sim = BatchSimulator(topology, energy)
    start = time.perf_counter()
    batch = batch_sim.run_collection(plan, trace.values)
    batch_s = time.perf_counter() - start

    # equivalence: node sets exact, energies to 1e-9 relative
    batch_sets = batch.top_k_node_sets(K)
    for epoch, report in enumerate(reports):
        assert batch_sets[epoch] == report.top_k_nodes(K)
    np.testing.assert_allclose(
        batch.energy_mj, [r.energy_mj for r in reports], rtol=1e-9
    )

    return {
        "workload": f"replay n={N} E={epochs}",
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / max(batch_s, 1e-12),
    }


def _fig3_row(quick: bool) -> dict:
    epochs = 40 if quick else 300
    start = time.perf_counter()
    scalar_rows = fig3_comparison.run(eval_epochs=epochs, engine="scalar")
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    batch_rows = fig3_comparison.run(eval_epochs=epochs, engine="batch")
    batch_s = time.perf_counter() - start

    # the two engines must produce the same point cloud
    assert len(batch_rows) == len(scalar_rows)
    for got, want in zip(batch_rows, scalar_rows):
        assert got["algorithm"] == want["algorithm"]
        assert np.isclose(got["energy_mj"], want["energy_mj"], rtol=1e-9)
        assert np.isclose(got["accuracy"], want["accuracy"], rtol=1e-9)

    return {
        "workload": f"fig3 end-to-end E={epochs}",
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / max(batch_s, 1e-12),
    }


def run(quick: bool = False) -> list[dict]:
    return [_replay_row(quick), _fig3_row(quick)]


def _archive(rows: list[dict], quick: bool) -> None:
    record(
        "batchsim",
        rows,
        columns=["workload", "scalar_s", "batch_s", "speedup"],
        title="Batched simulation vs scalar oracle",
    )
    payload = {
        "benchmark": "batchsim",
        "quick": quick,
        "rows": rows,
        "acceptance": {
            "replay_speedup_min": 8.0,
            "fig3_speedup_min": 3.0,
            "enforced": not quick,
        },
    }
    (RESULTS_DIR / "BENCH_batchsim.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def _assert_bars(rows: list[dict], quick: bool) -> None:
    replay, fig3 = rows
    if quick:
        # smoke: batching must still win, but small traces cannot be
        # expected to hit the full-size bars
        assert replay["speedup"] > 1.0
        assert fig3["speedup"] > 1.0
        return
    assert replay["speedup"] >= 8.0
    assert fig3["speedup"] >= 3.0


def test_batchsim(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    rows = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    _archive(rows, quick)
    _assert_bars(rows, quick)


if __name__ == "__main__":
    quick_mode = "--quick" in sys.argv or bool(os.environ.get("BENCH_QUICK"))
    result_rows = run(quick=quick_mode)
    _archive(result_rows, quick_mode)
    _assert_bars(result_rows, quick_mode)
