"""Shared helpers for the benchmark harness."""

from __future__ import annotations

from pathlib import Path

from repro.experiments.reporting import ascii_chart, format_table

RESULTS_DIR = Path(__file__).parent / "results"


def record(name: str, rows, columns=None, title: str = "") -> None:
    """Print an experiment's series and archive it to results/.

    When the rows carry numeric ``energy_mj``/``accuracy`` columns, an
    ASCII accuracy-vs-energy chart is archived alongside the table.
    """
    text = format_table(rows, columns=columns, title=title or name)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    plottable = [
        r
        for r in rows
        if isinstance(r.get("energy_mj"), (int, float))
        and isinstance(r.get("accuracy"), (int, float))
    ]
    if len(plottable) >= 4:
        series = "algorithm" if "algorithm" in plottable[0] else None
        chart = ascii_chart(
            plottable, x="energy_mj", y="accuracy", series=series,
            title=(title or name) + " — accuracy vs energy",
        )
        (RESULTS_DIR / f"{name}.chart.txt").write_text(chart + "\n")
