"""Produce a merged multi-shard perfetto trace as a CI artifact (S5).

Boots a 2-worker :class:`~repro.service.shard.ShardedService` with
parent-side instrumentation, drives a handful of traced sessions
through the sharded client, polls every worker's telemetry snapshot
over its pipe, and writes the fleet-merged Chrome-trace JSON — client
lane plus one lane per shard, stitched by trace id — to
``results/fleet_trace.json``.  Load it at https://ui.perfetto.dev or
``chrome://tracing``.
"""

from __future__ import annotations

import json
import sys

import numpy as np
from _helpers import RESULTS_DIR

from repro.network.builder import random_topology
from repro.obs import Instrumentation
from repro.service.server import ServiceConfig
from repro.service.shard import ShardedService

WORKERS = 2
SESSIONS = 4
K = 2
BUDGET = 50.0


def main() -> int:
    obs = Instrumentation()
    with ShardedService(
        WORKERS, ServiceConfig(max_sessions=16), instrumentation=obs
    ) as fleet:
        client = fleet.client()
        rng = np.random.default_rng(2006)
        for seed in range(SESSIONS):
            topology = random_topology(
                10, rng=np.random.default_rng(seed), radio_range=70.0
            )
            topology_id = client.register_topology(topology)
            session = client.open_session(topology_id, K, budget_mj=BUDGET)
            for __ in range(3):
                session.feed(rng.normal(25, 3, 10))
            session.query(rng.normal(25, 3, 10))
            session.close()
        client.close()

        fleet.poll_telemetry()
        document = fleet.aggregator.chrome_trace_json(client=obs)

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "fleet_trace.json"
    out.write_text(document)

    events = json.loads(document)["traceEvents"]
    lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
    spans = [e for e in events if e["ph"] == "X"]
    traces = {e["args"]["trace_id"] for e in spans if "trace_id" in e["args"]}
    print(f"wrote {out} ({len(spans)} spans, lanes: {sorted(lanes)})")
    if not traces:
        print("error: no stitched trace ids in the merged document")
        return 1
    if len({e["pid"] for e in spans}) < 2:
        print("error: merged trace does not span multiple processes")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
