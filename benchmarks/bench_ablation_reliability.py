"""Ablation: reliable retries vs lossy execution with redundancy.

Paper §4.4 poses the open question: drop the reliable protocol and cope
with transient failures in the plan itself.  This ablation compares
three modes on the same flaky network:

- reliable: failed unicasts retried + re-routed (costs energy);
- lossy: failures silently drop messages (cheap, inaccurate);
- lossy + redundancy: every used edge carries spare candidates.

Finding (recorded in EXPERIMENTS.md): widening messages does NOT
recover losses — failures are message-granular, so spare candidates
drown with the message that carried them.  Effective loss-coping needs
retransmission or multipath delivery, which supports the paper's
choice of a reliable protocol as the default.
"""

import numpy as np
from _helpers import record

from repro.datagen.gaussian import random_gaussian_field
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.plans.plan import top_k_set
from repro.sampling.matrix import SampleMatrix
from repro.simulation.lossy import execute_plan_lossy, redundancy_plan
from repro.simulation.runtime import Simulator

K = 8
TRIALS = 40


def run():
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()
    topology = random_topology(50, rng=rng)
    field = random_gaussian_field(50, rng).scaled_variance(4.0)
    samples = SampleMatrix(field.trace(20, rng).values, K)
    failures = LinkFailureModel.uniform(
        topology, probability=0.15, reroute_extra_mj=1.5
    )

    budget = energy.message_cost(1) * 2.5 * K
    context = PlanningContext(topology, energy, samples, K, budget,
                              failures=failures)
    plan = LPLFPlanner().plan(context)
    wide = redundancy_plan(plan, extra=2)

    reliable_sim = Simulator(
        topology, energy, failures=failures, rng=np.random.default_rng(1)
    )
    lossy_rng = np.random.default_rng(1)
    wide_rng = np.random.default_rng(1)

    rows = []
    stats = {"reliable": [], "lossy": [], "lossy+redundancy": []}
    for __ in range(TRIALS):
        readings = field.sample(rng)
        truth = top_k_set(readings, K)

        report = reliable_sim.run_collection(plan, readings)
        stats["reliable"].append(
            (len(report.top_k_nodes(K) & truth) / K, report.energy_mj)
        )

        lossy = execute_plan_lossy(plan, readings, failures, lossy_rng)
        stats["lossy"].append(
            (
                len(lossy.top_k_nodes(K) & truth) / K,
                sum(m.cost(energy) for m in lossy.messages),
            )
        )

        wide_result = execute_plan_lossy(wide, readings, failures, wide_rng)
        stats["lossy+redundancy"].append(
            (
                len(wide_result.top_k_nodes(K) & truth) / K,
                sum(m.cost(energy) for m in wide_result.messages),
            )
        )

    for mode, pairs in stats.items():
        accuracy = float(np.mean([a for a, __ in pairs]))
        cost = float(np.mean([c for __, c in pairs]))
        rows.append({"mode": mode, "accuracy": accuracy, "energy_mj": cost})
    return rows


def test_ablation_reliability(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_reliability", rows,
           title="Ablation: reliable vs lossy execution")

    by_mode = {r["mode"]: r for r in rows}
    # the reliable protocol buys accuracy with energy
    assert by_mode["reliable"]["accuracy"] > by_mode["lossy"]["accuracy"]
    assert by_mode["reliable"]["energy_mj"] > by_mode["lossy"]["energy_mj"]
    # redundancy recovers part of the gap at modest extra cost
    assert (
        by_mode["lossy+redundancy"]["accuracy"]
        >= by_mode["lossy"]["accuracy"]
    )