"""Figure 5 benchmark: contention zones, LP+LF vs LP−LF energy sweep.

Paper shape: LP+LF outperforms LP−LF and the gap grows with the budget
(LP−LF swallows whole zones; LP+LF visits several and filters locally).
"""

from _helpers import record

from repro.experiments import fig5_zones

COLUMNS = ["algorithm", "budget_mj", "energy_mj", "accuracy"]


def test_fig5_zones(benchmark):
    rows = benchmark.pedantic(fig5_zones.run, rounds=1, iterations=1)
    record("fig5_zones", rows, COLUMNS, title="Figure 5: contention zones")

    budgets = sorted({r["budget_mj"] for r in rows})
    def accuracy_of(name, budget):
        return [
            r["accuracy"]
            for r in rows
            if r["algorithm"] == name and r["budget_mj"] == budget
        ][0]

    top = budgets[-1]
    assert accuracy_of("lp-lf", top) > accuracy_of("lp-no-lf", top)
    # the gap at the top of the ladder exceeds the gap at the bottom
    gap_hi = accuracy_of("lp-lf", budgets[-1]) - accuracy_of("lp-no-lf", budgets[-1])
    gap_lo = accuracy_of("lp-lf", budgets[0]) - accuracy_of("lp-no-lf", budgets[0])
    assert gap_hi > gap_lo
