"""Figure 9 benchmark: the Intel Lab surrogate trace.

Paper shape: Greedy trails LP−LF until both saturate; LP+LF ≈ LP−LF
(top-k locations are predictable on this data); NAIVE-k needs a
multiple of the energy of the approximate planners at high accuracy.

Averaged over three seeds (topology + trace instances): single-trace
accuracy differences of a point or two are generalization noise, as the
debug analysis in EXPERIMENTS.md explains.
"""

import numpy as np
from _helpers import record

from repro.experiments import fig9_intel

COLUMNS = ["algorithm", "budget_mj", "energy_mj", "accuracy"]
SEEDS = (2006, 7, 13)


def run_averaged():
    per_seed = [fig9_intel.run(seed=seed) for seed in SEEDS]
    averaged = []
    for index, base_row in enumerate(per_seed[0]):
        rows = [runs[index] for runs in per_seed]
        assert all(r["algorithm"] == base_row["algorithm"] for r in rows)
        averaged.append(
            {
                "algorithm": base_row["algorithm"],
                # budgets vary slightly per seed (they scale with the
                # instance's tree height); label with the first seed's
                "budget_mj": base_row["budget_mj"],
                "energy_mj": float(np.mean([r["energy_mj"] for r in rows])),
                "accuracy": float(np.mean([r["accuracy"] for r in rows])),
            }
        )
    return averaged


def test_fig9_intel(benchmark):
    rows = benchmark.pedantic(run_averaged, rounds=1, iterations=1)
    record("fig9_intel", rows, COLUMNS,
           title=f"Figure 9: Intel Lab surrogate (mean of seeds {SEEDS})")

    def series(name):
        return [r for r in rows if r["algorithm"] == name]

    greedy = series("greedy")
    no_lf = series("lp-no-lf")
    lf = series("lp-lf")
    naive = series("naive-k")[0]

    # greedy never beats LP−LF on average
    assert np.mean([r["accuracy"] for r in no_lf]) >= np.mean(
        [r["accuracy"] for r in greedy]
    )
    # naive-k costs a multiple of what the approximates spend at their
    # highest-accuracy point
    peak = max(r["energy_mj"] for r in no_lf)
    assert naive["energy_mj"] > 1.2 * peak
    # LP+LF reaches the same top accuracy as LP−LF on this data
    assert max(r["accuracy"] for r in lf) >= max(r["accuracy"] for r in no_lf) - 0.02
