"""Parametric budget-sweep benchmark (ISSUE acceptance numbers).

An 8-budget Figure-3-shaped ladder over the LP+LF formulation at
n = 60, m = 25, measured two ways per backend:

- ``sweep``: one :class:`~repro.lp.ParametricForm` compile plus
  ``solve_sweep`` — the budget row's RHS slot is patched per member and
  the pure simplex backend warm-starts each member from the previous
  optimal basis via a dual-simplex restart;
- ``cold``: a fresh ``compile_lp_lf`` + ``solve_form`` per budget (the
  pre-sweep regime).

The acceptance bar from the issue — >= 3x on the pure simplex backend
at full size — is asserted here.  The HiGHS row is reported without a
bar: ``linprog`` has no warm-start entry point, so its sweep win is
only the shared compile.  Equivalence is asserted alongside the
timings: sweep objectives match the cold objectives to 1e-9 and the
rounded LP+LF plans are exactly equal (warm and cold bases may differ
at degenerate alternate optima, so raw vectors are not compared).

``run(quick=True)`` (or ``--quick`` / ``BENCH_QUICK=1``) shrinks the
instance for the CI smoke job, which checks equivalence and records
the numbers without enforcing the full-size speedup bar.  Besides the
human-readable ``results/lpsweep.txt`` table, a machine-readable
``results/BENCH_lpsweep.json`` is written for the CI artifact.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import replace

import numpy as np
from _helpers import RESULTS_DIR, record

from repro.datagen.gaussian import random_gaussian_field
from repro.lp import ScipyBackend, SimplexBackend, compile_lp_lf
from repro.lp.fastbuild import compile_lp_lf_parametric
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.rounding import round_bandwidth

K = 10
_BUDGET_FACTORS = (0.7, 0.85, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0)


def _context(n: int, m: int) -> PlanningContext:
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()
    topology = random_topology(n, rng=rng, radio_range=max(25.0, 200.0 / n**0.5))
    field = random_gaussian_field(n, rng).scaled_variance(4.0)
    samples = field.trace(m, rng).sample_matrix(K)
    budget = energy.message_cost(1) * 2 * K
    return PlanningContext(topology, energy, samples, K, budget)


def _sweep_row(backend, context, budgets) -> dict:
    start = time.perf_counter()
    parametric = compile_lp_lf_parametric(context)
    sweep = backend.solve_sweep(parametric, parametric.rhs_values(budgets))
    sweep_s = time.perf_counter() - start

    start = time.perf_counter()
    cold = []
    for budget in budgets:
        compiled = compile_lp_lf(replace(context, budget=budget))
        cold.append(backend.solve_form(compiled.form, compiled.name))
    cold_s = time.perf_counter() - start

    # equivalence: objectives to 1e-9; plans exactly equal after the
    # planner's rounding (raw vectors may differ at alternate optima)
    planner = LPLFPlanner()
    bandwidth_of = parametric.compiled.primary_columns
    for budget, warm_member, cold_member in zip(budgets, sweep, cold):
        assert abs(warm_member.objective - cold_member.objective) <= 1e-9 * max(
            1.0, abs(cold_member.objective)
        )
        member_context = replace(context, budget=float(budget))
        warm_plan = planner._repair_and_fill(
            member_context,
            {
                edge: round_bandwidth(float(warm_member.values[col]))
                for edge, col in bandwidth_of.items()
            },
        )
        cold_plan = planner._repair_and_fill(
            member_context,
            {
                edge: round_bandwidth(float(cold_member.values[col]))
                for edge, col in bandwidth_of.items()
            },
        )
        assert warm_plan.bandwidths == cold_plan.bandwidths

    warm_hits = sum(
        1 for member in sweep if getattr(member.stats, "warm_started", False)
    )
    return {
        "backend": backend.name,
        "budgets": len(budgets),
        "warm_hits": warm_hits,
        "sweep_s": sweep_s,
        "cold_s": cold_s,
        "speedup": cold_s / max(sweep_s, 1e-12),
    }


def run(quick: bool = False) -> list[dict]:
    n, m = (30, 10) if quick else (60, 25)
    context = _context(n, m)
    budgets = [context.budget * factor for factor in _BUDGET_FACTORS]
    return [
        _sweep_row(SimplexBackend(), context, budgets),
        _sweep_row(ScipyBackend(), context, budgets),
    ]


def _archive(rows: list[dict], quick: bool) -> None:
    record(
        "lpsweep",
        rows,
        columns=["backend", "budgets", "warm_hits", "sweep_s", "cold_s", "speedup"],
        title="Parametric budget sweep vs per-budget cold solves (LP+LF)",
    )
    payload = {
        "benchmark": "lpsweep",
        "quick": quick,
        "rows": rows,
        "acceptance": {
            "simplex_sweep_speedup_min": 3.0,
            "enforced": not quick,
        },
    }
    (RESULTS_DIR / "BENCH_lpsweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def _assert_bars(rows: list[dict], quick: bool) -> None:
    simplex = next(r for r in rows if r["backend"] == "pure-simplex")
    # warm starts must actually engage: every member after the first
    assert simplex["warm_hits"] >= len(_BUDGET_FACTORS) - 2
    if quick:
        # smoke: the sweep must still win, but a small instance cannot
        # be expected to hit the full-size bar
        assert simplex["speedup"] > 1.0
        return
    assert simplex["speedup"] >= 3.0


def test_lpsweep(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    rows = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    _archive(rows, quick)
    _assert_bars(rows, quick)


if __name__ == "__main__":
    quick_mode = "--quick" in sys.argv or bool(os.environ.get("BENCH_QUICK"))
    result_rows = run(quick=quick_mode)
    _archive(result_rows, quick_mode)
    _assert_bars(result_rows, quick_mode)
