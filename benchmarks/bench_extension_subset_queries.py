"""Extension benchmark: the §3 generalization to subset queries.

Selection ("all readings above a threshold") and quantile-neighborhood
queries planned with the unchanged PROSPECTOR LP machinery over the
generalized answer matrix, scored against exhaustive collection.
"""

import numpy as np
from _helpers import record

from repro.datagen.gaussian import random_gaussian_field
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.plans.plan import QueryPlan
from repro.queries import (
    QuantileQuery,
    SelectionQuery,
    SubsetQueryPlanner,
    run_subset_query,
)
from repro.simulation.runtime import Simulator


def run():
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()
    n = 60
    topology = random_topology(n, rng=rng)
    field = random_gaussian_field(n, rng, mean_range=(20.0, 30.0),
                                  std_range=(2.0, 4.0))
    train = field.trace(25, rng).values
    full_cost = QueryPlan.full(topology).static_cost(energy)

    specs = [
        SelectionQuery(threshold=float(np.quantile(train, 0.92))),
        SelectionQuery(threshold=float(np.quantile(train, 0.80))),
        QuantileQuery(phi=0.5, band=2),
        QuantileQuery(phi=0.9, band=2),
    ]
    simulator = Simulator(topology, energy)
    rows = []
    for spec in specs:
        # quantile answers are diffuse (no node is "usually the
        # median"), so they get a wider budget than up-closed specs
        budget = energy.message_cost(1) * (25 if spec.up_closed else 40)
        plan = SubsetQueryPlanner(spec).plan(topology, energy, train, budget)
        recalls, energies = [], []
        for __ in range(15):
            readings = field.sample(rng)
            result = run_subset_query(
                simulator, plan, spec, readings, samples=train
            )
            recalls.append(result.recall)
            energies.append(result.report.energy_mj)
        label = (
            f"{spec.name}(theta={spec.threshold:.1f})"
            if isinstance(spec, SelectionQuery)
            else f"{spec.name}(phi={spec.phi})"
        )
        rows.append(
            {
                "query": label,
                "budget_mj": round(budget, 1),
                "energy_mj": float(np.mean(energies)),
                "recall": float(np.mean(recalls)),
                "full_collection_mj": round(full_cost, 1),
            }
        )
    return rows


def test_extension_subset_queries(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("extension_subset_queries", rows,
           title="Extension: generalized subset queries (paper §3)")
    for row in rows:
        assert row["recall"] >= 0.45
        assert row["energy_mj"] < row["full_collection_mj"]