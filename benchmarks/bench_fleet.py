"""Fleet simulation benchmark (ISSUE acceptance numbers).

A 1000-cell topology × plan × trace grid (4 topologies x 5 plans x
50 traces, n = 40 nodes, 8 epochs per trace) evaluated two ways:

- ``grid-serial``: one :class:`~repro.simulation.fleet.FleetSimulator`
  pass — cells sharing a (topology, plan) pair have their traces
  concatenated into blocked ``execute_plan_batch`` calls, and the
  plan-only accounting constants (trigger cost, acquisition, summed
  message energies) are hoisted out of the per-cell loop;
- the reference: a dedicated
  :class:`~repro.simulation.batch.BatchSimulator` ``run_collection``
  per cell, seeded with the matching ``SeedSequence`` child — exactly
  what an experiment loop would have written before the fleet engine.

The acceptance bar from the issue — >= 6x on the 1000-cell grid at
full size — is asserted here, along with exact equivalence: every
fleet report must be element-wise identical (energies included) to
its per-cell reference.  The pooled (multi-process) path is not timed
— process spawn overhead swamps a sub-second workload — but its
byte-for-byte equality with the serial path is covered by
``tests/simulation/test_fleet.py``.

``run(quick=True)`` (or ``--quick`` / ``BENCH_QUICK=1``) shrinks the
grid for the CI smoke job, which checks equivalence and records the
numbers without enforcing the full-size speedup bar.  Besides the
human-readable ``results/fleet.txt`` table, a machine-readable
``results/BENCH_fleet.json`` is written for the CI artifact.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np
from _helpers import RESULTS_DIR, record

from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.plans.plan import QueryPlan
from repro.simulation.batch import BatchSimulator
from repro.simulation.fleet import FleetCell, FleetSimulator

SEED = 3


def _grid(topologies: int, plans: int, traces: int, n: int, epochs: int):
    rng = np.random.default_rng(11)
    cells = []
    for t in range(topologies):
        topology = random_topology(n, rng=rng)
        for p in range(plans):
            chosen = set(
                rng.choice(n, size=n // 4 + 2 * p, replace=False).tolist()
            )
            plan = QueryPlan.from_chosen_nodes(topology, chosen)
            for e in range(traces):
                cells.append(
                    FleetCell(topology, plan, rng.normal(size=(epochs, n)))
                )
    return cells


def _per_cell_reports(cells, energy):
    """The pre-fleet regime: one BatchSimulator run per cell."""
    seeds = np.random.SeedSequence(SEED).spawn(len(cells))
    return [
        BatchSimulator(
            cell.topology, energy, rng=np.random.default_rng(child)
        ).run_collection(cell.plan, np.asarray(cell.trace))
        for cell, child in zip(cells, seeds)
    ]


def _assert_reports_equal(fleet, reference) -> None:
    """No failure models in the grid, so equality is exact."""
    assert len(fleet) == len(reference)
    for got, want in zip(fleet, reference):
        assert np.array_equal(got.returned_nodes, want.returned_nodes)
        assert np.array_equal(got.returned_values, want.returned_values)
        assert np.array_equal(got.energy_mj, want.energy_mj)
        assert got.num_messages == want.num_messages
        assert got.num_values_sent == want.num_values_sent


def run(quick: bool = False) -> list[dict]:
    topologies, plans, traces, n, epochs = (
        (2, 2, 5, 30, 5) if quick else (4, 5, 50, 40, 8)
    )
    energy = EnergyModel.mica2()
    cells = _grid(topologies, plans, traces, n, epochs)

    start = time.perf_counter()
    reference = _per_cell_reports(cells, energy)
    per_cell_s = time.perf_counter() - start

    simulator = FleetSimulator(energy)
    start = time.perf_counter()
    fleet = simulator.run(cells, seed=SEED)
    fleet_s = time.perf_counter() - start

    _assert_reports_equal(fleet, reference)
    return [
        {
            "workload": "grid-serial",
            "cells": len(cells),
            "groups": topologies * plans,
            "epochs": epochs,
            "per_cell_s": per_cell_s,
            "fleet_s": fleet_s,
            "speedup": per_cell_s / max(fleet_s, 1e-12),
        }
    ]


def _archive(rows: list[dict], quick: bool) -> None:
    record(
        "fleet",
        rows,
        columns=[
            "workload", "cells", "groups", "epochs",
            "per_cell_s", "fleet_s", "speedup",
        ],
        title="Fleet grid pass vs per-cell BatchSimulator loops",
    )
    payload = {
        "benchmark": "fleet",
        "quick": quick,
        "rows": rows,
        "acceptance": {
            "grid_serial_speedup_min": 6.0,
            "enforced": not quick,
        },
    }
    (RESULTS_DIR / "BENCH_fleet.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def _assert_bars(rows: list[dict], quick: bool) -> None:
    grid = next(r for r in rows if r["workload"] == "grid-serial")
    if quick:
        # smoke: the fleet pass must still win on a small grid, but it
        # is not held to the full-size bar
        assert grid["speedup"] > 1.0
        return
    assert grid["speedup"] >= 6.0


def test_fleet(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    rows = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    _archive(rows, quick)
    _assert_bars(rows, quick)


if __name__ == "__main__":
    quick_mode = "--quick" in sys.argv or bool(os.environ.get("BENCH_QUICK"))
    result_rows = run(quick=quick_mode)
    _archive(result_rows, quick_mode)
    _assert_bars(result_rows, quick_mode)
