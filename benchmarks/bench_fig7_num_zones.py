"""Figure 7 benchmark: varying the number of contention zones.

Paper shape: both algorithms degrade as zones multiply; LP+LF stays on
top throughout.
"""

from _helpers import record

from repro.experiments import fig7_num_zones

COLUMNS = ["algorithm", "num_zones", "energy_mj", "accuracy"]


def test_fig7_num_zones(benchmark):
    rows = benchmark.pedantic(fig7_num_zones.run, rounds=1, iterations=1)
    record("fig7_num_zones", rows, COLUMNS,
           title="Figure 7: varying the number of zones")

    lf = [r for r in rows if r["algorithm"] == "lp-lf"]
    no_lf = [r for r in rows if r["algorithm"] == "lp-no-lf"]
    # degradation from 1 zone to 6 zones
    assert lf[0]["accuracy"] > lf[-1]["accuracy"]
    assert no_lf[0]["accuracy"] > no_lf[-1]["accuracy"]
    # LP+LF at least matches LP−LF on average
    mean = lambda rs: sum(r["accuracy"] for r in rs) / len(rs)
    assert mean(lf) >= mean(no_lf)
