"""Extension benchmark: serving several queries with one collection.

Three users query the same network — top-5, top-12, and a selection
alarm.  Running each plan separately pays the per-message costs three
times; the merged plan (edge-wise bandwidth maximum) pays them once and
still covers every query's answer at least as well (the up-closed
coverage guarantee, property-tested in tests/plans/test_merge.py).
"""

import numpy as np
from _helpers import record

from repro.datagen.gaussian import random_gaussian_field
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.plans.merge import merge_plans, merge_savings
from repro.queries import SelectionQuery, SubsetQueryPlanner
from repro.sampling.matrix import SampleMatrix


def run():
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()
    topology = random_topology(60, rng=rng)
    field = random_gaussian_field(60, rng).scaled_variance(4.0)
    train = field.trace(25, rng)

    def topk_plan(k, budget_messages):
        context = PlanningContext(
            topology, energy, SampleMatrix(train.values, k), k,
            budget=energy.message_cost(1) * budget_messages,
        )
        return LPLFPlanner().plan(context)

    alarm = SelectionQuery(
        threshold=float(np.quantile(train.values, 0.93))
    )
    plans = {
        "top-5": topk_plan(5, 14),
        "top-12": topk_plan(12, 30),
        "alarm": SubsetQueryPlanner(alarm).plan(
            topology, energy, train.values,
            budget=energy.message_cost(1) * 18,
        ),
    }

    savings = merge_savings(list(plans.values()), energy)
    merged = merge_plans(list(plans.values()))
    rows = [
        {
            "plan": name,
            "static_cost_mj": plan.static_cost(energy),
            "edges_used": len(plan.used_edges),
        }
        for name, plan in plans.items()
    ]
    rows.append(
        {
            "plan": "merged (one collection)",
            "static_cost_mj": savings["merged_mj"],
            "edges_used": len(merged.used_edges),
        }
    )
    rows.append(
        {
            "plan": "separate total",
            "static_cost_mj": savings["separate_mj"],
            "edges_used": sum(len(p.used_edges) for p in plans.values()),
        }
    )
    rows.append(
        {
            "plan": "saved",
            "static_cost_mj": savings["saved_mj"],
            "edges_used": "",
        }
    )
    return rows, savings


def test_extension_multiquery(benchmark):
    rows, savings = benchmark.pedantic(run, rounds=1, iterations=1)
    record("extension_multiquery", rows,
           title="Extension: multi-query plan merging")
    assert savings["saved_fraction"] > 0.2
    assert savings["merged_mj"] < savings["separate_mj"]