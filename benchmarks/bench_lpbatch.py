"""Batched LP solving benchmark (ISSUE acceptance numbers).

A 64-member scenario batch over the LP−LF formulation at n = 60,
m = 25: every member carries its own budget RHS *and* its own
perturbed cost vector (the "scenario" regime — per-member costs
invalidate warm bases, so the sequential path degenerates to cold
solves).  Measured two ways on the pure simplex backend:

- ``scenario-costs``: one ``solve_batch`` call on the default (auto)
  strategy, which routes cost-carrying batches to the lockstep engine
  — stacked basis inverses, incremental batched pricing, one
  vectorized pivot round across all unfinished members;
- the reference: the same call pinned to ``strategy="sequential"``,
  one member at a time.

The acceptance bar from the issue — >= 4x on a 64-LP batch at full
size — is asserted here.  An ``rhs-ladder`` row (same batch width,
budgets only) is reported without a bar: RHS-only ladders stay on the
sequential dual warm-restart path by design, because a member
restarting from its neighbour's optimal basis needs so few pivots
that lockstep's batched rounds cannot pay for themselves — the row
documents that the auto strategy picks the right engine, not that
lockstep wins everywhere.  Equivalence is asserted alongside the
timings: batched objectives match the sequential objectives to 1e-9
and the variable vectors are bitwise-equal after 1e-9 rounding.

``run(quick=True)`` (or ``--quick`` / ``BENCH_QUICK=1``) shrinks the
instance for the CI smoke job, which checks equivalence and records
the numbers without enforcing the full-size speedup bar.  Besides the
human-readable ``results/lpbatch.txt`` table, a machine-readable
``results/BENCH_lpbatch.json`` is written for the CI artifact.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np
from _helpers import RESULTS_DIR, record

from repro.datagen.gaussian import random_gaussian_field
from repro.lp import SimplexBackend
from repro.lp.fastbuild import compile_lp_no_lf_parametric
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext

K = 10
MEMBERS = 64


def _context(n: int, m: int) -> PlanningContext:
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()
    topology = random_topology(n, rng=rng, radio_range=max(25.0, 200.0 / n**0.5))
    field = random_gaussian_field(n, rng).scaled_variance(4.0)
    samples = field.trace(m, rng).sample_matrix(K)
    budget = energy.message_cost(1) * 2 * K
    return PlanningContext(topology, energy, samples, K, budget)


def _assert_members_equal(batched, sequential) -> None:
    """Objectives to 1e-9; values bitwise-equal after 1e-9 rounding."""
    for a, b in zip(batched, sequential):
        scale = max(1.0, abs(b.objective))
        assert abs(a.objective - b.objective) <= 1e-9 * scale
        assert np.array_equal(np.round(a.values, 9), np.round(b.values, 9))


def _scenario_row(backend, context, parametric, n: int) -> dict:
    """Per-member budgets *and* costs: the lockstep regime."""
    rng = np.random.default_rng(7)
    base = parametric.form.c
    costs = np.stack(
        [base * (1.0 + 0.15 * rng.random(base.size)) for _ in range(MEMBERS)]
    )
    rhs = parametric.rhs_values(
        [context.budget * f for f in rng.uniform(0.7, 2.4, MEMBERS)]
    )

    start = time.perf_counter()
    batched = backend.solve_batch(parametric, rhs, costs=costs)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    sequential = backend.solve_batch(
        parametric, rhs, costs=costs, strategy="sequential"
    )
    sequential_s = time.perf_counter() - start

    _assert_members_equal(batched, sequential)
    # the auto strategy must actually have gone lockstep (no member
    # warm-starts inside the lockstep engine)
    assert all(m.stats.warm_started is False for m in batched)
    return {
        "workload": "scenario-costs",
        "members": MEMBERS,
        "n": n,
        "cold_fallbacks": sum(1 for m in batched if m.stats.cold_fallback),
        "batched_s": batched_s,
        "sequential_s": sequential_s,
        "speedup": sequential_s / max(batched_s, 1e-12),
    }


def _ladder_row(backend, context, parametric, n: int) -> dict:
    """Budgets only: the warm-restart regime, reported without a bar."""
    rng = np.random.default_rng(8)
    rhs = parametric.rhs_values(
        sorted(context.budget * f for f in rng.uniform(0.7, 2.4, MEMBERS))
    )

    start = time.perf_counter()
    lockstep = backend.solve_batch(parametric, rhs, strategy="lockstep")
    lockstep_s = time.perf_counter() - start

    start = time.perf_counter()
    auto = backend.solve_batch(parametric, rhs)
    auto_s = time.perf_counter() - start

    _assert_members_equal(lockstep, auto)
    # the auto strategy must have kept the dual warm-restart path
    assert any(m.stats.warm_started for m in auto[1:])
    return {
        "workload": "rhs-ladder",
        "members": MEMBERS,
        "n": n,
        "cold_fallbacks": sum(1 for m in auto if m.stats.cold_fallback),
        "batched_s": auto_s,
        "sequential_s": lockstep_s,
        # forced lockstep over auto (warm restarts) — typically > 1
        # (lockstep slower), which is exactly why the auto gate keeps
        # ladders on the sequential path
        "lockstep_vs_auto": lockstep_s / max(auto_s, 1e-12),
    }


def run(quick: bool = False) -> list[dict]:
    n, m = (30, 10) if quick else (60, 25)
    context = _context(n, m)
    parametric = compile_lp_no_lf_parametric(context)
    backend = SimplexBackend()
    return [
        _scenario_row(backend, context, parametric, n),
        _ladder_row(backend, context, parametric, n),
    ]


def _archive(rows: list[dict], quick: bool) -> None:
    record(
        "lpbatch",
        rows,
        columns=[
            "workload", "members", "n", "cold_fallbacks",
            "batched_s", "sequential_s", "speedup", "lockstep_vs_auto",
        ],
        title="Batched scenario solves vs per-member sequential (LP−LF)",
    )
    payload = {
        "benchmark": "lpbatch",
        "quick": quick,
        "rows": rows,
        "acceptance": {
            "scenario_speedup_min": 4.0,
            "enforced": not quick,
        },
    }
    (RESULTS_DIR / "BENCH_lpbatch.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def _assert_bars(rows: list[dict], quick: bool) -> None:
    scenario = next(r for r in rows if r["workload"] == "scenario-costs")
    if quick:
        # smoke: lockstep must still win the scenario regime, but a
        # small instance is not held to the full-size bar
        assert scenario["speedup"] > 1.0
        return
    assert scenario["speedup"] >= 4.0


def test_lpbatch(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    rows = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    _archive(rows, quick)
    _assert_bars(rows, quick)


if __name__ == "__main__":
    quick_mode = "--quick" in sys.argv or bool(os.environ.get("BENCH_QUICK"))
    result_rows = run(quick=quick_mode)
    _archive(result_rows, quick_mode)
    _assert_bars(result_rows, quick_mode)
