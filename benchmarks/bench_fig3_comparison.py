"""Figure 3 benchmark: energy vs accuracy for all algorithms.

Paper shape: NAIVE-k worst by a wide margin; Greedy < LP−LF < LP+LF;
ORACLE defines the cheap frontier; NAIVE-1 costs more than NAIVE-k even
at small targets.
"""

from _helpers import record

from repro.experiments import fig3_comparison

COLUMNS = ["algorithm", "budget_mj", "energy_mj", "accuracy"]


def test_fig3_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: fig3_comparison.run(include_naive_one=True),
        rounds=1,
        iterations=1,
    )
    record("fig3_comparison", rows, COLUMNS,
           title="Figure 3: comparison of algorithms")

    approx_best = max(
        r["energy_mj"] for r in rows if r["algorithm"] == "lp-lf"
    )
    naive_full = max(
        r["energy_mj"] for r in rows if r["algorithm"] == "naive-k"
    )
    assert naive_full > approx_best
