"""Multi-tenant service load benchmark (ISSUE acceptance numbers).

Two workloads over one in-process :class:`~repro.service.TopKService`,
each hosting many concurrent sessions on one shared ``n``-node random
topology:

- ``shared``: every session feeds the *same* warmup window, so the
  content-keyed :class:`~repro.service.SharedPlanCache` compiles the
  LP+LF parametric form once and every later session is a pure cache
  hit.  A round-robin :class:`~repro.service.messages.SubmitQuery` loop
  over all sessions measures queries/sec and p50/p99 latency;
- ``private``: identical, except each session feeds a distinct window,
  which defeats content keying and forces one compile per session —
  the pre-service, per-tenant regime.

``compile_speedup`` on the ``shared`` row is the private compile count
over the shared compile count (sessions/1 when the cache works).  The
acceptance bars from the issue — >= 500 queries/sec with p99 < 50 ms
on the shared n = 60 workload, and a >= 10x compile-count reduction —
are asserted here at full size and archived into
``results/BENCH_service.json`` for the regression gate.

A third family, ``wire_*``, measures one pipelined socket connection
under each wire protocol: ``wire_v1`` streams
:class:`~repro.service.messages.SubmitQuery` bursts over the JSON-lines
codec, ``wire_v2`` streams the same bursts over the negotiated binary
codec, and ``wire_v2_batch`` ships the same queries as
:class:`~repro.service.messages.SubmitBatch` frames through the
vectorized executor.  ``wire_speedup`` is each row's queries/sec over
the ``wire_v1`` row's; every mode's replies are collected into a
transcript and the three transcripts must be *byte-identical*
(``identical`` 1/0, asserted always).  The ISSUE bar — >= 3x on
``wire_v2_batch`` — is asserted (and written into the acceptance
block) only with >= 2 usable cores, since client and server time-share
a single core otherwise; every row records ``cores``.

``run(quick=True)`` (or ``--quick`` / ``BENCH_QUICK=1``) shrinks the
fleet for the CI smoke job, which still checks that the shared cache
engages (one compile total) and that the wire transcripts agree,
without enforcing full-size bars.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np
from _helpers import RESULTS_DIR, record

from repro.network.builder import random_topology
from repro.obs import Instrumentation
from repro.service import (
    InProcessClient,
    ServiceConfig,
    ServiceThread,
    SocketClient,
    TopKService,
)

K = 5
WARMUP_ROWS = 3
WIRE_BURST = 64
"""Pipelined frames per flush/drain cycle on the wire workloads."""


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _percentile(latencies_ms: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies_ms), q))


def _run_workload(
    workload: str, n: int, sessions: int, queries: int
) -> dict:
    """One service, ``sessions`` tenants, ``queries`` timed requests."""
    obs = Instrumentation()
    service = TopKService(
        ServiceConfig(
            max_sessions=sessions,
            cache_capacity=max(32, sessions + 4),
            replan_cache_capacity=max(16, sessions + 4),
        ),
        instrumentation=obs,
    )
    client = InProcessClient(service)
    rng = np.random.default_rng(2006)
    topology = random_topology(
        n, rng=rng, radio_range=max(25.0, 200.0 / n**0.5)
    )
    topology_id = client.register_topology(topology)
    budget = service.energy.message_cost(1) * 2.5 * K

    handles = [
        client.open_session(topology_id, K, budget_mj=budget)
        for __ in range(sessions)
    ]
    shared_window = [rng.normal(25.0, 3.0, n) for __ in range(WARMUP_ROWS)]
    for index, handle in enumerate(handles):
        window = (
            shared_window
            if workload == "shared"
            else [
                np.random.default_rng(1000 + index).normal(25.0, 3.0, n)
                for __ in range(WARMUP_ROWS)
            ]
        )
        for row in window:
            handle.feed(row)
        # first query plans (compile or cache hit) and pays install;
        # excluded from the steady-state latency loop
        handle.query(rng.normal(25.0, 3.0, n))

    readings = [rng.normal(25.0, 3.0, n) for __ in range(queries)]
    latencies_ms: list[float] = []
    loop_start = time.perf_counter()
    for index, row in enumerate(readings):
        handle = handles[index % sessions]
        start = time.perf_counter()
        reply = handle.query(row)
        latencies_ms.append((time.perf_counter() - start) * 1e3)
        assert len(reply.nodes) == K
    loop_s = time.perf_counter() - loop_start

    compiles = len(obs.spans.find("compile"))
    assert service.cache.misses == compiles
    return {
        "workload": workload,
        "n": n,
        "sessions": sessions,
        "queries": queries,
        "qps": queries / max(loop_s, 1e-12),
        "p50_ms": _percentile(latencies_ms, 50),
        "p99_ms": _percentile(latencies_ms, 99),
        "compiles": compiles,
        "cache_hits": service.cache.hits,
    }


def _wire_rows(n: int, queries: int, batch: int) -> list[dict]:
    """Single-connection pipelined throughput per wire protocol.

    One live socket service; per mode, a fresh session fed the same
    warmup window answers the same ``queries`` readings — so the reply
    transcripts must agree exactly across protocols and executors.
    """
    rng = np.random.default_rng(2006)
    topology = random_topology(
        n, rng=rng, radio_range=max(25.0, 200.0 / n**0.5)
    )
    warmup = [rng.normal(25.0, 3.0, n) for __ in range(WARMUP_ROWS)]
    readings = np.array([rng.normal(25.0, 3.0, n) for __ in range(queries)])

    service = TopKService(
        ServiceConfig(max_sessions=8, queue_limit=WIRE_BURST + 8)
    )
    budget = service.energy.message_cost(1) * 2.5 * K
    transcripts: dict[str, list] = {}
    timings: dict[str, float] = {}
    with ServiceThread(service) as live:
        for mode in ("v1", "v2", "v2_batch"):
            protocol = "v1" if mode == "v1" else "v2"
            with SocketClient(
                live.host, live.port, protocol=protocol
            ) as client:
                topology_id = client.register_topology(topology)
                handle = client.open_session(
                    topology_id, K, budget_mj=budget
                )
                for row in warmup:
                    handle.feed(row)
                handle.query(rng.normal(25.0, 3.0, n))  # pay planning

                transcript = []
                start = time.perf_counter()
                if mode == "v2_batch":
                    fired = 0
                    while fired < queries:
                        chunk = readings[fired : fired + batch]
                        reply = handle.query_batch(chunk)
                        transcript.extend(
                            zip(
                                reply.nodes, reply.values,
                                reply.energies, reply.accuracies,
                            )
                        )
                        fired += len(chunk)
                else:
                    fired = 0
                    while fired < queries:
                        burst = min(WIRE_BURST, queries - fired)
                        for offset in range(burst):
                            handle.query_nowait(readings[fired + offset])
                        for reply in client.drain():
                            transcript.append(
                                (
                                    reply.nodes, reply.values,
                                    reply.energy_mj, reply.accuracy,
                                )
                            )
                        fired += burst
                timings[mode] = time.perf_counter() - start
                transcripts[mode] = transcript

    identical = float(
        transcripts["v1"] == transcripts["v2"] == transcripts["v2_batch"]
    )
    rows = []
    for mode, elapsed in timings.items():
        rows.append(
            {
                "workload": f"wire_{mode}",
                "n": n,
                "sessions": 1,
                "queries": queries,
                "cores": _cores(),
                "qps": queries / max(elapsed, 1e-12),
                "identical": identical,
            }
        )
    base_qps = rows[0]["qps"]
    for row in rows:
        row["wire_speedup"] = row["qps"] / max(base_qps, 1e-12)
    return rows


def run(quick: bool = False) -> list[dict]:
    n, sessions, queries = (30, 6, 300) if quick else (60, 20, 3000)
    wire_queries, batch = (256, 32) if quick else (2048, 64)
    private = _run_workload("private", n, sessions, queries)
    shared = _run_workload("shared", n, sessions, queries)
    # the headline multi-tenancy win: one compile serves the fleet
    shared["compile_speedup"] = private["compiles"] / max(
        shared["compiles"], 1
    )
    private["compile_speedup"] = 1.0
    return [shared, private] + _wire_rows(n, wire_queries, batch)


def _archive(rows: list[dict], quick: bool) -> None:
    record(
        "service",
        rows,
        columns=[
            "workload", "n", "sessions", "queries", "cores", "qps",
            "p50_ms", "p99_ms", "compiles", "cache_hits",
            "compile_speedup", "wire_speedup", "identical",
        ],
        title="Multi-tenant service load: shared vs private plan caches",
    )
    minima = [
        {
            "metric": "qps",
            "where": {"workload": "shared"},
            "min": 500.0,
        },
        {
            "metric": "compile_speedup",
            "where": {"workload": "shared"},
            "min": 10.0,
        },
        {
            "metric": "identical",
            "where": {"workload": "wire_v2_batch"},
            "min": 1.0,
        },
    ]
    if not quick and _cores() >= 2:
        minima.append(
            {
                "metric": "wire_speedup",
                "where": {"workload": "wire_v2_batch"},
                "min": 3.0,
            }
        )
    payload = {
        "benchmark": "service",
        "quick": quick,
        "cores": _cores(),
        "rows": rows,
        "acceptance": {
            "minima": minima,
            "maxima": [
                {
                    "metric": "p99_ms",
                    "where": {"workload": "shared"},
                    "max": 50.0,
                },
            ],
            "enforced": not quick,
        },
    }
    (RESULTS_DIR / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def _assert_bars(rows: list[dict], quick: bool) -> None:
    shared = next(r for r in rows if r["workload"] == "shared")
    private = next(r for r in rows if r["workload"] == "private")
    # the shared cache must actually engage: one compile for the fleet,
    # one compile per tenant without it
    assert shared["compiles"] == 1
    assert private["compiles"] == shared["sessions"]
    assert shared["compile_speedup"] == shared["sessions"]
    batched = next(r for r in rows if r["workload"] == "wire_v2_batch")
    # protocols and executors must never change the answers
    assert batched["identical"] == 1.0, (
        "wire protocol transcripts diverged (v1 vs v2 vs v2-batch)"
    )
    if quick:
        # smoke: correctness of the sharing, not full-size throughput
        assert shared["qps"] > 0
        assert all(r["qps"] > 0 for r in rows)
        return
    assert shared["qps"] >= 500.0
    assert shared["p99_ms"] < 50.0
    assert shared["compile_speedup"] >= 10.0
    if batched["cores"] >= 2:
        assert batched["wire_speedup"] >= 3.0, (
            f"batched v2 gained only {batched['wire_speedup']:.2f}x"
            " over pipelined v1"
        )


def test_service(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    rows = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    _archive(rows, quick)
    _assert_bars(rows, quick)


if __name__ == "__main__":
    quick_mode = "--quick" in sys.argv or bool(os.environ.get("BENCH_QUICK"))
    result_rows = run(quick=quick_mode)
    _archive(result_rows, quick_mode)
    _assert_bars(result_rows, quick_mode)
