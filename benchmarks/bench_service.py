"""Multi-tenant service load benchmark (ISSUE acceptance numbers).

Two workloads over one in-process :class:`~repro.service.TopKService`,
each hosting many concurrent sessions on one shared ``n``-node random
topology:

- ``shared``: every session feeds the *same* warmup window, so the
  content-keyed :class:`~repro.service.SharedPlanCache` compiles the
  LP+LF parametric form once and every later session is a pure cache
  hit.  A round-robin :class:`~repro.service.messages.SubmitQuery` loop
  over all sessions measures queries/sec and p50/p99 latency;
- ``private``: identical, except each session feeds a distinct window,
  which defeats content keying and forces one compile per session —
  the pre-service, per-tenant regime.

``compile_speedup`` on the ``shared`` row is the private compile count
over the shared compile count (sessions/1 when the cache works).  The
acceptance bars from the issue — >= 500 queries/sec with p99 < 50 ms
on the shared n = 60 workload, and a >= 10x compile-count reduction —
are asserted here at full size and archived into
``results/BENCH_service.json`` for the regression gate.

``run(quick=True)`` (or ``--quick`` / ``BENCH_QUICK=1``) shrinks the
fleet for the CI smoke job, which still checks that the shared cache
engages (one compile total) without enforcing full-size bars.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np
from _helpers import RESULTS_DIR, record

from repro.network.builder import random_topology
from repro.obs import Instrumentation
from repro.service import InProcessClient, ServiceConfig, TopKService

K = 5
WARMUP_ROWS = 3


def _percentile(latencies_ms: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies_ms), q))


def _run_workload(
    workload: str, n: int, sessions: int, queries: int
) -> dict:
    """One service, ``sessions`` tenants, ``queries`` timed requests."""
    obs = Instrumentation()
    service = TopKService(
        ServiceConfig(
            max_sessions=sessions,
            cache_capacity=max(32, sessions + 4),
            replan_cache_capacity=max(16, sessions + 4),
        ),
        instrumentation=obs,
    )
    client = InProcessClient(service)
    rng = np.random.default_rng(2006)
    topology = random_topology(
        n, rng=rng, radio_range=max(25.0, 200.0 / n**0.5)
    )
    topology_id = client.register_topology(topology)
    budget = service.energy.message_cost(1) * 2.5 * K

    handles = [
        client.open_session(topology_id, K, budget_mj=budget)
        for __ in range(sessions)
    ]
    shared_window = [rng.normal(25.0, 3.0, n) for __ in range(WARMUP_ROWS)]
    for index, handle in enumerate(handles):
        window = (
            shared_window
            if workload == "shared"
            else [
                np.random.default_rng(1000 + index).normal(25.0, 3.0, n)
                for __ in range(WARMUP_ROWS)
            ]
        )
        for row in window:
            handle.feed(row)
        # first query plans (compile or cache hit) and pays install;
        # excluded from the steady-state latency loop
        handle.query(rng.normal(25.0, 3.0, n))

    readings = [rng.normal(25.0, 3.0, n) for __ in range(queries)]
    latencies_ms: list[float] = []
    loop_start = time.perf_counter()
    for index, row in enumerate(readings):
        handle = handles[index % sessions]
        start = time.perf_counter()
        reply = handle.query(row)
        latencies_ms.append((time.perf_counter() - start) * 1e3)
        assert len(reply.nodes) == K
    loop_s = time.perf_counter() - loop_start

    compiles = len(obs.spans.find("compile"))
    assert service.cache.misses == compiles
    return {
        "workload": workload,
        "n": n,
        "sessions": sessions,
        "queries": queries,
        "qps": queries / max(loop_s, 1e-12),
        "p50_ms": _percentile(latencies_ms, 50),
        "p99_ms": _percentile(latencies_ms, 99),
        "compiles": compiles,
        "cache_hits": service.cache.hits,
    }


def run(quick: bool = False) -> list[dict]:
    n, sessions, queries = (30, 6, 300) if quick else (60, 20, 3000)
    private = _run_workload("private", n, sessions, queries)
    shared = _run_workload("shared", n, sessions, queries)
    # the headline multi-tenancy win: one compile serves the fleet
    shared["compile_speedup"] = private["compiles"] / max(
        shared["compiles"], 1
    )
    private["compile_speedup"] = 1.0
    return [shared, private]


def _archive(rows: list[dict], quick: bool) -> None:
    record(
        "service",
        rows,
        columns=[
            "workload", "n", "sessions", "queries", "qps",
            "p50_ms", "p99_ms", "compiles", "cache_hits",
            "compile_speedup",
        ],
        title="Multi-tenant service load: shared vs private plan caches",
    )
    payload = {
        "benchmark": "service",
        "quick": quick,
        "rows": rows,
        "acceptance": {
            "minima": [
                {
                    "metric": "qps",
                    "where": {"workload": "shared"},
                    "min": 500.0,
                },
                {
                    "metric": "compile_speedup",
                    "where": {"workload": "shared"},
                    "min": 10.0,
                },
            ],
            "maxima": [
                {
                    "metric": "p99_ms",
                    "where": {"workload": "shared"},
                    "max": 50.0,
                },
            ],
            "enforced": not quick,
        },
    }
    (RESULTS_DIR / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def _assert_bars(rows: list[dict], quick: bool) -> None:
    shared = next(r for r in rows if r["workload"] == "shared")
    private = next(r for r in rows if r["workload"] == "private")
    # the shared cache must actually engage: one compile for the fleet,
    # one compile per tenant without it
    assert shared["compiles"] == 1
    assert private["compiles"] == shared["sessions"]
    assert shared["compile_speedup"] == shared["sessions"]
    if quick:
        # smoke: correctness of the sharing, not full-size throughput
        assert shared["qps"] > 0
        return
    assert shared["qps"] >= 500.0
    assert shared["p99_ms"] < 50.0
    assert shared["compile_speedup"] >= 10.0


def test_service(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    rows = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    _archive(rows, quick)
    _assert_bars(rows, quick)


if __name__ == "__main__":
    quick_mode = "--quick" in sys.argv or bool(os.environ.get("BENCH_QUICK"))
    result_rows = run(quick=quick_mode)
    _archive(result_rows, quick_mode)
    _assert_bars(result_rows, quick_mode)
