"""Extension benchmark: network lifetime under different query plans.

The paper's opening motivation made quantitative: with every node on a
fixed battery, how many collection rounds until the first battery dies?
Approximate PROSPECTOR plans extend lifetime over NAIVE-k both by
spending less total energy and by spreading the relay burden.
"""

import numpy as np
from _helpers import record

from repro.analysis.lifetime import compare_lifetimes
from repro.datagen.gaussian import random_gaussian_field
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.plans.plan import QueryPlan
from repro.sampling.matrix import SampleMatrix

K = 10
BATTERY_MJ = 20_000.0  # ~2 AA batteries' usable radio budget, roughly


def run():
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()
    topology = random_topology(60, rng=rng)
    field = random_gaussian_field(60, rng).scaled_variance(4.0)
    train = field.trace(25, rng)
    samples = SampleMatrix(train.values, K)
    budget = energy.message_cost(1) * 2.5 * K
    context = PlanningContext(topology, energy, samples, K, budget)

    plans = {
        "naive-k": QueryPlan.naive_k(topology, K),
        "lp-no-lf": LPNoLFPlanner().plan(context),
        "lp-lf": LPLFPlanner().plan(context),
    }
    rows = compare_lifetimes(plans, energy, train.values, BATTERY_MJ)
    naive_lifetime = next(
        r["lifetime_rounds"] for r in rows if r["plan"] == "naive-k"
    )
    for row in rows:
        row["vs_naive"] = row["lifetime_rounds"] / naive_lifetime
    return rows


def test_extension_lifetime(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("extension_lifetime", rows,
           title="Extension: network lifetime by plan (battery 20 J/node)")

    by_plan = {r["plan"]: r for r in rows}
    assert by_plan["lp-lf"]["lifetime_rounds"] > by_plan["naive-k"][
        "lifetime_rounds"
    ]
    assert by_plan["lp-no-lf"]["lifetime_rounds"] > by_plan["naive-k"][
        "lifetime_rounds"
    ]
    # the headline multiple the paper's motivation implies
    assert by_plan["lp-lf"]["vs_naive"] > 1.5