"""Extension benchmark: adaptive threshold plans vs LP plans under
location drift (the paper's §7 future-work direction).

Scenario: the samples were collected while region A was hot; between
training and querying the hot spot *moves* to region B.  The
fixed-bandwidth LP plan keeps visiting region A and collapses; the
threshold plan keeps its energy profile and catches the new hot spot,
because any node whose reading crosses the threshold speaks up.

The stationary columns record the price of that robustness: when
history is right, the LP plan is the better deal.
"""

import numpy as np
from _helpers import record

from repro.datagen.gaussian import GaussianField
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.plans.adaptive import ThresholdPlanner, execute_threshold_plan
from repro.plans.plan import top_k_set
from repro.sampling.matrix import SampleMatrix
from repro.simulation.runtime import Simulator

K = 6
TRIALS = 20


def _field(topology, hot_nodes):
    means = np.full(topology.n, 20.0)
    stds = np.full(topology.n, 1.0)
    means[list(hot_nodes)] = 35.0
    stds[list(hot_nodes)] = 2.0
    return GaussianField(means, stds)


def run():
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()
    topology = random_topology(50, rng=rng)

    nodes = [n for n in topology.nodes if n != topology.root]
    region_a = rng.choice(nodes, size=8, replace=False).tolist()
    remaining = [n for n in nodes if n not in region_a]
    region_b = rng.choice(remaining, size=8, replace=False).tolist()

    train_field = _field(topology, region_a)
    drift_field = _field(topology, region_b)
    train = train_field.trace(25, rng)

    budget = energy.message_cost(1) * 2.5 * K
    context = PlanningContext(
        topology, energy, SampleMatrix(train.values, K), K, budget
    )
    lp_plan = LPLFPlanner().plan(context)
    threshold_plan = ThresholdPlanner().plan(
        topology, energy, train.values, K, budget
    )

    simulator = Simulator(topology, energy)
    rows = []
    for regime, field in (("stationary", train_field), ("drifted", drift_field)):
        lp_acc, lp_cost, th_acc, th_cost = [], [], [], []
        for __ in range(TRIALS):
            readings = field.sample(rng)
            truth = top_k_set(readings, K)

            report = simulator.run_collection(lp_plan, readings)
            lp_acc.append(len(report.top_k_nodes(K) & truth) / K)
            lp_cost.append(report.energy_mj)

            result = execute_threshold_plan(threshold_plan, readings)
            th_acc.append(len(result.top_k_nodes(K) & truth) / K)
            th_cost.append(sum(m.cost(energy) for m in result.messages))
        rows.append(
            {
                "regime": regime,
                "lp_lf_accuracy": float(np.mean(lp_acc)),
                "lp_lf_energy_mj": float(np.mean(lp_cost)),
                "threshold_accuracy": float(np.mean(th_acc)),
                "threshold_energy_mj": float(np.mean(th_cost)),
            }
        )
    return rows


def test_extension_adaptive(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("extension_adaptive", rows,
           title="Extension: threshold plans vs LP plans under drift")

    stationary, drifted = rows
    # when history is right, the LP plan is at least competitive
    assert stationary["lp_lf_accuracy"] >= 0.7
    # when the hot spot moves, the LP plan collapses ...
    assert drifted["lp_lf_accuracy"] < 0.4
    # ... while the threshold plan barely notices
    assert drifted["threshold_accuracy"] > 0.7
    assert (
        drifted["threshold_accuracy"]
        >= drifted["lp_lf_accuracy"] + 0.3
    )