"""Fast-path LP compilation benchmark (ISSUE acceptance numbers).

Measures, per formulation and problem size, how long it takes to get a
solver-ready :class:`~repro.lp.StandardForm` three ways:

- ``algebraic_s``: ``build_model`` + ``compile_model`` (the reference
  object-graph path);
- ``fast_cold_s``: the direct array compiler with an empty replan cache;
- ``fast_warm_s``: the same compiler after a prior compile on the same
  topology/k/costs (the :class:`~repro.query.engine.TopKEngine` replan
  regime — only the sample-dependent rows are rebuilt).

The acceptance bar from the issue — >= 5x at LP+LF n=60, m=25 with an
identical optimum — is asserted here, against the cold cache.

``run(quick=True)`` (or ``--quick`` / ``BENCH_QUICK=1``) shrinks the
size ladder for the CI smoke job, which checks optimum equality and
records the numbers without enforcing the full-size bar.  Besides the
human-readable ``results/fastpath.txt`` table, a machine-readable
``results/BENCH_fastpath.json`` is written for the regression gate.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np
from _helpers import RESULTS_DIR, record

from repro.datagen.gaussian import random_gaussian_field
from repro.lp import ScipyBackend, compile_model
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.planners.proof import ProofPlanner

SIZES = ((20, 10), (40, 25), (60, 25))
QUICK_SIZES = ((20, 10), (30, 10))
K = 10


def _context(planner, n: int, m: int, rng) -> PlanningContext:
    energy = EnergyModel.mica2()
    topology = random_topology(n, rng=rng, radio_range=max(25.0, 200.0 / n**0.5))
    field = random_gaussian_field(n, rng).scaled_variance(4.0)
    samples = field.trace(m, rng).sample_matrix(K)
    budget = energy.message_cost(1) * 2 * K
    context = PlanningContext(topology, energy, samples, K, budget)
    if isinstance(planner, ProofPlanner):
        context.budget = planner.minimum_cost(context) * 1.5
    return context


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(quick: bool = False) -> list[dict]:
    rng = np.random.default_rng(2006)
    rows: list[dict] = []
    for n, m in QUICK_SIZES if quick else SIZES:
        # proof's p-variable count explodes cubically; keep it small
        planners = [LPNoLFPlanner(), LPLFPlanner()]
        if n <= 20:
            planners.append(ProofPlanner())
        for planner in planners:
            context = _context(planner, n, m, rng)
            algebraic = _best_of(
                lambda: compile_model(planner.build_model(context)[0])
            )
            fast_cold = _best_of(
                lambda: type(planner)().compile_fast(context)
            )
            planner.compile_fast(context)  # prime the replan cache
            fast_warm = _best_of(lambda: planner.compile_fast(context))
            rows.append(
                {
                    "formulation": planner.name,
                    "n": n,
                    "m": m,
                    "algebraic_s": algebraic,
                    "fast_cold_s": fast_cold,
                    "fast_warm_s": fast_warm,
                    "speedup_cold": algebraic / max(fast_cold, 1e-12),
                    "speedup_warm": algebraic / max(fast_warm, 1e-12),
                }
            )
    return rows


def _archive(rows: list[dict], quick: bool) -> None:
    record(
        "fastpath",
        rows,
        columns=[
            "formulation", "n", "m", "algebraic_s", "fast_cold_s",
            "fast_warm_s", "speedup_cold", "speedup_warm",
        ],
        title="LP compilation: fast path vs algebraic oracle",
    )
    payload = {
        "benchmark": "fastpath",
        "quick": quick,
        "rows": rows,
        "acceptance": {
            "minima": [
                {
                    "metric": "speedup_cold",
                    "where": {"formulation": "lp-lf", "n": 60, "m": 25},
                    "min": 5.0,
                }
            ],
            "enforced": not quick,
        },
    }
    (RESULTS_DIR / "BENCH_fastpath.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def _assert_bars(rows: list[dict], quick: bool) -> None:
    if quick:
        # smoke: the fast path must still win at the largest quick size
        target = next(
            r for r in rows
            if r["formulation"] == "lp-lf" and r["n"] == QUICK_SIZES[-1][0]
        )
        assert target["speedup_cold"] > 1.0
    else:
        # ISSUE acceptance: >= 5x for LP+LF at n=60, m=25, same optimum
        target = next(
            r for r in rows
            if r["formulation"] == "lp-lf" and r["n"] == 60 and r["m"] == 25
        )
        assert target["speedup_cold"] >= 5.0

    n, m = QUICK_SIZES[-1] if quick else (60, 25)
    planner = LPLFPlanner()
    context = _context(planner, n, m, np.random.default_rng(2006))
    compiled = planner.compile_fast(context)
    backend = ScipyBackend()
    fast = backend.solve_form(compiled.form, compiled.name)
    slow = planner.build_model(context)[0].solve(backend)
    assert fast.objective == slow.objective


def test_fastpath(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    rows = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    _archive(rows, quick)
    _assert_bars(rows, quick)


if __name__ == "__main__":
    quick_mode = "--quick" in sys.argv or bool(os.environ.get("BENCH_QUICK"))
    result_rows = run(quick=quick_mode)
    _archive(result_rows, quick_mode)
    _assert_bars(result_rows, quick_mode)
