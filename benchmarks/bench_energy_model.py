"""Section 2 table benchmark: the MICA2 communication cost model.

Regenerates the paper's cost table (send/receive power, byte rate,
derived per-byte cost) and verifies the relationship the paper builds
its argument on: the per-message cost dominates per-byte costs.
"""

from _helpers import record

from repro.network.energy import EnergyModel


def test_energy_model_table(benchmark):
    model = benchmark.pedantic(EnergyModel.mica2, rounds=1, iterations=1)
    rows = [
        {"quantity": "sending cost (mW)", "value": model.sending_mw},
        {"quantity": "receiving cost (mW)", "value": model.receiving_mw},
        {"quantity": "byte rate (bytes/s)", "value": model.byte_rate},
        {"quantity": "per-byte cost (mJ/byte)", "value": round(model.per_byte_mj, 5)},
        {"quantity": "per-message cost (mJ)", "value": model.per_message_mj},
        {"quantity": "value size (bytes)", "value": model.value_bytes},
        {"quantity": "per-value transport (mJ/hop)", "value": round(model.per_value_mj, 4)},
    ]
    record("energy_model", rows, title="Section 2 table: MICA2 cost model")

    assert model.per_byte_mj == (model.sending_mw + model.receiving_mw) / model.byte_rate
    assert model.per_message_mj > 10 * model.per_byte_mj
