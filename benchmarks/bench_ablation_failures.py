"""Ablation: failure-aware edge costs (paper §4.4).

Flaky links inflate their effective cost by failure_probability ×
re-route penalty during optimization.  A failure-aware planner should
route around flaky subtrees and spend less measured energy than a
failure-blind one at comparable accuracy.
"""

import numpy as np
from _helpers import record

from repro.datagen.gaussian import GaussianField
from repro.network.builder import zoned_topology, zone_members
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.planners.base import PlanningContext
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.query.accuracy import accuracy as accuracy_metric
from repro.sampling.matrix import SampleMatrix
from repro.simulation.runtime import Simulator


def run():
    """Two equally promising zones; one is reached over flaky links."""
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()
    k = 5
    topology = zoned_topology(2, zone_size=2 * k, relay_hops=4)
    zones = zone_members(2, zone_size=2 * k, relay_hops=4)

    n = topology.n
    means = np.full(n, 30.0)
    stds = np.full(n, 0.5)
    for zone in zones:
        for node in zone:
            means[node] = 50.0
            stds[node] = 2.0
    # the flaky zone is marginally hotter, so a failure-blind planner
    # is drawn straight into it
    for node in zones[1]:
        means[node] = 50.6
    field = GaussianField(means, stds)
    train = field.trace(20, rng)
    samples = SampleMatrix(train.values, k)

    # zone 2's relay chain fails half the time, with a costly re-route
    flaky_edges = [z for z in zones[1]] + [
        e for e in topology.edges if topology.is_ancestor(e, zones[1][0])
    ]
    failures = LinkFailureModel(
        failure_probability={e: 0.5 for e in flaky_edges},
        reroute_extra_mj={e: 4.0 for e in flaky_edges},
    )

    # enough to acquire roughly one zone, not both
    budget = energy.message_cost(1) * (4 + 2 * k) * 1.4
    rows = []
    for label, aware in (("failure-blind", False), ("failure-aware", True)):
        context = PlanningContext(
            topology, energy, samples, k, budget,
            failures=failures if aware else None,
        )
        plan = LPNoLFPlanner().plan(context)
        simulator = Simulator(
            topology, energy, failures=failures, rng=np.random.default_rng(7)
        )
        energies, accuracies = [], []
        for __ in range(15):
            readings = field.sample(rng)
            report = simulator.run_collection(plan, readings)
            energies.append(report.energy_mj)
            accuracies.append(
                accuracy_metric(report.top_k_nodes(k), readings, k)
            )
        flaky_bandwidth = sum(plan.bandwidths[e] for e in flaky_edges)
        rows.append(
            {
                "planner": label,
                "energy_mj": float(np.mean(energies)),
                "accuracy": float(np.mean(accuracies)),
                "flaky_zone_bandwidth": flaky_bandwidth,
            }
        )
    return rows


def test_ablation_failures(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_failures", rows, title="Ablation: failure-aware costs")

    blind, aware = rows
    # the aware planner leans away from the flaky zone
    assert aware["flaky_zone_bandwidth"] <= blind["flaky_zone_bandwidth"]
    assert aware["energy_mj"] <= blind["energy_mj"] * 1.05
