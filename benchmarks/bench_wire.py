"""Wire-codec micro-benchmark: JSON-lines v1 vs binary v2.

One row per representative message shape.  Each codec is timed on full
``decode(encode(m))`` round trips — the work a connection actually
pays per frame — and every timed pair is checked for exact equality
first, so the speedups can never come from dropping fidelity:

- ``submit_query`` / ``query_reply``: the scalar request/reply pair
  (an ``n``-float readings vector, a ``k``-row answer);
- ``feed_sample``: the streaming ingest frame;
- ``submit_batch`` / ``batch_reply``: the batched data plane — a
  ``(B, n)`` readings matrix and its per-epoch replies, where the
  binary codec's raw-buffer framing shows up most;
- ``submit_batch_blob``: the same matrix through a
  :class:`~repro.service.artifacts.BlobSpool`, where the frame shrinks
  to a content-named reference (the same-host shared-memory fast
  path); ``bytes_ratio`` is the interesting column — the digest makes
  encode compute-bound, so its speedup is not asserted.

``codec_speedup`` is v2 round-trips/sec over v1's on the same
message; ``bytes_ratio`` is the v1 frame size over v2's.  The
acceptance bars — v2 >= 4x codec speed on the batched request, >= 1.2x
on the ragged batched reply, and >= 2x byte compaction on the matrix
— are asserted at full size and
archived into ``results/BENCH_wire.json`` for the regression gate.

``run(quick=True)`` (or ``--quick`` / ``BENCH_QUICK=1``) shrinks the
iteration counts for the CI smoke job, which still asserts round-trip
equality on every shape without enforcing the full-size bars.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

import numpy as np
from _helpers import RESULTS_DIR, record

from repro.service import messages as msg
from repro.service import wire
from repro.service.artifacts import BlobSpool

N = 30
K = 5
BATCH = 64


def _messages() -> dict[str, msg.Message]:
    rng = np.random.default_rng(2006)
    readings = tuple(float(v) for v in rng.normal(25.0, 3.0, N))
    matrix = tuple(
        tuple(float(v) for v in rng.normal(25.0, 3.0, N))
        for __ in range(BATCH)
    )
    return {
        "submit_query": msg.SubmitQuery(
            session_id="s0001", readings=readings
        ),
        "feed_sample": msg.FeedSample(session_id="s0001", readings=readings),
        "query_reply": msg.QueryReply(
            session_id="s0001",
            nodes=tuple(range(K)),
            values=readings[:K],
            energy_mj=12.5,
            accuracy=0.8,
        ),
        "submit_batch": msg.SubmitBatch(
            session_id="s0001", readings=matrix
        ),
        "batch_reply": msg.BatchReply(
            session_id="s0001",
            nodes=tuple(tuple(range(K)) for __ in range(BATCH)),
            values=tuple(row[:K] for row in matrix),
            energies=tuple(row[0] for row in matrix),
            accuracies=tuple(
                0.8 if i % 3 else None for i in range(BATCH)
            ),
        ),
    }


def _time_round_trips(round_trip, iterations: int) -> float:
    round_trip()  # warm caches; equality asserted before timing anyway
    start = time.perf_counter()
    for __ in range(iterations):
        round_trip()
    return iterations / max(time.perf_counter() - start, 1e-12)


def _row(name: str, message: msg.Message, iterations: int, spool=None):
    line = (msg.encode(message) + "\n").encode()
    frame = wire.encode_frame(message, spool=spool)

    # fidelity first: both codecs must reproduce the message exactly
    assert msg.decode(line.decode()) == message
    decoded, __ = wire.decode_frame(frame[4:], spool=spool)
    assert decoded == message

    def v1_round_trip():
        msg.decode(msg.encode(message))

    def v2_round_trip():
        wire.decode_frame(
            wire.encode_frame(message, spool=spool)[4:], spool=spool
        )

    v1_rps = _time_round_trips(v1_round_trip, iterations)
    v2_rps = _time_round_trips(v2_round_trip, iterations)
    return {
        "message": name,
        "iterations": iterations,
        "v1_rps": v1_rps,
        "v2_rps": v2_rps,
        "codec_speedup": v2_rps / max(v1_rps, 1e-12),
        "bytes_v1": len(line),
        "bytes_v2": len(frame),
        "bytes_ratio": len(line) / max(len(frame), 1),
    }


def run(quick: bool = False) -> list[dict]:
    small_iters, big_iters = (300, 60) if quick else (4000, 800)
    rows = []
    for name, message in _messages().items():
        iterations = (
            big_iters if name in ("submit_batch", "batch_reply")
            else small_iters
        )
        rows.append(_row(name, message, iterations))
    with tempfile.TemporaryDirectory() as blob_dir:
        spool = BlobSpool(blob_dir, threshold=4096)
        rows.append(
            _row(
                "submit_batch_blob",
                _messages()["submit_batch"],
                big_iters,
                spool=spool,
            )
        )
    return rows


def _archive(rows: list[dict], quick: bool) -> None:
    record(
        "wire",
        rows,
        columns=[
            "message", "iterations", "v1_rps", "v2_rps",
            "codec_speedup", "bytes_v1", "bytes_v2", "bytes_ratio",
        ],
        title="Wire codec round-trips: JSON-lines v1 vs binary v2",
    )
    payload = {
        "benchmark": "wire",
        "quick": quick,
        "rows": rows,
        "acceptance": {
            "minima": [
                {
                    "metric": "codec_speedup",
                    "where": {"message": "submit_batch"},
                    "min": 4.0,
                },
                {
                    "metric": "codec_speedup",
                    "where": {"message": "batch_reply"},
                    "min": 1.2,
                },
                {
                    "metric": "bytes_ratio",
                    "where": {"message": "submit_batch"},
                    "min": 2.0,
                },
            ],
            "enforced": not quick,
        },
    }
    (RESULTS_DIR / "BENCH_wire.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def _assert_bars(rows: list[dict], quick: bool) -> None:
    by_name = {row["message"]: row for row in rows}
    blob = by_name["submit_batch_blob"]
    # the blob reference must be dramatically smaller than any inline
    # framing of the same matrix — that is its whole point
    assert blob["bytes_v2"] < by_name["submit_batch"]["bytes_v2"] / 10
    if quick:
        assert all(row["v2_rps"] > 0 for row in rows)
        return
    assert by_name["submit_batch"]["codec_speedup"] >= 4.0
    assert by_name["batch_reply"]["codec_speedup"] >= 1.2
    assert by_name["submit_batch"]["bytes_ratio"] >= 2.0


def test_wire(benchmark):
    quick = bool(os.environ.get("BENCH_QUICK"))
    rows = benchmark.pedantic(run, args=(quick,), rounds=1, iterations=1)
    _archive(rows, quick)
    _assert_bars(rows, quick)


if __name__ == "__main__":
    quick_mode = "--quick" in sys.argv or bool(os.environ.get("BENCH_QUICK"))
    result_rows = run(quick=quick_mode)
    _archive(result_rows, quick_mode)
    _assert_bars(result_rows, quick_mode)
