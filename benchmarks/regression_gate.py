"""Perf-regression gate: fresh ``BENCH_*.json`` runs vs committed baselines.

Every benchmark in this directory archives a machine-readable payload
under ``results/`` (``BENCH_<name>.json``)::

    {"benchmark": "lpsweep", "quick": false, "rows": [...],
     "acceptance": {..., "enforced": true}}

The gate pairs each fresh payload with the committed baseline of the
same name under ``baselines/`` — ``BENCH_<name>.json`` for full runs,
``BENCH_<name>.quick.json`` when the fresh payload carries
``"quick": true`` — and fails (exit 1) when:

- a **ratio metric regresses**: any ``speedup``-style field drops below
  ``baseline * (1 - tolerance)`` (default tolerance 0.25, i.e. a >25%
  slowdown).  Only dimensionless ratio fields are compared; raw
  ``*_s`` timings are machine-dependent and deliberately skipped, so
  the gate is stable across runner hardware;
- an **acceptance bar is missed**: the ``acceptance`` block of the
  baseline (and of the fresh payload) declares hard minima/maxima that
  are enforced against the fresh rows whenever ``enforced`` is true.
  Two forms are understood: legacy flat keys like
  ``"replay_speedup_min": 8.0`` (tokens select the row, the suffix
  names the metric) and the structured form::

      "minima": [{"metric": "speedup_cold",
                  "where": {"formulation": "lp-lf", "n": 60, "m": 25},
                  "min": 5.0}]

  (``"maxima"`` / ``"max"`` symmetrically for lower-is-better bars);
- a baseline row vanished from the fresh run, or the baseline file for
  a fresh payload is missing entirely.

Baselines are ordinary benchmark payloads: refresh one by re-running
the benchmark on a quiet machine and copying ``results/BENCH_<x>.json``
over ``baselines/BENCH_<x>.json`` (or the ``.quick.json`` twin from a
``--quick`` run).

Usage::

    python regression_gate.py                 # gate every fresh payload
    python regression_gate.py lpsweep         # gate one benchmark
    python regression_gate.py --tolerance 0.5 # looser bar for noisy CI

Stdlib-only by design: the gate must run even where numpy/scipy are
broken, because that is exactly when you want it to scream.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
DEFAULT_RESULTS_DIR = HERE / "results"
DEFAULT_BASELINE_DIR = HERE / "baselines"
DEFAULT_TOLERANCE = 0.25


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# -- row identity -------------------------------------------------------------
def row_key_fields(rows: list[dict]) -> list[str]:
    """The smallest leading field set that identifies every row.

    String-valued fields (``workload``, ``backend``, ``formulation``)
    are always part of the key; integer fields (``n``, ``m``) are
    appended, in declaration order, only until the keys are unique.
    """
    if not rows:
        return []
    fields = list(rows[0].keys())
    key_fields = [
        f for f in fields if all(isinstance(r.get(f), str) for r in rows)
    ]

    def unique(candidate: list[str]) -> bool:
        keys = [tuple(r.get(f) for f in candidate) for r in rows]
        return len(set(keys)) == len(keys)

    if not unique(key_fields):
        for f in fields:
            if f in key_fields:
                continue
            if all(
                isinstance(r.get(f), int) and not isinstance(r.get(f), bool)
                for r in rows
            ):
                key_fields.append(f)
                if unique(key_fields):
                    break
    return key_fields


def row_key(row: dict, key_fields: list[str]) -> tuple:
    return tuple((f, row.get(f)) for f in key_fields)


def _key_label(key: tuple) -> str:
    return ", ".join(f"{f}={v}" for f, v in key)


def _ratio_fields(rows: list[dict]) -> list[str]:
    """Dimensionless higher-is-better fields tracked for regressions."""
    if not rows:
        return []
    return [
        f
        for f in rows[0]
        if "speedup" in f and all(_is_number(r.get(f)) for r in rows)
    ]


# -- acceptance bars ----------------------------------------------------------
def _row_tokens(row: dict, key_fields: list[str]) -> set[str]:
    tokens: set[str] = set()
    for f in key_fields:
        value = row.get(f)
        if isinstance(value, str):
            tokens.update(
                t for t in re.split(r"[^0-9a-z]+", value.lower()) if t
            )
    return tokens


def _legacy_bars(
    acceptance: dict, rows: list[dict], key_fields: list[str]
) -> list[dict]:
    """Decode flat ``<selector>_<metric>_min`` / ``_max`` keys.

    The trailing ``_min``/``_max`` names the bound, the longest suffix
    naming a numeric row field is the metric, and the leading tokens
    select the row (tokens that occur in no row at all are treated as
    descriptive and ignored, e.g. the ``sweep`` in
    ``simplex_sweep_speedup_min``).
    """
    if not rows:
        return []
    numeric_fields = {f for f in rows[0] if _is_number(rows[0].get(f))}
    vocabulary: set[str] = set()
    for row in rows:
        vocabulary |= _row_tokens(row, key_fields)
    bars: list[dict] = []
    for key, value in acceptance.items():
        bound = (
            "min" if key.endswith("_min")
            else "max" if key.endswith("_max")
            else None
        )
        if bound is None or not _is_number(value):
            continue
        tokens = key[: -len("_min")].split("_")
        metric = None
        selectors: list[str] = []
        for i in range(len(tokens)):
            candidate = "_".join(tokens[i:])
            if candidate in numeric_fields:
                metric = candidate
                selectors = [t for t in tokens[:i] if t in vocabulary]
                break
        if metric is None:
            continue
        bars.append({"metric": metric, "tokens": selectors, bound: value})
    return bars


def _rows_matching(bar: dict, rows: list[dict], key_fields: list[str]):
    where = bar.get("where")
    if where is not None:
        return [
            r for r in rows if all(r.get(f) == v for f, v in where.items())
        ]
    tokens = set(bar.get("tokens") or ())
    return [r for r in rows if tokens <= _row_tokens(r, key_fields)]


def _acceptance_checks(
    acceptance: dict, rows: list[dict], key_fields: list[str]
) -> list[dict]:
    if not acceptance.get("enforced"):
        return []
    bars = _legacy_bars(acceptance, rows, key_fields)
    bars += list(acceptance.get("minima") or ())
    bars += list(acceptance.get("maxima") or ())
    checks = []
    for bar in bars:
        metric = bar["metric"]
        bound = "min" if "min" in bar else "max"
        limit = bar[bound]
        matched = _rows_matching(bar, rows, key_fields)
        if not matched:
            checks.append(
                {
                    "kind": "coverage",
                    "metric": metric,
                    "row": repr(bar.get("where") or bar.get("tokens")),
                    "value": None,
                    "limit": limit,
                    "passed": False,
                    "detail": "acceptance bar matched no fresh row",
                }
            )
            continue
        for row in matched:
            value = row.get(metric)
            passed = _is_number(value) and (
                value >= limit if bound == "min" else value <= limit
            )
            checks.append(
                {
                    "kind": "minimum" if bound == "min" else "maximum",
                    "metric": metric,
                    "row": _key_label(row_key(row, key_fields)),
                    "value": value,
                    "limit": limit,
                    "passed": passed,
                    "detail": f"acceptance {bound} {limit:g}",
                }
            )
    return checks


# -- payload comparison -------------------------------------------------------
def compare_payload(
    fresh: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[dict]:
    """All gate checks for one benchmark payload pair."""
    checks: list[dict] = []
    fresh_rows = list(fresh.get("rows") or ())
    base_rows = list(baseline.get("rows") or ())
    key_fields = row_key_fields(base_rows or fresh_rows)
    fresh_by_key = {row_key(r, key_fields): r for r in fresh_rows}

    for base_row in base_rows:
        key = row_key(base_row, key_fields)
        fresh_row = fresh_by_key.get(key)
        if fresh_row is None:
            checks.append(
                {
                    "kind": "regression",
                    "metric": "(row)",
                    "row": _key_label(key),
                    "value": None,
                    "limit": None,
                    "passed": False,
                    "detail": "baseline row missing from fresh run",
                }
            )
            continue
        for metric in _ratio_fields([base_row]):
            value = fresh_row.get(metric)
            floor = base_row[metric] * (1.0 - tolerance)
            checks.append(
                {
                    "kind": "regression",
                    "metric": metric,
                    "row": _key_label(key),
                    "value": value if _is_number(value) else None,
                    "limit": floor,
                    "passed": _is_number(value) and value >= floor,
                    "detail": (
                        f"baseline {base_row[metric]:.3f}"
                        f" - {tolerance:.0%} tolerance"
                    ),
                }
            )

    # acceptance bars travel in both payloads; the baseline copy is
    # authoritative (a benchmark edit cannot silently drop its own bar)
    seen: set[tuple] = set()
    for payload in (baseline, fresh):
        for check in _acceptance_checks(
            payload.get("acceptance") or {}, fresh_rows, key_fields
        ):
            identity = (check["kind"], check["metric"], check["row"],
                        check["limit"])
            if identity in seen:
                continue
            seen.add(identity)
            checks.append(check)
    return checks


def run_gate(
    results_dir: Path | str = DEFAULT_RESULTS_DIR,
    baseline_dir: Path | str = DEFAULT_BASELINE_DIR,
    tolerance: float = DEFAULT_TOLERANCE,
    names: list[str] | None = None,
) -> list[dict]:
    """Gate every fresh ``BENCH_*.json`` (or just ``names``)."""
    results_dir = Path(results_dir)
    baseline_dir = Path(baseline_dir)
    fresh_paths = sorted(results_dir.glob("BENCH_*.json"))
    if names:
        wanted = set(names)
        fresh_paths = [
            p for p in fresh_paths
            if p.stem.removeprefix("BENCH_").removesuffix(".quick") in wanted
        ]
        missing = wanted - {
            p.stem.removeprefix("BENCH_").removesuffix(".quick")
            for p in fresh_paths
        }
        for name in sorted(missing):
            fresh_paths.append(results_dir / f"BENCH_{name}.json")

    checks: list[dict] = []
    for path in fresh_paths:
        name = path.stem.removeprefix("BENCH_").removesuffix(".quick")
        if not path.exists():
            checks.append(
                {
                    "benchmark": name, "kind": "coverage", "metric": "(file)",
                    "row": str(path), "value": None, "limit": None,
                    "passed": False,
                    "detail": "fresh result payload not found — run the"
                    " benchmark first",
                }
            )
            continue
        fresh = json.loads(path.read_text())
        name = fresh.get("benchmark", name)
        suffix = ".quick.json" if fresh.get("quick") else ".json"
        baseline_path = baseline_dir / f"BENCH_{name}{suffix}"
        if not baseline_path.exists():
            checks.append(
                {
                    "benchmark": name, "kind": "coverage", "metric": "(file)",
                    "row": str(baseline_path), "value": None, "limit": None,
                    "passed": False,
                    "detail": "no committed baseline for this payload",
                }
            )
            continue
        baseline = json.loads(baseline_path.read_text())
        if bool(baseline.get("quick")) != bool(fresh.get("quick")):
            checks.append(
                {
                    "benchmark": name, "kind": "coverage", "metric": "(mode)",
                    "row": str(baseline_path), "value": None, "limit": None,
                    "passed": False,
                    "detail": "baseline quick flag disagrees with fresh run",
                }
            )
            continue
        for check in compare_payload(fresh, baseline, tolerance):
            check["benchmark"] = name
            checks.append(check)
    return checks


def render_report(checks: list[dict]) -> str:
    lines = []
    for check in checks:
        status = "ok  " if check["passed"] else "FAIL"
        value = check.get("value")
        limit = check.get("limit")
        numbers = ""
        if value is not None and limit is not None:
            op = ">=" if check["kind"] != "maximum" else "<="
            numbers = f"  {value:.3f} {op} {limit:.3f}"
        lines.append(
            f"{status} {check.get('benchmark', '?'):12s}"
            f" {check['kind']:10s} {check['metric']}"
            f"[{check['row']}]{numbers}  ({check['detail']})"
        )
    failed = sum(1 for c in checks if not c["passed"])
    lines.append(
        f"{len(checks) - failed}/{len(checks)} checks passed"
        + (f", {failed} FAILED" if failed else "")
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="regression_gate",
        description="fail on >tolerance benchmark regressions vs baselines",
    )
    parser.add_argument(
        "names", nargs="*",
        help="benchmark names to gate (default: every fresh BENCH_*.json)",
    )
    parser.add_argument(
        "--results-dir", default=str(DEFAULT_RESULTS_DIR),
        help="directory holding the fresh BENCH_*.json payloads",
    )
    parser.add_argument(
        "--baseline-dir", default=str(DEFAULT_BASELINE_DIR),
        help="directory holding the committed baseline payloads",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional drop in ratio metrics (default 0.25)",
    )
    args = parser.parse_args(argv)
    checks = run_gate(
        results_dir=args.results_dir,
        baseline_dir=args.baseline_dir,
        tolerance=args.tolerance,
        names=args.names or None,
    )
    if not checks:
        print("regression gate: nothing to check (no fresh payloads)")
        return 1
    print(render_report(checks))
    return 0 if all(c["passed"] for c in checks) else 1


if __name__ == "__main__":
    sys.exit(main())
