#!/usr/bin/env python3
"""Inspecting plans before installing them.

Disseminating a plan costs on the order of a full collection phase
(paper §2/§5), so a deployment wants to understand a candidate plan —
its cost anatomy, its bottleneck edges, its expected accuracy — and
whether a re-optimized plan is worth the installation price (§4.4
"Plan Re-calculation") before touching the network.

Run:  python examples/plan_inspection.py
"""

import numpy as np

from repro import (
    EnergyModel,
    LPLFPlanner,
    PlanningContext,
    SampleMatrix,
    random_topology,
)
from repro.analysis import compare_plans, explain_plan
from repro.datagen import random_gaussian_field
from repro.experiments.reporting import format_table

K = 8


def main() -> None:
    rng = np.random.default_rng(17)
    energy = EnergyModel.mica2()
    topology = random_topology(50, rng=rng)
    field = random_gaussian_field(50, rng).scaled_variance(6.0)
    samples = SampleMatrix(field.trace(25, rng).values, K)

    tight = LPLFPlanner().plan(
        PlanningContext(topology, energy, samples, K,
                        budget=energy.message_cost(1) * 1.5 * K)
    )
    generous = LPLFPlanner().plan(
        PlanningContext(topology, energy, samples, K,
                        budget=energy.message_cost(1) * 3.5 * K)
    )

    report = explain_plan(tight, samples, energy)
    print(
        f"tight plan: {report.num_edges_used} edges,"
        f" {report.visited_nodes} nodes visited,"
        f" expected accuracy {report.expected_accuracy:.0%}"
    )
    print(
        f"  cost anatomy: {report.message_cost_mj:.1f} mJ messages +"
        f" {report.value_cost_mj:.1f} mJ value transport"
        f" = {report.total_cost_mj:.1f} mJ"
    )
    bottlenecks = report.bottlenecks(saturation_threshold=0.8)
    print(f"  bottleneck edges (>=80% saturated): {len(bottlenecks)}")
    if bottlenecks:
        print(
            format_table(
                [
                    {
                        "edge": b.edge,
                        "depth": b.depth,
                        "bandwidth": b.bandwidth,
                        "mean_sent": b.mean_transmitted,
                        "saturation": b.saturation,
                    }
                    for b in bottlenecks[:5]
                ]
            )
        )

    comparison = compare_plans(tight, generous, samples, energy)
    print(
        f"\ncandidate (generous) plan: +{comparison.hits_delta:.2f} expected"
        f" hits/query for +{comparison.cost_delta_mj:.1f} mJ/query;"
        f" installation costs {comparison.install_cost_mj:.1f} mJ"
    )
    verdict = "install" if comparison.worth_installing() else "keep current"
    print(f"dissemination decision (>=10% better rule): {verdict}")


if __name__ == "__main__":
    main()
