#!/usr/bin/env python3
"""Adaptive monitoring of the Intel-Lab-style temperature network.

Drives the full :class:`~repro.query.engine.TopKEngine` lifecycle on
the 54-mote lab surrogate (paper §5, Figure 9): the engine bootstraps
its sample window, then runs the explore/exploit loop — occasionally
paying for a full sample, otherwise executing the installed plan —
re-optimizing at the base station and re-installing only when the new
plan is clearly better (paper §4.4).

Run:  python examples/intel_lab.py
"""

import numpy as np

from repro import EnergyModel, EngineConfig, LPNoLFPlanner, TopKEngine
from repro.datagen import IntelLabSurrogate, intel_lab_network
from repro.sampling import AdaptiveSampler

K = 5
WARMUP_EPOCHS = 30
LIVE_EPOCHS = 120


def main() -> None:
    rng = np.random.default_rng(11)
    topology = intel_lab_network(rng)
    print(f"lab network: {topology.n} motes, height {topology.height}")

    surrogate = IntelLabSurrogate()
    trace = surrogate.generate(topology, WARMUP_EPOCHS + LIVE_EPOCHS, rng)
    warmup, live = trace.split(WARMUP_EPOCHS)

    energy = EnergyModel.mica2()
    engine = TopKEngine(
        topology,
        energy,
        k=K,
        planner=LPNoLFPlanner(),
        config=EngineConfig(
            budget_mj=energy.message_cost(1) * (topology.height + 2) * 2.5,
            window_capacity=25,
            replan_every=10,
        ),
        sampler=AdaptiveSampler(base_rate=0.05, target_accuracy=0.65,
                                rng=np.random.default_rng(3)),
        rng=np.random.default_rng(4),
    )

    for readings in warmup.values[-25:]:
        engine.feed_sample(readings)

    queries = samples = replans = 0
    accuracies = []
    query_energy = []
    for readings in live:
        outcome = engine.step(readings)
        if outcome.action == "sample":
            samples += 1
        else:
            queries += 1
            accuracies.append(outcome.result.accuracy)
            query_energy.append(outcome.energy_mj)
            if outcome.notes.get("replanned"):
                replans += 1

    print(
        f"\nover {LIVE_EPOCHS} epochs: {queries} queries,"
        f" {samples} exploration samples, {replans} plan re-installs"
    )
    print(
        f"mean accuracy {np.mean(accuracies):.0%},"
        f" mean query energy {np.mean(query_energy):.1f} mJ,"
        f" total spend {engine.total_energy_mj:.0f} mJ"
    )

    naive_cost = engine.simulator.run_naive_k(live.epoch(0), K).energy_mj
    print(
        f"for scale: one exact NAIVE-k collection costs {naive_cost:.0f} mJ"
        f" — about {naive_cost / np.mean(query_energy):.1f}x a planned query"
    )


if __name__ == "__main__":
    main()
