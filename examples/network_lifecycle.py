#!/usr/bin/env python3
"""A deployment's full lifecycle, end to end.

Ties together the operational machinery around the planners:

1. the spanning tree is built by the simulated *distributed* MST
   construction (the paper's citation [5] — GHS-style fragment
   merging), with its message cost reported;
2. a weighted-majority ensemble (citation [9]) decides which PROSPECTOR
   plans, learning from observed epochs;
3. mid-deployment, a node dies permanently; the tree is repaired and
   per-node state migrated (§4.4);
4. a proof-based audit estimates the installed plan's real accuracy and
   tunes the re-sampling rate (§4.4).

Run:  python examples/network_lifecycle.py
"""

import numpy as np

from repro import (
    EnergyModel,
    EngineConfig,
    GreedyPlanner,
    LPLFPlanner,
    LPNoLFPlanner,
    TopKEngine,
    WeightedMajorityPlanner,
    build_mst,
)
from repro.datagen import GaussianField

K = 5
N = 45


def main() -> None:
    rng = np.random.default_rng(99)
    energy = EnergyModel.mica2()

    # 1. distributed tree construction over the radio graph
    positions = [tuple(p) for p in rng.uniform(0, 90, size=(N, 2))]
    outcome = build_mst(positions, radio_range=30.0)
    topology = outcome.topology
    print(
        f"distributed MST: {topology.n} nodes in {outcome.rounds} rounds,"
        f" {outcome.messages} protocol messages"
        f" (~{outcome.messages * energy.per_message_mj:.0f} mJ once,"
        f" amortized over the deployment)"
    )

    field = GaussianField(
        rng.uniform(20, 30, N), rng.uniform(1.5, 4.0, N)
    )

    # 2. an ensemble of PROSPECTORs, weighted by observed performance
    ensemble = WeightedMajorityPlanner(
        [GreedyPlanner(), LPNoLFPlanner(), LPLFPlanner()], beta=0.75
    )
    engine = TopKEngine(
        topology,
        energy,
        k=K,
        planner=ensemble,
        config=EngineConfig(budget_mj=energy.message_cost(1) * 2.5 * K),
        rng=np.random.default_rng(1),
    )
    for __ in range(20):
        engine.feed_sample(field.sample(rng))

    for __ in range(15):
        readings = field.sample(rng)
        engine.query(readings)
        ensemble.observe(readings, K)
    print("\nexpert standings after 15 scored epochs:")
    for row in ensemble.standings():
        print(
            f"  {row['expert']:10s} weight {row['weight']:.2f}"
            f"  mean hits {row['mean_hits']:.2f}/{K}"
        )

    # 3. a permanent node failure (§4.4): repair the tree, migrate state
    dead = 17
    id_map = engine.handle_permanent_failure(dead, radio_range=30.0)
    print(
        f"\nnode {dead} died permanently; tree repaired"
        f" ({engine.topology.n} nodes remain), samples migrated,"
        " plan dropped for re-optimization"
    )

    survivors = sorted(id_map, key=id_map.get)
    def project(readings):
        return [readings[old] for old in survivors]

    result = engine.query(project(field.sample(rng)))
    print(f"first post-repair query: accuracy {result.accuracy:.0%}")

    # 4. audit the installed plan with a proof run (§4.4 re-sampling)
    estimated, audit_energy = engine.audit(project(field.sample(rng)))
    print(
        f"\nproof audit: estimated plan accuracy {estimated:.0%}"
        f" at {audit_energy:.0f} mJ;"
        f" exploration rate now {engine.sampler.rate:.2f}"
    )
    print(f"total deployment spend so far: {engine.total_energy_mj:.0f} mJ")


if __name__ == "__main__":
    main()
