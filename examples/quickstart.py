#!/usr/bin/env python3
"""Quickstart: plan and run an approximate top-k query in five steps.

1. Build a random sensor network (spanning tree over a field).
2. Collect a handful of full-network samples (the paper's §3 idea:
   samples instead of explicit probabilistic models).
3. Ask PROSPECTOR LP+LF for the best plan under an energy budget.
4. Execute the plan on fresh readings through the simulator.
5. Compare the answer and energy with the exact NAIVE-k baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    EnergyModel,
    LPLFPlanner,
    PlanningContext,
    SampleMatrix,
    Simulator,
    random_topology,
)
from repro.datagen import random_gaussian_field
from repro.query import accuracy

K = 10
BUDGET_MJ = 45.0


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. a 60-node network in a 100m x 100m field, root in the center
    topology = random_topology(60, rng=rng)
    print(f"network: {topology.n} nodes, tree height {topology.height}")

    # 2. past behaviour: 25 full samples of a Gaussian sensor field
    field = random_gaussian_field(60, rng).scaled_variance(4.0)
    samples = SampleMatrix(field.trace(25, rng).values, K)
    print(f"samples: {samples.num_samples} x {samples.num_nodes} matrix")

    # 3. optimize a plan under the budget
    energy = EnergyModel.mica2()
    context = PlanningContext(topology, energy, samples, K, BUDGET_MJ)
    plan = LPLFPlanner().plan(context)
    print(
        f"plan: {len(plan.used_edges)} edges used,"
        f" budgeted cost {plan.static_cost(energy):.1f} mJ"
        f" (budget {BUDGET_MJ} mJ)"
    )

    # 4. run it on a fresh epoch
    simulator = Simulator(topology, energy)
    readings = field.sample(rng)
    report = simulator.run_collection(plan, readings)
    answer = report.top_k_nodes(K)
    print(
        f"approximate answer: nodes {sorted(answer)}\n"
        f"  accuracy {accuracy(answer, readings, K):.0%},"
        f" energy {report.energy_mj:.1f} mJ,"
        f" {report.num_messages} messages"
    )

    # 5. the exact baseline for comparison
    naive = simulator.run_naive_k(readings, K)
    print(
        f"NAIVE-k (exact): energy {naive.energy_mj:.1f} mJ,"
        f" {naive.num_messages} messages"
        f" -> approximation saved"
        f" {1 - report.energy_mj / naive.energy_mj:.0%} energy"
    )


if __name__ == "__main__":
    main()
