#!/usr/bin/env python3
"""Generalized subset queries: a temperature alarm (paper §3).

The paper notes its sampling + LP machinery "can be easily generalized
to queries that return subsets of all sensor values, e.g., selection
and quantile queries" — the matrix entry becomes "node i contributed to
the answer of sample j".  Here we monitor the lab surrogate for motes
exceeding an alarm threshold, and also ask for the network's median
reading, all through the unchanged PROSPECTOR LP+LF planner.

Run:  python examples/threshold_alarm.py
"""

import numpy as np

from repro import EnergyModel, Simulator
from repro.datagen import IntelLabSurrogate, intel_lab_network
from repro.plans.plan import QueryPlan
from repro.queries import (
    QuantileQuery,
    SelectionQuery,
    SubsetQueryPlanner,
    run_subset_query,
)


def main() -> None:
    rng = np.random.default_rng(33)
    energy = EnergyModel.mica2()
    topology = intel_lab_network(rng)
    surrogate = IntelLabSurrogate()
    trace = surrogate.generate(topology, 80, rng)
    train, live = trace.split(50)
    print(
        f"lab network: {topology.n} motes; training on"
        f" {train.num_epochs} epochs"
    )

    full_cost = QueryPlan.full(topology).static_cost(energy)
    simulator = Simulator(topology, energy)

    alarm_threshold = float(np.quantile(train.values, 0.93))
    queries = [
        (
            SelectionQuery(threshold=alarm_threshold),
            energy.message_cost(1) * 22,
            f"alarm: motes above {alarm_threshold:.1f} C",
        ),
        (
            QuantileQuery(phi=0.9, band=2),
            energy.message_cost(1) * 35,
            "90th-percentile temperature neighbourhood",
        ),
    ]
    # note: central quantiles (e.g. the median) of a spatially smooth
    # field are diffuse — any mote may hold them — so planning buys
    # little over plain coverage there; upper quantiles concentrate
    # near the warm spots and plan well, which is what we show.

    for spec, budget, label in queries:
        plan = SubsetQueryPlanner(spec).plan(
            topology, energy, train.values, budget
        )
        recalls, energies = [], []
        for readings in live:
            result = run_subset_query(
                simulator, plan, spec, readings, samples=train.values
            )
            recalls.append(result.recall)
            energies.append(result.report.energy_mj)
        print(
            f"\n{label}:"
            f"\n  recall {np.mean(recalls):.0%} at"
            f" {np.mean(energies):.0f} mJ/epoch"
            f" (exhaustive collection would cost {full_cost:.0f} mJ)"
        )

    print(
        "\nsame sample matrix, same LPs — only the definition of"
        " 'contributes to the answer' changed."
    )


if __name__ == "__main__":
    main()
