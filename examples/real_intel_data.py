#!/usr/bin/env python3
"""Running Figure 9 against the *real* Intel Lab trace.

The genuine dataset (not bundled — grab ``data.txt`` from
http://db.csail.mit.edu/labdata/labdata.html) drops straight into the
library through :func:`repro.datagen.intel_parser.load_intel_trace`.
Without the file, this script demonstrates the identical pipeline on a
small synthetic file written in the exact raw format, so the parsing
path is exercised either way.

Run:  python examples/real_intel_data.py [path/to/data.txt]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import EnergyModel, LPNoLFPlanner, PlanningContext, Simulator
from repro.datagen.intel_parser import load_intel_trace
from repro.network.builder import nearest_neighbor_tree
from repro.query import accuracy
from repro.sampling import SampleMatrix

K = 5


def demo_file() -> Path:
    """A small file in the genuine raw format (stand-in for data.txt)."""
    rng = np.random.default_rng(4)
    lines = []
    base = 18.0 + rng.uniform(0, 6, size=12)
    for epoch in range(80):
        for mote in range(1, 13):
            if rng.random() < 0.05:
                continue  # the real file has holes too
            temp = base[mote - 1] + 2.0 * np.sin(epoch / 12) + rng.normal(0, 0.4)
            lines.append(
                f"2004-02-28 00:{epoch % 60:02d}:00.0 {epoch} {mote}"
                f" {temp:.4f} 37.0 45.0 2.7"
            )
    handle = tempfile.NamedTemporaryFile(
        "w", suffix=".txt", delete=False
    )
    handle.write("\n".join(lines) + "\n")
    handle.close()
    return Path(handle.name)


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        print(f"loading real trace: {path}")
    else:
        path = demo_file()
        print(
            "no data.txt given — demonstrating on a synthetic file in"
            " the genuine raw format"
        )

    trace, mote_ids = load_intel_trace(path, max_epochs=80)
    print(
        f"parsed {trace.num_epochs} epochs x {trace.num_nodes} motes"
        f" (raw ids {mote_ids[:6]}...)"
    )

    # the raw dataset ships mote coordinates separately; lacking them we
    # synthesize a plausible layout and let Prim's tree connect it
    rng = np.random.default_rng(0)
    positions = [tuple(p) for p in rng.uniform(0, 40, size=(trace.num_nodes, 2))]
    topology = nearest_neighbor_tree(positions)

    train, live = trace.split(min(50, trace.num_epochs - 10))
    energy = EnergyModel.mica2()
    context = PlanningContext(
        topology, energy, SampleMatrix(train.values, K), K,
        budget=energy.message_cost(1) * (topology.height + 2) * 2,
    )
    plan = LPNoLFPlanner().plan(context)
    simulator = Simulator(topology, energy)

    accuracies, energies = [], []
    for readings in live:
        report = simulator.run_collection(plan, readings)
        accuracies.append(accuracy(report.top_k_nodes(K), readings, K))
        energies.append(report.energy_mj)
    print(
        f"LP−LF on this trace: accuracy {np.mean(accuracies):.0%},"
        f" {np.mean(energies):.1f} mJ/query"
    )


if __name__ == "__main__":
    main()
