#!/usr/bin/env python3
"""Failure-aware planning (paper §4.4).

Transient link failures are frequent in real deployments; the reliable
protocol retries around them at extra cost.  The paper's recipe: track
per-edge failure statistics and inflate each edge's cost by
``failure_probability x re-route penalty`` during optimization, so the
planner organically avoids flaky regions when equally good data is
reachable over healthy links.

Run:  python examples/flaky_links.py
"""

import numpy as np

from repro import (
    EnergyModel,
    LinkFailureModel,
    LPNoLFPlanner,
    PlanningContext,
    SampleMatrix,
    Simulator,
)
from repro.datagen import GaussianField
from repro.network.builder import zone_members, zoned_topology
from repro.query import accuracy

K = 6
TRIALS = 25


def main() -> None:
    rng = np.random.default_rng(5)
    energy = EnergyModel.mica2()

    # two promising sensor clusters; the slightly hotter one (zone B)
    # sits behind flaky links, so a blind planner walks into it
    topology = zoned_topology(2, zone_size=2 * K, relay_hops=4)
    zones = zone_members(2, zone_size=2 * K, relay_hops=4)
    means = np.full(topology.n, 30.0)
    stds = np.full(topology.n, 0.5)
    means[zones[0]] = 50.0
    means[zones[1]] = 50.6
    stds[zones[0]] = 2.0
    stds[zones[1]] = 2.0
    field = GaussianField(means, stds)

    flaky = set(zones[1]) | {
        e for e in topology.edges if topology.is_ancestor(e, zones[1][0])
    }
    failures = LinkFailureModel(
        failure_probability={e: 0.5 for e in flaky},
        reroute_extra_mj={e: 4.0 for e in flaky},
    )
    print(
        f"network: {topology.n} nodes; zone B's {len(flaky)} links fail"
        " 50% of the time (re-route penalty 4 mJ)"
    )

    samples = SampleMatrix(field.trace(20, rng).values, K)
    # enough to acquire one full zone (relays + members), not both
    budget = energy.message_cost(1) * (4 + 2 * K) * 1.4

    for label, failure_model in (
        ("failure-blind", None),
        ("failure-aware", failures),
    ):
        context = PlanningContext(
            topology, energy, samples, K, budget, failures=failure_model
        )
        plan = LPNoLFPlanner().plan(context)
        simulator = Simulator(
            topology, energy, failures=failures, rng=np.random.default_rng(9)
        )
        energies, accs, retries = [], [], 0
        for __ in range(TRIALS):
            readings = field.sample(rng)
            report = simulator.run_collection(plan, readings)
            energies.append(report.energy_mj)
            accs.append(accuracy(report.top_k_nodes(K), readings, K))
            retries += report.num_retries
        zone_b_bandwidth = sum(plan.bandwidths[e] for e in flaky)
        print(
            f"\n{label}:"
            f"\n  bandwidth routed through the flaky zone: {zone_b_bandwidth}"
            f"\n  mean energy {np.mean(energies):.0f} mJ,"
            f" accuracy {np.mean(accs):.0%},"
            f" {retries} retries over {TRIALS} queries"
        )


if __name__ == "__main__":
    main()
