#!/usr/bin/env python3
"""Exact answers with proofs: PROSPECTOR-Proof and PROSPECTOR-Exact.

Approximate plans are cheap but can silently miss top values when
conditions drift from the samples.  Proof-carrying plans (paper §4.3)
certify, *independently of the model*, that a prefix of the returned
values really are the network's top values; PROSPECTOR-Exact completes
any uncertified remainder with a targeted mop-up phase, always
returning the exact top-k.

This example runs both on a day when the sensors misbehave — readings
drawn from a distribution quite different from the training samples —
and shows that exactness survives while costs stay below NAIVE-k.

Run:  python examples/exact_with_proofs.py
"""

import numpy as np

from repro import (
    EnergyModel,
    ExactTopK,
    PlanningContext,
    ProofPlanner,
    SampleMatrix,
    Simulator,
    random_topology,
)
from repro.datagen import random_gaussian_field
from repro.plans.plan import top_k_set

K = 10


def main() -> None:
    rng = np.random.default_rng(21)
    energy = EnergyModel.mica2()
    topology = random_topology(80, rng=rng)
    print(f"network: {topology.n} nodes, height {topology.height}")

    field = random_gaussian_field(topology.n, rng)
    samples = SampleMatrix(field.trace(12, rng).values, K)

    planner = ProofPlanner(fill_budget=True)
    probe = PlanningContext(topology, energy, samples, K, budget=float("inf"))
    minimum = planner.minimum_cost(probe)
    context = PlanningContext(
        topology, energy, samples, K, budget=minimum * 1.15
    )
    plan = planner.plan(context)
    print(
        f"proof plan: minimum legal cost {minimum:.0f} mJ,"
        f" allocated {context.budget:.0f} mJ"
    )

    simulator = Simulator(topology, energy)
    exact = ExactTopK(planner)

    scenarios = {
        "normal day (samples accurate)": field.sample(rng),
        "anomalous day (samples misleading)": field.sample(rng)[::-1].copy(),
    }
    for label, readings in scenarios.items():
        outcome = exact.run_with_plan(plan, K, readings)
        truth = top_k_set(readings, K)
        assert outcome.answer_nodes() == truth, "exactness violated!"
        phase1 = sum(m.cost(energy) for m in outcome.phase1_messages)
        phase2 = sum(m.cost(energy) for m in outcome.phase2_messages)
        print(
            f"\n{label}:\n"
            f"  phase 1 proved {outcome.proven_in_phase1}/{K} values"
            f" at {phase1:.0f} mJ"
        )
        if outcome.used_mop_up:
            print(f"  mop-up fetched the rest at {phase2:.0f} mJ")
        else:
            print("  mop-up not needed")
        naive = simulator.run_naive_k(readings, K)
        print(
            f"  total {phase1 + phase2:.0f} mJ vs NAIVE-k"
            f" {naive.energy_mj:.0f} mJ — exact either way"
        )


if __name__ == "__main__":
    main()
