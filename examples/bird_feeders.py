#!/usr/bin/env python3
"""The paper's motivating scenario: instrumented bird feeders.

Ornithologists place sensor-equipped feeders in a forest and want to
know, before heading out, which feeders have attracted the most birds.
Territorial behaviour makes feeder popularity *negatively correlated*
within each contention zone: a zone reliably hosts a few busy feeders,
but which feeders are busy changes day to day (paper §1 and Figure 6).

This example shows why local filtering matters in exactly this setting:
PROSPECTOR LP+LF visits whole zones but forwards only each zone's
winners, while LP−LF must commit in advance to specific feeders.

Run:  python examples/bird_feeders.py
"""

import numpy as np

from repro import EnergyModel, LPLFPlanner, LPNoLFPlanner, PlanningContext, Simulator
from repro.datagen import ZoneWorkload
from repro.query import accuracy

K = 8            # the ornithologists want the 8 busiest feeders
ZONES = 4        # contention zones around the forest
DAYS_OF_HISTORY = 25
OBSERVATION_DAYS = 15


def main() -> None:
    rng = np.random.default_rng(2006)
    energy = EnergyModel.mica2()

    forest = ZoneWorkload(num_zones=ZONES, k=K)
    topology = forest.topology
    print(
        f"forest: {topology.n} feeders, {ZONES} territorial zones of"
        f" {2 * K} feeders each, query station in the center"
    )

    history = forest.trace(DAYS_OF_HISTORY, rng)
    samples = history.sample_matrix(K)

    # budget: enough to reach and inspect roughly two zones
    budget = energy.message_cost(1) * (forest.relay_hops + 2 * K) * 2
    print(f"energy budget per query: {budget:.0f} mJ\n")

    simulator = Simulator(topology, energy)
    for planner in (LPNoLFPlanner(), LPLFPlanner()):
        context = PlanningContext(topology, energy, samples, K, budget)
        plan = planner.plan(context)

        accuracies = []
        energies = []
        for __ in range(OBSERVATION_DAYS):
            counts_today = forest.sample(rng)
            report = simulator.run_collection(plan, counts_today)
            accuracies.append(
                accuracy(report.top_k_nodes(K), counts_today, K)
            )
            energies.append(report.energy_mj)

        zone_edges = [m for zone in forest.members() for m in zone]
        visited_feeders = sum(
            1 for m in zone_edges if m in plan.visited_nodes
        )
        print(
            f"{planner.name:9s}: found {np.mean(accuracies):.0%} of the"
            f" busiest feeders/day at {np.mean(energies):.0f} mJ"
            f" (visits {visited_feeders}/{len(zone_edges)} zone feeders)"
        )

    print(
        "\nlocal filtering lets LP+LF watch every feeder in a zone and"
        " forward only the busy ones, instead of betting on specific"
        " feeders in advance."
    )

    cluster_variant(forest, history, rng)


def cluster_variant(forest, history, rng) -> None:
    """The intro's refinement: "group nearby feeders into clusters ...
    and obtain the top clusters ordered by average bird count".

    Some parts of the forest are simply richer in food, so zone quality
    differs; the cluster query learns which zones usually win and plans
    to deliver their *complete* member counts (an average needs every
    member).
    """
    from repro.datagen import GaussianField
    from repro.queries import (
        ClusterTopKQuery,
        plan_whole_clusters,
        run_subset_query,
    )

    energy = EnergyModel.mica2()
    topology = forest.topology
    members = forest.members()

    # richer zones attract more birds on average
    means = forest.fieldmodel.means.copy()
    stds = forest.fieldmodel.stds.copy()
    for rank, zone in enumerate(members):
        means[zone] += (len(members) - rank) * 2.0
        stds[zone] = 2.0
    field = GaussianField(means, stds)
    cluster_history = field.trace(DAYS_OF_HISTORY, rng)

    spec = ClusterTopKQuery(
        {f"zone-{i}": zone for i, zone in enumerate(members)}, k=2
    )
    budget = energy.message_cost(1) * (forest.relay_hops + 2 * K) * 6.5
    # a cluster average needs every member, so plan whole clusters
    plan, admitted = plan_whole_clusters(
        spec, topology, energy, cluster_history.values, budget
    )
    print(f"\ncluster plan admits zones: {admitted}")
    simulator = Simulator(topology, energy)

    hits = 0
    days = 10
    for __ in range(days):
        counts_today = field.sample(rng)
        result = run_subset_query(
            simulator, plan, spec, counts_today,
            samples=cluster_history.values,
        )
        answered = spec.answered_clusters(
            {n for __, n in result.report.returned}
        )
        truth = set(spec.top_clusters(counts_today))
        hits += len(set(answered) & truth)

    print(
        f"\ncluster query (top-2 zones by average count): identified"
        f" {hits}/{days * 2} daily winning zones with fully delivered"
        f" averages"
    )


if __name__ == "__main__":
    main()
