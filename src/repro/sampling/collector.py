"""Deciding when to collect a fresh full-network sample.

Paper §3: "At randomly chosen timesteps, we spend more energy to
collect all values in the network and use them as a sample" — the
exploration/exploitation idea.  Paper §4.4 "Re-sampling": the rate
adapts to how well the current model predicts the top-k, measured by
periodically running a proof-carrying plan.

:class:`AdaptiveSampler` implements both: a base epsilon-greedy
exploration rate, multiplied up whenever observed accuracy drops below
a target and decayed back when accuracy recovers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError


@dataclass(frozen=True)
class SamplingDecision:
    """What to do this epoch: run the plan, or pay for a full sample."""

    explore: bool
    rate: float

    @property
    def exploit(self) -> bool:
        return not self.explore


class AdaptiveSampler:
    """Epsilon-greedy full-sample scheduling with accuracy feedback.

    Parameters
    ----------
    base_rate:
        Baseline probability of taking a full sample in any epoch.
    target_accuracy:
        When feedback (from a proof run or ground truth) falls below
        this, the exploration rate is boosted.
    boost / decay:
        Multiplicative adjustment factors applied on bad / good
        feedback.  The rate stays within ``[base_rate, max_rate]``.
    """

    def __init__(
        self,
        base_rate: float = 0.05,
        target_accuracy: float = 0.85,
        boost: float = 2.0,
        decay: float = 0.8,
        max_rate: float = 0.5,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 < base_rate <= 1.0:
            raise SamplingError("base_rate must be in (0, 1]")
        if not 0.0 < max_rate <= 1.0 or max_rate < base_rate:
            raise SamplingError("max_rate must be in [base_rate, 1]")
        if boost < 1.0 or not 0.0 < decay <= 1.0:
            raise SamplingError("boost must be >= 1 and decay in (0, 1]")
        self.base_rate = base_rate
        self.target_accuracy = target_accuracy
        self.boost = boost
        self.decay = decay
        self.max_rate = max_rate
        self.rate = base_rate
        self._rng = rng or np.random.default_rng()

    def decide(self) -> SamplingDecision:
        """Draw this epoch's explore/exploit decision."""
        return SamplingDecision(
            explore=bool(self._rng.random() < self.rate), rate=self.rate
        )

    def record_accuracy(self, accuracy: float) -> None:
        """Feed back observed plan accuracy (e.g., from a proof run)."""
        if not 0.0 <= accuracy <= 1.0:
            raise SamplingError("accuracy must be within [0, 1]")
        if accuracy < self.target_accuracy:
            self.rate = min(self.max_rate, self.rate * self.boost)
        else:
            self.rate = max(self.base_rate, self.rate * self.decay)
