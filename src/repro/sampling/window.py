"""A sliding window of recent full-network samples.

The paper maintains "the most recent samples" and expires old ones so
the encoded model tracks drift in the joint distribution (§3).  The
window stores raw rows; :meth:`SampleWindow.matrix` digests the current
contents into a :class:`~repro.sampling.matrix.SampleMatrix` on demand.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.errors import SamplingError
from repro.sampling.matrix import SampleMatrix


class SampleWindow:
    """Keep the ``capacity`` most recent samples.

    Parameters
    ----------
    capacity:
        Maximum number of samples retained; the paper finds 25-50
        samples suffice (§5 "Other Results"), which our sample-size
        experiment reproduces.
    """

    def __init__(self, capacity: int = 25) -> None:
        if capacity < 1:
            raise SamplingError("window capacity must be >= 1")
        self.capacity = capacity
        self._rows: deque[np.ndarray] = deque(maxlen=capacity)
        self._num_nodes: int | None = None
        # digest cache: {k: (version, SampleMatrix)}.  While the window
        # only grows (no eviction since the cached version), a stale
        # digest is promoted with SampleMatrix.with_sample instead of
        # re-digesting all m rows.
        self._version = 0
        self._evict_version = 0
        self._digests: dict[int, tuple[int, SampleMatrix]] = {}

    def add(self, reading: Sequence[float]) -> None:
        """Record one full-network sample (evicting the oldest if full)."""
        row = np.asarray(reading, dtype=float)
        if row.ndim != 1:
            raise SamplingError("a sample must be a flat vector of node values")
        if self._num_nodes is None:
            self._num_nodes = row.shape[0]
        elif row.shape[0] != self._num_nodes:
            raise SamplingError(
                f"sample has {row.shape[0]} nodes, window holds {self._num_nodes}"
            )
        evicting = len(self._rows) == self.capacity
        self._rows.append(row)
        self._version += 1
        if evicting:
            # a dropped row invalidates append-only digest promotion
            self._evict_version = self._version
            self._digests.clear()

    def extend(self, rows) -> None:
        for row in rows:
            self.add(row)

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def is_empty(self) -> bool:
        return not self._rows

    @property
    def num_nodes(self) -> int | None:
        return self._num_nodes

    def rows(self) -> list[np.ndarray]:
        """The retained sample rows, oldest first (copies)."""
        return [row.copy() for row in self._rows]

    def matrix(self, k: int) -> SampleMatrix:
        """Digest the current window into a sample matrix for planning.

        Digests are cached per ``k``: an unchanged window returns the
        same :class:`~repro.sampling.matrix.SampleMatrix` object (it is
        immutable), and appended-only growth digests just the new rows.
        """
        if not self._rows:
            raise SamplingError("sample window is empty; collect samples first")
        key = int(k)
        cached = self._digests.get(key)
        if cached is not None:
            version, digest = cached
            if version == self._version:
                return digest
            if version >= self._evict_version:
                for row in list(self._rows)[digest.num_samples :]:
                    digest = digest.with_sample(row)
                self._digests[key] = (self._version, digest)
                return digest
        digest = SampleMatrix(np.vstack(list(self._rows)), k)
        if len(self._digests) > 4:  # a window rarely serves many k values
            self._digests.clear()
        self._digests[key] = (self._version, digest)
        return digest

    def clear(self) -> None:
        self._rows.clear()
        self._num_nodes = None
        self._version += 1
        self._evict_version = self._version
        self._digests.clear()
