"""The Boolean sample matrix ``B`` of paper §3.

``B[j, i] = 1`` iff node ``i`` holds one of the top ``k`` values in the
``j``-th sample.  Ties are broken by node id (higher id wins), matching
the total ordering used everywhere else in the library.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import SamplingError


def _top_k_mask(values: np.ndarray, k: int) -> np.ndarray:
    """Per-row boolean top-k mask under the ``(value, node_id)`` order.

    A tie at the k-th largest value is broken toward higher node ids,
    matching the total order used everywhere else in the library.
    """
    m, n = values.shape
    if k >= n:
        return np.ones((m, n), dtype=bool)
    kth = np.partition(values, n - k, axis=1)[:, n - k : n - k + 1]
    above = values > kth
    ties = values == kth
    needed = k - above.sum(axis=1, keepdims=True)
    # among the tied columns, keep the `needed` right-most (highest id):
    # count ties from the right and admit while within the quota
    from_right = np.cumsum(ties[:, ::-1], axis=1)[:, ::-1]
    return above | (ties & (from_right <= needed))


class SampleMatrix:
    """Samples of past network readings, digested for plan optimization.

    Parameters
    ----------
    samples:
        Array of shape ``(m, n)``: ``m`` full-network samples over
        ``n`` nodes.
    k:
        The query's ``k``; defines which entries of ``B`` are ones.

    Notes
    -----
    The raw values are retained because PROSPECTOR-Proof needs them
    (its ``smaller(i, j)`` sets compare actual magnitudes), but the
    approximate planners only consume ``ones(j)`` and the column sums —
    the optimization the paper notes at the end of §4.1.
    """

    def __init__(self, samples, k: int) -> None:
        values = np.asarray(samples, dtype=float)
        if values.ndim != 2:
            raise SamplingError(
                f"samples must be a 2-D (m, n) array, got shape {values.shape}"
            )
        if values.shape[0] == 0:
            raise SamplingError("at least one sample is required")
        if k < 1:
            raise SamplingError("k must be >= 1")
        self.values = values
        self.k = int(min(k, values.shape[1]))
        self.requested_k = int(k)
        self.matrix = _top_k_mask(values, self.k)
        self._ones = [
            frozenset(map(int, np.flatnonzero(row))) for row in self.matrix
        ]

    def _top_k_nodes(self, row: np.ndarray) -> frozenset[int]:
        mask = _top_k_mask(np.asarray(row, dtype=float).reshape(1, -1), self.k)
        return frozenset(map(int, np.flatnonzero(mask[0])))

    # -- shape -------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return int(self.values.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.values.shape[1])

    # -- LP inputs ---------------------------------------------------------
    def ones(self, j: int) -> frozenset[int]:
        """``ones(j)``: nodes holding the top-k values of sample ``j``."""
        return self._ones[j]

    def ones_list(self) -> list[frozenset[int]]:
        return list(self._ones)

    def column_counts(self) -> np.ndarray:
        """``cnt_i = sum_j B[j, i]``, the Greedy/LP−LF scores."""
        return self.matrix.sum(axis=0).astype(int)

    def value(self, j: int, node: int) -> float:
        return float(self.values[j, node])

    def smaller_than(self, node: int, j: int) -> frozenset[int]:
        """Nodes whose sample-``j`` reading ranks below ``node``'s.

        Ranking uses the ``(value, node_id)`` total order, so the result
        is well-defined under ties.  Intersecting with a subtree's
        descendant set yields the paper's ``smaller`` sets for the
        PROSPECTOR-Proof constraints.
        """
        row = self.values[j]
        pivot = row[node]
        mask = (row < pivot) | (
            (row == pivot) & (np.arange(self.num_nodes) < node)
        )
        return frozenset(map(int, np.flatnonzero(mask)))

    # -- maintenance ---------------------------------------------------------
    def with_sample(self, reading: Sequence[float]) -> "SampleMatrix":
        """New matrix with one more sample appended (immutably).

        Incremental: existing rows' digests (``ones(j)`` sets and the
        Boolean matrix rows) are reused verbatim — only the new row is
        digested, which keeps window slides O(n) instead of O(m·n).
        """
        row = np.asarray(reading, dtype=float).reshape(1, -1)
        if row.shape[1] != self.num_nodes:
            raise SamplingError(
                f"sample has {row.shape[1]} nodes, expected {self.num_nodes}"
            )
        new = object.__new__(SampleMatrix)
        new.values = np.vstack([self.values, row])
        new.k = self.k
        new.requested_k = self.requested_k
        new_mask = _top_k_mask(row, self.k)
        new.matrix = np.vstack([self.matrix, new_mask])
        new._ones = [
            *self._ones,
            frozenset(map(int, np.flatnonzero(new_mask[0]))),
        ]
        return new

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[float]], k: int) -> "SampleMatrix":
        return cls(np.asarray(list(rows), dtype=float), k)

    def __repr__(self) -> str:
        return f"SampleMatrix(m={self.num_samples}, n={self.num_nodes}, k={self.k})"
