"""The Boolean sample matrix ``B`` of paper §3.

``B[j, i] = 1`` iff node ``i`` holds one of the top ``k`` values in the
``j``-th sample.  Ties are broken by node id (higher id wins), matching
the total ordering used everywhere else in the library.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import SamplingError


class SampleMatrix:
    """Samples of past network readings, digested for plan optimization.

    Parameters
    ----------
    samples:
        Array of shape ``(m, n)``: ``m`` full-network samples over
        ``n`` nodes.
    k:
        The query's ``k``; defines which entries of ``B`` are ones.

    Notes
    -----
    The raw values are retained because PROSPECTOR-Proof needs them
    (its ``smaller(i, j)`` sets compare actual magnitudes), but the
    approximate planners only consume ``ones(j)`` and the column sums —
    the optimization the paper notes at the end of §4.1.
    """

    def __init__(self, samples, k: int) -> None:
        values = np.asarray(samples, dtype=float)
        if values.ndim != 2:
            raise SamplingError(
                f"samples must be a 2-D (m, n) array, got shape {values.shape}"
            )
        if values.shape[0] == 0:
            raise SamplingError("at least one sample is required")
        if k < 1:
            raise SamplingError("k must be >= 1")
        self.values = values
        self.k = int(min(k, values.shape[1]))
        self.requested_k = int(k)
        self._ones = [self._top_k_nodes(row) for row in values]
        self.matrix = np.zeros(values.shape, dtype=bool)
        for j, ones in enumerate(self._ones):
            for node in ones:
                self.matrix[j, node] = True

    def _top_k_nodes(self, row: np.ndarray) -> frozenset[int]:
        tagged = sorted(
            ((float(v), node) for node, v in enumerate(row)), reverse=True
        )
        return frozenset(node for __, node in tagged[: self.k])

    # -- shape -------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return int(self.values.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.values.shape[1])

    # -- LP inputs ---------------------------------------------------------
    def ones(self, j: int) -> frozenset[int]:
        """``ones(j)``: nodes holding the top-k values of sample ``j``."""
        return self._ones[j]

    def ones_list(self) -> list[frozenset[int]]:
        return list(self._ones)

    def column_counts(self) -> np.ndarray:
        """``cnt_i = sum_j B[j, i]``, the Greedy/LP−LF scores."""
        return self.matrix.sum(axis=0).astype(int)

    def value(self, j: int, node: int) -> float:
        return float(self.values[j, node])

    def smaller_than(self, node: int, j: int) -> frozenset[int]:
        """Nodes whose sample-``j`` reading ranks below ``node``'s.

        Ranking uses the ``(value, node_id)`` total order, so the result
        is well-defined under ties.  Intersecting with a subtree's
        descendant set yields the paper's ``smaller`` sets for the
        PROSPECTOR-Proof constraints.
        """
        row = self.values[j]
        pivot = (float(row[node]), node)
        return frozenset(
            other
            for other in range(self.num_nodes)
            if other != node and (float(row[other]), other) < pivot
        )

    # -- maintenance ---------------------------------------------------------
    def with_sample(self, reading: Sequence[float]) -> "SampleMatrix":
        """New matrix with one more sample appended (immutably)."""
        row = np.asarray(reading, dtype=float).reshape(1, -1)
        if row.shape[1] != self.num_nodes:
            raise SamplingError(
                f"sample has {row.shape[1]} nodes, expected {self.num_nodes}"
            )
        return SampleMatrix(np.vstack([self.values, row]), self.requested_k)

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[float]], k: int) -> "SampleMatrix":
        return cls(np.asarray(list(rows), dtype=float), k)

    def __repr__(self) -> str:
        return f"SampleMatrix(m={self.num_samples}, n={self.num_nodes}, k={self.k})"
