"""Sample maintenance: the Boolean top-k matrix and its upkeep (paper §3).

Instead of maintaining explicit probabilistic models, the paper keeps
recent full-network samples, translates each into a Boolean vector of
"was this node in the top k", and optimizes plans against the resulting
matrix.  :class:`~repro.sampling.matrix.SampleMatrix` is that matrix
plus the derived quantities the LPs need (``ones(j)``, column sums,
``smaller(i, j)``); :class:`~repro.sampling.window.SampleWindow` keeps
a sliding window of recent samples; and
:class:`~repro.sampling.collector.AdaptiveSampler` decides *when* to
spend energy on a fresh full sample (exploration/exploitation, §3 and
§4.4 "Re-sampling").
"""

from repro.sampling.collector import AdaptiveSampler, SamplingDecision
from repro.sampling.matrix import SampleMatrix
from repro.sampling.window import SampleWindow

__all__ = [
    "AdaptiveSampler",
    "SampleMatrix",
    "SampleWindow",
    "SamplingDecision",
]
