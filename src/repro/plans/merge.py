"""Serving several queries with one collection phase.

Deployments rarely run a single query: different users want different
``k``s, a selection alarm runs beside the daily top-k, and so on.  One
collection under the edge-wise **maximum** of the plans' bandwidths can
serve them all, sharing the dominant per-message costs that separate
executions would each pay.

The guarantee is about *answer quality*, not the literal delivered set:
for any up-closed query (top-k, selection — anything where outranking
an answer value means being an answer value), the number of answer
values delivered is monotone in bandwidths, so the merged plan covers
at least as much of every constituent query's answer as that
constituent plan would have.  (The delivered set itself is NOT a
superset in general: under local filtering, values opened up by one
query's bandwidth can displace another query's marginal non-answer
values.)  Quantile plans forward by target distance, not value, and
should not be merged with value-ordered plans.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import PlanError
from repro.network.energy import EnergyModel
from repro.plans.plan import QueryPlan


def merge_plans(plans: Sequence[QueryPlan]) -> QueryPlan:
    """The edge-wise maximum of several plans over one topology."""
    if not plans:
        raise PlanError("at least one plan is required")
    topology = plans[0].topology
    for plan in plans[1:]:
        if plan.topology is not topology and not plan.topology.same_structure(
            topology
        ):
            raise PlanError("plans were built for different topologies")
    merged = {
        edge: max(plan.bandwidths[edge] for plan in plans)
        for edge in topology.edges
    }
    return QueryPlan(
        topology,
        merged,
        requires_all_edges=any(p.requires_all_edges for p in plans),
    )


def merge_savings(
    plans: Sequence[QueryPlan], energy: EnergyModel
) -> dict[str, float]:
    """Static-cost comparison: merged collection vs separate runs."""
    merged = merge_plans(plans)
    separate = sum(plan.static_cost(energy) for plan in plans)
    combined = merged.static_cost(energy)
    return {
        "separate_mj": separate,
        "merged_mj": combined,
        "saved_mj": separate - combined,
        "saved_fraction": (
            (separate - combined) / separate if separate > 0 else 0.0
        ),
    }
