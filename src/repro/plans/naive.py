"""The two naive exact top-k algorithms of paper §2.

NAIVE-k: one bottom-up pass; every node forwards the top ``min(k,
|subtree|)`` values of its subtree.  Minimum possible number of
messages, but large messages.

NAIVE-1: fully pipelined; each node requests one value at a time from
its children, keeps a heap of the latest candidate per child plus its
own value, and pops the maximum per parent request.  Minimum number of
values transmitted, but every value (and every request) is its own
message, so the per-message overhead is prohibitive.
"""

from __future__ import annotations

import heapq

from repro.errors import PlanError
from repro.network.topology import Topology, validate_readings
from repro.plans.execution import CollectionResult, execute_plan
from repro.plans.plan import Message, QueryPlan, Reading, tag_readings

_REQUEST_BYTES = 1  # "send me one more value" control message payload


def naive_k_collect(topology: Topology, readings, k: int) -> CollectionResult:
    """Run NAIVE-k; the returned top-k values are exact."""
    plan = QueryPlan.naive_k(topology, k)
    result = execute_plan(plan, readings)
    result.returned = result.returned[:k]
    return result


class _PipelinedNode:
    """Per-node state of the NAIVE-1 protocol."""

    def __init__(self, node: int, reading: Reading, children: list["_PipelinedNode"]):
        self.node = node
        self.children = children
        self.exhausted: set[int] = set()  # child indices with no values left
        self.has_candidate: set[int] = set()  # child indices present in heap
        # heap of (negated reading, source index); own value is source -1
        self.heap: list[tuple[tuple[float, int], int]] = [(_neg(reading), -1)]

    def pop_max(self, messages: list[Message]) -> Reading | None:
        """Return the next-largest value of this subtree, or None.

        Before answering, the node makes sure its heap holds one
        candidate from every non-exhausted child, requesting one value
        (one request message + one response message) where missing.
        """
        for index, child in enumerate(self.children):
            if index in self.exhausted or index in self.has_candidate:
                continue
            messages.append(Message(child.node, 0, extra_bytes=_REQUEST_BYTES))
            value = child.pop_max(messages)
            if value is None:
                messages.append(Message(child.node, 0))  # "no more" reply
                self.exhausted.add(index)
            else:
                messages.append(Message(child.node, 1))
                heapq.heappush(self.heap, (_neg(value), index))
                self.has_candidate.add(index)
        if not self.heap:
            return None
        neg_reading, source = heapq.heappop(self.heap)
        if source >= 0:
            self.has_candidate.discard(source)
        return _unneg(neg_reading)


def _neg(reading: Reading) -> tuple[float, int]:
    return (-reading[0], -reading[1])


def _unneg(neg: tuple[float, int]) -> Reading:
    return (-neg[0], -neg[1])


def naive_one_collect(topology: Topology, readings, k: int) -> CollectionResult:
    """Run NAIVE-1; exact answer, one message per value and per request."""
    if k < 1:
        raise PlanError("k must be >= 1")
    values = validate_readings(topology, readings)
    tagged = tag_readings(values)

    nodes: dict[int, _PipelinedNode] = {}
    for node in topology.post_order():
        children = [nodes[c] for c in topology.children(node)]
        nodes[node] = _PipelinedNode(node, tagged[node], children)

    messages: list[Message] = []
    returned: list[Reading] = []
    root = nodes[topology.root]
    for __ in range(min(k, topology.n)):
        value = root.pop_max(messages)
        if value is None:
            break
        returned.append(value)

    transmitted: dict[int, int] = {}
    for message in messages:
        if message.num_values:
            transmitted[message.edge] = (
                transmitted.get(message.edge, 0) + message.num_values
            )
    return CollectionResult(
        returned=returned, messages=messages, transmitted=transmitted
    )
