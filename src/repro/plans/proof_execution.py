"""Proof-carrying plan execution (paper §4.3).

Each node passes up at most ``b_e`` values, together with the count of
how many of them it *proves* — certifies to be the true top values of
its subtree.  A value ``v`` handled by node ``u`` is proven iff for
every child ``c`` of ``u`` one of:

- (c.1) ``v`` came from ``c`` and ``c`` proved it;
- (c.2) ``c`` proved some value ``w < v``;
- (c.3) ``c`` passed up its entire subtree (checked at runtime as
  "number of values received from c equals |desc(c)|", the operational
  meaning of the paper's ``b_e = |desc(c)|`` condition).

Lemma 1 (tested as a property): the values a node proves are exactly
the largest values in its subtree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.network.topology import Topology, validate_readings
from repro.plans.plan import Message, QueryPlan, Reading, tag_readings

_PROVEN_COUNT_BYTES = 2  # control field carrying the proven count


@dataclass
class NodeState:
    """What one node remembers after the proof phase — the raw material
    of PROSPECTOR-Exact's mop-up phase (§4.3 step descriptions)."""

    retrieved: list[Reading] = field(default_factory=list)
    """Own value plus every value received from children, sorted desc."""

    proven: list[Reading] = field(default_factory=list)
    """The values this node proved (a prefix of what it passed up)."""

    received_from: dict[int, int] = field(default_factory=dict)
    """Number of values received from each child in the proof phase."""


@dataclass
class ProofResult:
    """Outcome of one proof-carrying collection phase."""

    returned: list[Reading]
    """Values available at the root, sorted descending."""

    proven_count: int
    """How many of the leading returned values are proven top values."""

    messages: list[Message] = field(default_factory=list)
    states: dict[int, NodeState] = field(default_factory=dict)

    @property
    def proven(self) -> list[Reading]:
        return self.returned[: self.proven_count]


def execute_proof_plan(plan: QueryPlan, readings) -> ProofResult:
    """Run one collection phase of a proof-carrying plan.

    The plan must use every edge (any unvisited node could hold the
    maximum, so nothing could be proven otherwise).
    """
    topology = plan.topology
    zero = [e for e in topology.edges if plan.bandwidths[e] < 1]
    if zero:
        raise PlanError(
            f"proof-carrying execution needs bandwidth >= 1 everywhere;"
            f" zero on edges {zero[:5]}"
        )
    values = validate_readings(topology, readings)
    tagged = tag_readings(values)

    # per-child reports seen by each parent: child -> (values, proven_count)
    reports: dict[int, tuple[list[Reading], int]] = {}
    messages: list[Message] = []
    states: dict[int, NodeState] = {}

    for node in topology.post_order():
        state = NodeState()
        merged: list[Reading] = [tagged[node]]
        origin: dict[Reading, int] = {}  # reading -> child it came from
        child_reports: dict[int, tuple[list[Reading], int]] = {}
        for child in topology.children(node):
            child_values, child_proven = reports.pop(child)
            child_reports[child] = (child_values, child_proven)
            state.received_from[child] = len(child_values)
            for reading in child_values:
                origin[reading] = child
                merged.append(reading)
        merged.sort(reverse=True)
        state.retrieved = merged

        if node == topology.root:
            outgoing = merged
        else:
            outgoing = merged[: plan.bandwidths[node]]

        proven_count = _proven_prefix(
            topology, node, outgoing, origin, child_reports
        )
        state.proven = outgoing[:proven_count]
        states[node] = state

        if node == topology.root:
            return ProofResult(
                returned=outgoing,
                proven_count=proven_count,
                messages=messages,
                states=states,
            )
        reports[node] = (outgoing, proven_count)
        # leaf nodes prove everything they send, so the proven-count
        # field is omitted for them (paper §4.3 step 4)
        extra = 0 if topology.is_leaf(node) else _PROVEN_COUNT_BYTES
        messages.append(Message(node, len(outgoing), extra_bytes=extra))
    raise PlanError("post-order walk did not end at the root")  # pragma: no cover


def _proven_prefix(
    topology: Topology,
    node: int,
    outgoing: list[Reading],
    origin: dict[Reading, int],
    child_reports: dict[int, tuple[list[Reading], int]],
) -> int:
    """Longest prefix of ``outgoing`` (descending) that ``node`` proves."""
    proven_count = 0
    for reading in outgoing:
        if _is_proven(topology, node, reading, origin, child_reports):
            proven_count += 1
        else:
            break
    return proven_count


def _is_proven(
    topology: Topology,
    node: int,
    reading: Reading,
    origin: dict[Reading, int],
    child_reports: dict[int, tuple[list[Reading], int]],
) -> bool:
    source = origin.get(reading)  # None when it is the node's own value
    for child in topology.children(node):
        child_values, child_proven = child_reports[child]
        if child == source:
            # (c.1) the value must be proven by the child it came from
            index = child_values.index(reading)
            if index >= child_proven:
                return False
            continue
        if len(child_values) >= topology.subtree_size(child):
            # (c.3) the child passed up its entire subtree
            continue
        # (c.2) the child proved some smaller value; proven values are
        # the leading entries of the (descending) child list, so it
        # suffices to check the smallest proven one
        if child_proven > 0 and child_values[child_proven - 1] < reading:
            continue
        return False
    return True
