"""Adaptive threshold plans — the §7 future-work direction.

"The second [line of research] is to build more flexible plans that
leverage actual network conditions once they are observed during query
execution."

A :class:`ThresholdPlan` gives every node a *forwarding rule* instead
of a fixed bandwidth: forward the values observed to exceed a threshold
``theta`` (up to a cap), and stay silent otherwise.  Cost therefore
tracks the data — quiet regions send nothing — and the plan keeps
working when the top values *move*, because any node whose reading
crosses the threshold speaks up, whether or not history predicted it.

The trade against the LP plans:

- fixed-bandwidth LP plans have a deterministic worst-case cost and
  exploit locations; they break when locations shift;
- threshold plans have a *data-dependent* cost (bounded in expectation
  from the samples) and exploit magnitudes; they survive location
  shifts but pay for every unexpected loud region.

``bench_extension_adaptive.py`` measures exactly this trade.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PlanError, SamplingError
from repro.network.energy import EnergyModel
from repro.network.topology import Topology, validate_readings
from repro.plans.plan import Message, Reading, tag_readings


@dataclass(frozen=True)
class ThresholdPlan:
    """Forward readings above ``threshold``, at most ``cap`` per edge."""

    topology: Topology
    threshold: float
    cap: int

    def __post_init__(self) -> None:
        if self.cap < 1:
            raise PlanError("cap must be >= 1")


@dataclass
class ThresholdResult:
    """Outcome of one threshold-plan collection."""

    returned: list[Reading]
    messages: list[Message] = field(default_factory=list)
    silent_nodes: int = 0
    """Nodes that observed nothing above the threshold and sent nothing."""

    @property
    def returned_nodes(self) -> set[int]:
        return {node for __, node in self.returned}

    def top_k_nodes(self, k: int) -> set[int]:
        return {node for __, node in self.returned[:k]}


def execute_threshold_plan(plan: ThresholdPlan, readings) -> ThresholdResult:
    """Bottom-up collection under the forwarding rule.

    A node merges its own reading with whatever children reported,
    keeps the values strictly above the threshold, and forwards the
    top ``cap`` of them; with nothing above the threshold it sends no
    message at all (that is where the adaptivity saves energy).
    """
    topology = plan.topology
    values = validate_readings(topology, readings)
    tagged = tag_readings(values)

    buffers: dict[int, list[Reading]] = {}
    messages: list[Message] = []
    silent = 0

    for node in topology.post_order():
        local: list[Reading] = [tagged[node]]
        for child in topology.children(node):
            local.extend(buffers.pop(child, []))
        local.sort(reverse=True)
        if node == topology.root:
            return ThresholdResult(
                returned=local, messages=messages, silent_nodes=silent
            )
        outgoing = [r for r in local if r[0] > plan.threshold][: plan.cap]
        if outgoing:
            buffers[node] = outgoing
            messages.append(Message(node, len(outgoing)))
        else:
            silent += 1
    raise PlanError("post-order walk did not end at the root")  # pragma: no cover


def expected_cost(
    plan: ThresholdPlan, sample_rows, energy: EnergyModel
) -> float:
    """Mean collection cost of the plan over sample rows.

    Exact per sample: replays the forwarding rule and prices the
    resulting messages (plus acquisition for every node — thresholds
    require everyone to measure).
    """
    rows = np.asarray(list(sample_rows), dtype=float)
    if rows.size == 0:
        raise SamplingError("need at least one sample row")
    total = 0.0
    for row in rows:
        result = execute_threshold_plan(plan, row)
        total += sum(m.cost(energy) for m in result.messages)
    total /= rows.shape[0]
    return total + energy.acquisition_mj * plan.topology.n


class ThresholdPlanner:
    """Pick the lowest threshold whose expected cost fits the budget.

    Lower thresholds deliver more (higher accuracy) and cost more; the
    planner binary-searches the threshold over the samples' value range
    so the *expected* cost meets the budget.  The per-edge cap defaults
    to ``k`` (values beyond the k-th largest cannot matter for top-k).
    """

    name = "threshold"

    def __init__(self, iterations: int = 30) -> None:
        self.iterations = iterations

    def plan(
        self,
        topology: Topology,
        energy: EnergyModel,
        sample_rows,
        k: int,
        budget: float,
    ) -> ThresholdPlan:
        if k < 1:
            raise PlanError("k must be >= 1")
        rows = np.asarray(list(sample_rows), dtype=float)
        if rows.size == 0:
            raise SamplingError("need at least one sample row")
        low = float(rows.min()) - 1.0   # forwards everything observed
        high = float(rows.max())        # forwards nothing

        def cost_at(threshold: float) -> float:
            return expected_cost(
                ThresholdPlan(topology, threshold, cap=k), rows, energy
            )

        if cost_at(low) <= budget:
            return ThresholdPlan(topology, low, cap=k)
        if cost_at(high) > budget:
            raise PlanError(
                f"budget {budget:.1f} mJ cannot cover even an"
                " everything-suppressed threshold plan"
            )
        for __ in range(self.iterations):
            mid = (low + high) / 2.0
            if cost_at(mid) <= budget:
                high = mid
            else:
                low = mid
        return ThresholdPlan(topology, high, cap=k)
