"""Approximate top-k query plans (paper §2).

A plan assigns a bandwidth ``b_e >= 0`` to every tree edge ``e``; the
bandwidth is the maximum number of values the child endpoint may send
its parent during one collection phase.  Edges with bandwidth 0 are not
used at all (no message, so no per-message cost).

Readings travel through the library as ``(value, node_id)`` tuples so
that ordering is total even under ties; node ids break ties in favor of
higher ids, deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import PlanError
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.network.topology import Topology

Reading = tuple[float, int]  # (value, node_id); tuple order totalizes ties


def tag_readings(values: Iterable[float]) -> list[Reading]:
    """Attach node ids to a readings vector (index = node id)."""
    return [(float(v), node) for node, v in enumerate(values)]


def top_k_set(values: Iterable[float], k: int) -> set[int]:
    """Node ids of the k largest readings (ties broken by node id)."""
    tagged = sorted(tag_readings(values), reverse=True)
    return {node for __, node in tagged[:k]}


@dataclass(frozen=True)
class Message:
    """One radio transmission, for energy accounting.

    ``edge`` is the child endpoint for unicasts along tree edges, or the
    sending node for broadcasts (``kind='broadcast'``).
    """

    edge: int
    num_values: int
    extra_bytes: int = 0
    kind: str = "unicast"

    def cost(
        self,
        energy: EnergyModel,
        failures: LinkFailureModel | None = None,
    ) -> float:
        if self.kind == "broadcast":
            return energy.broadcast_cost(
                self.num_values * energy.value_bytes + self.extra_bytes
            )
        base = energy.message_cost(self.num_values, self.extra_bytes)
        if failures is not None:
            base += failures.expected_penalty(self.edge)
        return base


class QueryPlan:
    """A bandwidth assignment over a topology's edges.

    Parameters
    ----------
    topology:
        The network the plan is for.
    bandwidths:
        ``{edge_child_id: bandwidth}``.  Missing edges default to 0.
    requires_all_edges:
        Proof-carrying plans must use every edge (paper §4.3); when set,
        validation enforces ``b_e >= 1`` everywhere.
    """

    def __init__(
        self,
        topology: Topology,
        bandwidths: Mapping[int, int],
        requires_all_edges: bool = False,
    ) -> None:
        self.topology = topology
        self.requires_all_edges = requires_all_edges
        self.bandwidths: dict[int, int] = {}
        for edge in topology.edges:
            b = int(bandwidths.get(edge, 0))
            if b < 0:
                raise PlanError(f"edge {edge} has negative bandwidth {b}")
            self.bandwidths[edge] = b
        for edge in bandwidths:
            if edge == topology.root or edge not in self.bandwidths:
                raise PlanError(f"bandwidth given for unknown edge {edge}")
        if requires_all_edges:
            missing = [e for e, b in self.bandwidths.items() if b < 1]
            if missing:
                raise PlanError(
                    f"proof-carrying plan must use all edges; zero on {missing[:5]}"
                )

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_chosen_nodes(
        cls, topology: Topology, chosen: Iterable[int]
    ) -> "QueryPlan":
        """Plan that forwards exactly the chosen nodes' values to the
        root with no local filtering (PROSPECTOR Greedy / LP−LF shape):
        each edge's bandwidth equals the number of chosen strict-path
        descendants, so every chosen value travels the whole way up.
        """
        chosen_set = set(chosen)
        unknown = chosen_set - set(topology.nodes)
        if unknown:
            raise PlanError(f"chosen nodes not in topology: {sorted(unknown)[:5]}")
        bandwidths = {edge: 0 for edge in topology.edges}
        for node in chosen_set:
            for edge in topology.path_edges(node):
                bandwidths[edge] += 1
        return cls(topology, bandwidths)

    @classmethod
    def naive_k(cls, topology: Topology, k: int) -> "QueryPlan":
        """The NAIVE-k plan: every edge carries ``min(k, |desc|)`` values."""
        if k < 1:
            raise PlanError("k must be >= 1")
        bandwidths = {
            edge: min(k, topology.subtree_size(edge)) for edge in topology.edges
        }
        return cls(topology, bandwidths)

    @classmethod
    def full(cls, topology: Topology) -> "QueryPlan":
        """Every edge carries its entire subtree (exhaustive collection)."""
        bandwidths = {
            edge: topology.subtree_size(edge) for edge in topology.edges
        }
        return cls(topology, bandwidths)

    # -- accessors ---------------------------------------------------------
    def bandwidth(self, edge: int) -> int:
        return self.bandwidths[edge]

    @property
    def used_edges(self) -> list[int]:
        return [edge for edge in self.topology.edges if self.bandwidths[edge] > 0]

    @property
    def visited_nodes(self) -> set[int]:
        """Nodes whose value can possibly reach the root: the root plus
        every node whose entire root path has positive bandwidth."""
        visited = {self.topology.root}
        for node in self.topology.pre_order():
            if node == self.topology.root:
                continue
            if self.bandwidths[node] > 0 and self.topology.parent(node) in visited:
                visited.add(node)
        return visited

    def effective_bandwidth(self, edge: int) -> int:
        """Bandwidth clipped to what the subtree can actually supply."""
        return min(self.bandwidths[edge], self.topology.subtree_size(edge))

    # -- cost --------------------------------------------------------------
    def static_cost(
        self,
        energy: EnergyModel,
        failures: LinkFailureModel | None = None,
    ) -> float:
        """The plan's budgeted collection-phase cost: one message per
        used edge, carrying that edge's (effective) bandwidth of values.
        This is what the LP's cost constraint bounds; the simulator's
        measured cost can only be lower (subtrees may supply fewer
        values than budgeted).
        """
        active = self.visited_nodes
        total = 0.0
        for edge in self.used_edges:
            if edge not in active:
                continue  # cut off by a zero-bandwidth ancestor: never triggered
            message = Message(edge, self.effective_bandwidth(edge))
            total += message.cost(energy, failures)
        return total

    def with_bandwidth(self, edge: int, bandwidth: int) -> "QueryPlan":
        """Copy of this plan with one edge's bandwidth replaced."""
        updated = dict(self.bandwidths)
        updated[edge] = bandwidth
        return QueryPlan(
            self.topology, updated, requires_all_edges=self.requires_all_edges
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryPlan):
            return NotImplemented
        return (
            self.topology is other.topology
            and self.bandwidths == other.bandwidths
            and self.requires_all_edges == other.requires_all_edges
        )

    def __hash__(self) -> int:
        return hash((id(self.topology), tuple(sorted(self.bandwidths.items()))))

    def __repr__(self) -> str:
        used = len(self.used_edges)
        total = sum(self.bandwidths.values())
        return f"QueryPlan(edges_used={used}, total_bandwidth={total})"
