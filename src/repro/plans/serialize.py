"""Plan (de)serialization.

A deployment computes plans at the base station and installs them into
the network; operators also archive them ("which plan ran last week?").
This module round-trips plans through plain JSON-compatible dicts, with
a topology fingerprint so a plan cannot silently be rehydrated against
the wrong tree.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import PlanError
from repro.network.topology import Topology
from repro.plans.plan import QueryPlan

_FORMAT_VERSION = 1


def topology_fingerprint(topology: Topology) -> str:
    """A stable hash of the tree structure (parents vector)."""
    payload = ",".join(
        str(topology.parent(node)) for node in topology.nodes
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def plan_to_dict(plan: QueryPlan) -> dict:
    """Serialize a plan to a JSON-compatible dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "topology_fingerprint": topology_fingerprint(plan.topology),
        "num_nodes": plan.topology.n,
        "requires_all_edges": plan.requires_all_edges,
        "bandwidths": {
            str(edge): bandwidth
            for edge, bandwidth in sorted(plan.bandwidths.items())
            if bandwidth > 0
        },
    }


def plan_from_dict(data: dict, topology: Topology) -> QueryPlan:
    """Rehydrate a plan against the topology it was computed for."""
    if data.get("format_version") != _FORMAT_VERSION:
        raise PlanError(
            f"unsupported plan format version {data.get('format_version')!r}"
        )
    expected = topology_fingerprint(topology)
    actual = data.get("topology_fingerprint")
    if actual != expected:
        raise PlanError(
            "plan was computed for a different topology"
            f" (fingerprint {actual!r}, expected {expected!r})"
        )
    try:
        bandwidths = {
            int(edge): int(b) for edge, b in data["bandwidths"].items()
        }
    except (KeyError, TypeError, ValueError) as err:
        raise PlanError(f"malformed plan payload: {err}") from err
    return QueryPlan(
        topology,
        bandwidths,
        requires_all_edges=bool(data.get("requires_all_edges", False)),
    )


def save_plan(plan: QueryPlan, path: str | Path) -> None:
    """Write a plan to a JSON file."""
    Path(path).write_text(json.dumps(plan_to_dict(plan), indent=2) + "\n")


def load_plan(path: str | Path, topology: Topology) -> QueryPlan:
    """Read a plan from a JSON file, validating the topology match."""
    path = Path(path)
    if not path.exists():
        raise PlanError(f"plan file not found: {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        raise PlanError(f"plan file is not valid JSON: {err}") from err
    return plan_from_dict(data, topology)
