"""Query plans and their execution semantics.

A single-pass approximate plan is a bandwidth assignment to tree edges
(paper §2); executing it is bottom-up sort-and-forward with local
filtering (§4.2).  Proof-carrying plans additionally certify a prefix
of the returned values as the true top values of each subtree (§4.3).
The NAIVE-k and NAIVE-1 exact baselines of §2 live here too.
"""

from repro.plans.adaptive import (
    ThresholdPlan,
    ThresholdPlanner,
    execute_threshold_plan,
)
from repro.plans.execution import (
    BatchCollectionResult,
    CollectionResult,
    batch_count_topk_hits,
    batch_transmitted_counts,
    count_topk_hits,
    execute_plan,
    execute_plan_batch,
    expected_hits,
)
from repro.plans.merge import merge_plans, merge_savings
from repro.plans.naive import naive_k_collect, naive_one_collect
from repro.plans.serialize import load_plan, plan_from_dict, plan_to_dict, save_plan
from repro.plans.plan import Message, QueryPlan
from repro.plans.proof_execution import ProofResult, execute_proof_plan

__all__ = [
    "BatchCollectionResult",
    "CollectionResult",
    "Message",
    "ProofResult",
    "QueryPlan",
    "ThresholdPlan",
    "ThresholdPlanner",
    "batch_count_topk_hits",
    "batch_transmitted_counts",
    "count_topk_hits",
    "execute_plan",
    "execute_plan_batch",
    "execute_proof_plan",
    "execute_threshold_plan",
    "expected_hits",
    "load_plan",
    "merge_plans",
    "merge_savings",
    "naive_k_collect",
    "naive_one_collect",
    "plan_from_dict",
    "plan_to_dict",
    "save_plan",
]
