"""Executing approximate plans: bottom-up sort-and-forward.

Upon receiving its children's value lists, a node sorts them together
with its own reading and sends the top ``b_e`` up its edge (paper §2).
Local filtering is exactly the case where a node receives more values
than its own bandwidth lets it forward.

This module also provides the fast analytic evaluation of a plan over a
sample matrix (:func:`count_topk_hits`): because any value outranking a
top-k value is itself a top-k value, the number of sample-``j`` top-k
values surviving to the root obeys the tree recursion

    survivors(u) = min(b_u, own(u) + sum over children survivors(c))

which is also how we prove (and test) that the LP+LF objective equals
the executed hit count for integral plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import PlanError
from repro.network.topology import Topology, validate_readings
from repro.plans.plan import Message, QueryPlan, Reading, tag_readings


@dataclass
class CollectionResult:
    """Outcome of one collection phase for an approximate plan."""

    returned: list[Reading]
    """Values available at the root after collection, sorted descending."""

    messages: list[Message] = field(default_factory=list)
    """One entry per used edge that actually transmitted."""

    transmitted: dict[int, int] = field(default_factory=dict)
    """Actual number of values sent on each used edge."""

    @property
    def returned_nodes(self) -> set[int]:
        return {node for __, node in self.returned}

    def top_k_nodes(self, k: int) -> set[int]:
        return {node for __, node in self.returned[:k]}


def execute_plan(plan: QueryPlan, readings, priority=None) -> CollectionResult:
    """Run one collection phase of ``plan`` over a readings vector.

    Returns the values available at the root plus the message log for
    energy accounting.  Nodes below a zero-bandwidth edge neither send
    nor receive anything.

    ``priority`` optionally replaces the forwarding order: each node
    keeps the ``b`` readings with the highest ``priority(reading)``
    instead of the plainly largest.  Top-k and selection queries use
    the default (value order); quantile queries (see
    :mod:`repro.queries`) forward the readings nearest their target
    value instead.
    """
    topology = plan.topology
    values = validate_readings(topology, readings)
    tagged = tag_readings(values)
    sort_key = priority if priority is not None else lambda reading: reading

    # Only subtrees reachable through positive bandwidths are triggered
    # at all (the distribution phase skips the rest), so nodes cut off
    # by a zero-bandwidth ancestor edge never transmit.
    active = plan.visited_nodes

    buffers: dict[int, list[Reading]] = {}
    messages: list[Message] = []
    transmitted: dict[int, int] = {}

    for node in topology.post_order():
        if node not in active:
            continue
        local: list[Reading] = [tagged[node]]
        for child in topology.children(node):
            local.extend(buffers.pop(child, []))
        local.sort(key=sort_key, reverse=True)
        if node == topology.root:
            local.sort(reverse=True)  # the answer is reported by value
            return CollectionResult(
                returned=local, messages=messages, transmitted=transmitted
            )
        outgoing = local[: plan.bandwidths[node]]
        buffers[node] = outgoing
        messages.append(Message(node, len(outgoing)))
        transmitted[node] = len(outgoing)
    raise PlanError("post-order walk did not end at the root")  # pragma: no cover


@dataclass
class BatchCollectionResult:
    """Outcome of executing one plan over every epoch of a trace.

    Transmitted counts are value-independent (each node sends
    ``min(b_e, supply)`` values where supply follows the tree
    recursion), so ``messages`` and ``transmitted`` describe *every*
    epoch; only the identities of the returned values vary per epoch.
    """

    returned_values: np.ndarray
    """``(E, R)`` float array, each row sorted descending."""

    returned_nodes: np.ndarray
    """``(E, R)`` int array of the owning node ids, aligned with
    ``returned_values`` (ties broken by higher node id, exactly as the
    scalar path's ``(value, node)`` tuple order)."""

    messages: list[Message] = field(default_factory=list)
    """The per-epoch message log (identical across epochs)."""

    transmitted: dict[int, int] = field(default_factory=dict)
    """Per-epoch values sent on each used edge (identical across epochs)."""

    @property
    def num_epochs(self) -> int:
        return int(self.returned_values.shape[0])

    @property
    def returned_width(self) -> int:
        """Number of values reaching the root each epoch."""
        return int(self.returned_values.shape[1])

    def top_k_nodes(self, k: int) -> np.ndarray:
        """``(E, min(k, R))`` node ids of each epoch's best returned values."""
        return self.returned_nodes[:, :k]

    def top_k_node_sets(self, k: int) -> list[set[int]]:
        return [set(map(int, row)) for row in self.returned_nodes[:, :k]]

    def returned_node_sets(self) -> list[set[int]]:
        return [set(map(int, row)) for row in self.returned_nodes]

    def epoch_result(self, epoch: int) -> CollectionResult:
        """The scalar-shaped :class:`CollectionResult` of one epoch."""
        returned = [
            (float(v), int(u))
            for v, u in zip(self.returned_values[epoch], self.returned_nodes[epoch])
        ]
        return CollectionResult(
            returned=returned,
            messages=list(self.messages),
            transmitted=dict(self.transmitted),
        )


def _sort_desc(
    values: np.ndarray, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise descending sort in the ``(value, node)`` total order."""
    order = np.lexsort((nodes, values), axis=1)[:, ::-1]
    return (
        np.take_along_axis(values, order, axis=1),
        np.take_along_axis(nodes, order, axis=1),
    )


def _batch_via_scalar(
    plan: QueryPlan, values: np.ndarray, priority
) -> BatchCollectionResult:
    """Scalar fallback for a ``priority`` override (an arbitrary Python
    key function cannot be vectorized); the per-epoch results are packed
    into batch shape.  Message counts are still value-independent, so
    the first epoch's log stands for all of them."""
    results = [execute_plan(plan, row, priority=priority) for row in values]
    returned_values = np.array(
        [[v for v, __ in r.returned] for r in results], dtype=np.float64
    )
    returned_nodes = np.array(
        [[u for __, u in r.returned] for r in results], dtype=np.int64
    )
    first = results[0]
    return BatchCollectionResult(
        returned_values=returned_values,
        returned_nodes=returned_nodes,
        messages=list(first.messages),
        transmitted=dict(first.transmitted),
    )


def execute_plan_batch(
    plan: QueryPlan, readings_matrix, priority=None
) -> BatchCollectionResult:
    """Run one collection phase of ``plan`` over an ``(E, n)`` trace.

    The batch equivalent of :func:`execute_plan`: one numpy tree
    recursion replaces ``E`` interpreted walks.  Each node's buffer is a
    pair of ``(E, width)`` arrays; merging children is a concatenate +
    row-wise lexsort (descending in the ``(value, node)`` order), and
    forwarding keeps the first ``b_e`` columns.  Widths are
    epoch-independent, so no padding is ever needed.

    Results are exactly those of the scalar path (equivalence-tested):
    same returned values/nodes per epoch, same message log, same
    transmitted counts.  A non-``None`` ``priority`` falls back to the
    scalar path per epoch (an arbitrary key function cannot be
    vectorized) while still returning batch-shaped results.
    """
    topology = plan.topology
    values = np.asarray(readings_matrix, dtype=np.float64)
    if values.ndim != 2:
        raise PlanError(
            f"readings matrix must be 2-D (epochs, nodes), got {values.shape}"
        )
    if values.shape[0] == 0:
        raise PlanError("readings matrix must contain at least one epoch")
    if values.shape[1] != topology.n:
        raise PlanError(
            f"readings matrix covers {values.shape[1]} nodes,"
            f" topology has {topology.n}"
        )
    if priority is not None:
        return _batch_via_scalar(plan, values, priority)

    num_epochs = values.shape[0]
    active = plan.visited_nodes
    buffers: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    messages: list[Message] = []
    transmitted: dict[int, int] = {}

    for node in topology.post_order():
        if node not in active:
            continue
        local_v = [values[:, node : node + 1]]
        local_n = [np.full((num_epochs, 1), node, dtype=np.int64)]
        for child in topology.children(node):
            if child in buffers:
                child_v, child_n = buffers.pop(child)
                local_v.append(child_v)
                local_n.append(child_n)
        merged_v = np.concatenate(local_v, axis=1) if len(local_v) > 1 else local_v[0]
        merged_n = np.concatenate(local_n, axis=1) if len(local_n) > 1 else local_n[0]
        if merged_v.shape[1] > 1:
            merged_v, merged_n = _sort_desc(merged_v, merged_n)
        if node == topology.root:
            return BatchCollectionResult(
                returned_values=merged_v,
                returned_nodes=merged_n,
                messages=messages,
                transmitted=transmitted,
            )
        bandwidth = plan.bandwidths[node]
        buffers[node] = (merged_v[:, :bandwidth], merged_n[:, :bandwidth])
        count = min(bandwidth, merged_v.shape[1])
        messages.append(Message(node, count))
        transmitted[node] = count
    raise PlanError("post-order walk did not end at the root")  # pragma: no cover


def batch_transmitted_counts(
    topology: Topology, bandwidths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-edge transmitted counts and active-node masks for ``C`` plans.

    ``bandwidths`` is a ``(C, n)`` int array of bandwidth vectors
    indexed by edge child id (a 1-D vector is treated as ``C = 1``).
    Returns ``(counts, active)``: ``counts[c, u]`` is the number of
    values edge ``e_u`` transmits under plan ``c`` (0 for the root and
    for cut-off nodes), and ``active[c, u]`` marks the plan's visited
    nodes.  Counts are value-independent — each node sends ``min(b_e,
    1 + sum of children's counts)`` values — which is what lets energy
    sweeps over many plans (e.g. the per-epoch ORACLE baselines) run as
    one vectorized recursion instead of ``C`` simulated collections.
    """
    bw = np.atleast_2d(np.asarray(bandwidths, dtype=np.int64))
    num_plans = bw.shape[0]
    root = topology.root
    active = np.zeros((num_plans, topology.n), dtype=bool)
    active[:, root] = True
    for node in topology.pre_order():
        if node == root:
            continue
        active[:, node] = (bw[:, node] > 0) & active[:, topology.parent(node)]
    counts = np.zeros((num_plans, topology.n), dtype=np.int64)
    for node in topology.post_order():
        if node == root:
            continue
        supply = np.ones(num_plans, dtype=np.int64)
        for child in topology.children(node):
            supply += counts[:, child]
        counts[:, node] = np.minimum(bw[:, node], supply) * active[:, node]
    return counts, active


def count_topk_hits(plan: QueryPlan, topology_ones: set[int]) -> int:
    """Number of a sample's top-k nodes whose values reach the root.

    ``topology_ones`` is ``ones(j)``: the node set holding the sample's
    top-k values.  Uses the tree min-recursion described in the module
    docstring; agrees with :func:`execute_plan` (tested property).
    """
    topology = plan.topology
    survivors = [0] * topology.n
    for node in topology.post_order():
        count = (1 if node in topology_ones else 0) + sum(
            survivors[child] for child in topology.children(node)
        )
        if node != topology.root:
            count = min(count, plan.bandwidths[node])
        survivors[node] = count
    return survivors[topology.root]


def ones_to_matrix(n: int, ones_per_sample: Iterable[set[int]]) -> np.ndarray:
    """Pack ``ones(j)`` sets into an ``(m, n)`` boolean matrix."""
    ones_list = list(ones_per_sample)
    matrix = np.zeros((len(ones_list), n), dtype=bool)
    for j, ones in enumerate(ones_list):
        if ones:
            matrix[j, list(ones)] = True
    return matrix


def bandwidth_vector(plan: QueryPlan) -> np.ndarray:
    """A plan's bandwidths as an int array indexed by edge child id
    (the root slot is 0 and ignored by the flow recursion)."""
    vector = np.zeros(plan.topology.n, dtype=np.int64)
    for edge, bandwidth in plan.bandwidths.items():
        vector[edge] = bandwidth
    return vector


def batch_count_topk_hits(
    topology: Topology, bandwidths: np.ndarray, ones_matrix: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`count_topk_hits` over candidates × samples.

    Parameters
    ----------
    bandwidths:
        ``(C, n)`` integer array of candidate bandwidth vectors indexed
        by edge child id (a 1-D vector is treated as ``C = 1``).
    ones_matrix:
        ``(m, n)`` boolean matrix with ``ones_matrix[j, i] = 1`` iff
        node ``i`` holds one of sample ``j``'s top-k values.

    Returns
    -------
    ``(C, m)`` array of root survivor counts.  The tree min-recursion
    runs once per node with numpy ops across all candidates and samples,
    which is what makes the rounding repair/fill loops cheap.
    """
    bw = np.atleast_2d(np.asarray(bandwidths, dtype=np.int64))
    own = np.asarray(ones_matrix, dtype=np.int64)
    num_candidates = bw.shape[0]
    num_samples = own.shape[0]
    root = topology.root
    survivors: dict[int, np.ndarray] = {}
    for node in topology.post_order():
        count = np.broadcast_to(
            own[:, node], (num_candidates, num_samples)
        ).copy()
        for child in topology.children(node):
            count += survivors.pop(child)
        if node != root:
            np.minimum(count, bw[:, node, None], out=count)
        survivors[node] = count
    return survivors[root]


def expected_hits(plan: QueryPlan, ones_per_sample: list[set[int]]) -> float:
    """Average top-k hits of a plan over a list of ``ones(j)`` sets."""
    if not ones_per_sample:
        return 0.0
    total = sum(count_topk_hits(plan, ones) for ones in ones_per_sample)
    return total / len(ones_per_sample)
