"""Executing approximate plans: bottom-up sort-and-forward.

Upon receiving its children's value lists, a node sorts them together
with its own reading and sends the top ``b_e`` up its edge (paper §2).
Local filtering is exactly the case where a node receives more values
than its own bandwidth lets it forward.

This module also provides the fast analytic evaluation of a plan over a
sample matrix (:func:`count_topk_hits`): because any value outranking a
top-k value is itself a top-k value, the number of sample-``j`` top-k
values surviving to the root obeys the tree recursion

    survivors(u) = min(b_u, own(u) + sum over children survivors(c))

which is also how we prove (and test) that the LP+LF objective equals
the executed hit count for integral plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import PlanError
from repro.network.topology import Topology, validate_readings
from repro.plans.plan import Message, QueryPlan, Reading, tag_readings


@dataclass
class CollectionResult:
    """Outcome of one collection phase for an approximate plan."""

    returned: list[Reading]
    """Values available at the root after collection, sorted descending."""

    messages: list[Message] = field(default_factory=list)
    """One entry per used edge that actually transmitted."""

    transmitted: dict[int, int] = field(default_factory=dict)
    """Actual number of values sent on each used edge."""

    @property
    def returned_nodes(self) -> set[int]:
        return {node for __, node in self.returned}

    def top_k_nodes(self, k: int) -> set[int]:
        return {node for __, node in self.returned[:k]}


def execute_plan(plan: QueryPlan, readings, priority=None) -> CollectionResult:
    """Run one collection phase of ``plan`` over a readings vector.

    Returns the values available at the root plus the message log for
    energy accounting.  Nodes below a zero-bandwidth edge neither send
    nor receive anything.

    ``priority`` optionally replaces the forwarding order: each node
    keeps the ``b`` readings with the highest ``priority(reading)``
    instead of the plainly largest.  Top-k and selection queries use
    the default (value order); quantile queries (see
    :mod:`repro.queries`) forward the readings nearest their target
    value instead.
    """
    topology = plan.topology
    values = validate_readings(topology, readings)
    tagged = tag_readings(values)
    sort_key = priority if priority is not None else lambda reading: reading

    # Only subtrees reachable through positive bandwidths are triggered
    # at all (the distribution phase skips the rest), so nodes cut off
    # by a zero-bandwidth ancestor edge never transmit.
    active = plan.visited_nodes

    buffers: dict[int, list[Reading]] = {}
    messages: list[Message] = []
    transmitted: dict[int, int] = {}

    for node in topology.post_order():
        if node not in active:
            continue
        local: list[Reading] = [tagged[node]]
        for child in topology.children(node):
            local.extend(buffers.pop(child, []))
        local.sort(key=sort_key, reverse=True)
        if node == topology.root:
            local.sort(reverse=True)  # the answer is reported by value
            return CollectionResult(
                returned=local, messages=messages, transmitted=transmitted
            )
        outgoing = local[: plan.bandwidths[node]]
        buffers[node] = outgoing
        messages.append(Message(node, len(outgoing)))
        transmitted[node] = len(outgoing)
    raise PlanError("post-order walk did not end at the root")  # pragma: no cover


def count_topk_hits(plan: QueryPlan, topology_ones: set[int]) -> int:
    """Number of a sample's top-k nodes whose values reach the root.

    ``topology_ones`` is ``ones(j)``: the node set holding the sample's
    top-k values.  Uses the tree min-recursion described in the module
    docstring; agrees with :func:`execute_plan` (tested property).
    """
    topology = plan.topology
    survivors = [0] * topology.n
    for node in topology.post_order():
        count = (1 if node in topology_ones else 0) + sum(
            survivors[child] for child in topology.children(node)
        )
        if node != topology.root:
            count = min(count, plan.bandwidths[node])
        survivors[node] = count
    return survivors[topology.root]


def ones_to_matrix(n: int, ones_per_sample: Iterable[set[int]]) -> np.ndarray:
    """Pack ``ones(j)`` sets into an ``(m, n)`` boolean matrix."""
    ones_list = list(ones_per_sample)
    matrix = np.zeros((len(ones_list), n), dtype=bool)
    for j, ones in enumerate(ones_list):
        if ones:
            matrix[j, list(ones)] = True
    return matrix


def bandwidth_vector(plan: QueryPlan) -> np.ndarray:
    """A plan's bandwidths as an int array indexed by edge child id
    (the root slot is 0 and ignored by the flow recursion)."""
    vector = np.zeros(plan.topology.n, dtype=np.int64)
    for edge, bandwidth in plan.bandwidths.items():
        vector[edge] = bandwidth
    return vector


def batch_count_topk_hits(
    topology: Topology, bandwidths: np.ndarray, ones_matrix: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`count_topk_hits` over candidates × samples.

    Parameters
    ----------
    bandwidths:
        ``(C, n)`` integer array of candidate bandwidth vectors indexed
        by edge child id (a 1-D vector is treated as ``C = 1``).
    ones_matrix:
        ``(m, n)`` boolean matrix with ``ones_matrix[j, i] = 1`` iff
        node ``i`` holds one of sample ``j``'s top-k values.

    Returns
    -------
    ``(C, m)`` array of root survivor counts.  The tree min-recursion
    runs once per node with numpy ops across all candidates and samples,
    which is what makes the rounding repair/fill loops cheap.
    """
    bw = np.atleast_2d(np.asarray(bandwidths, dtype=np.int64))
    own = np.asarray(ones_matrix, dtype=np.int64)
    num_candidates = bw.shape[0]
    num_samples = own.shape[0]
    root = topology.root
    survivors: dict[int, np.ndarray] = {}
    for node in topology.post_order():
        count = np.broadcast_to(
            own[:, node], (num_candidates, num_samples)
        ).copy()
        for child in topology.children(node):
            count += survivors.pop(child)
        if node != root:
            np.minimum(count, bw[:, node, None], out=count)
        survivors[node] = count
    return survivors[root]


def expected_hits(plan: QueryPlan, ones_per_sample: list[set[int]]) -> float:
    """Average top-k hits of a plan over a list of ``ones(j)`` sets."""
    if not ones_per_sample:
        return 0.0
    total = sum(count_topk_hits(plan, ones) for ones in ones_per_sample)
    return total / len(ones_per_sample)
