"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ModelError(ReproError):
    """An LP model was constructed or used inconsistently.

    Raised, for example, when a variable from one model is used in a
    constraint added to a different model, or when an objective is
    requested before one has been set.
    """


class SolverError(ReproError):
    """An LP solve failed (infeasible, unbounded, or backend failure)."""

    def __init__(self, message: str, status: str = "error") -> None:
        super().__init__(message)
        self.status = status


class TopologyError(ReproError):
    """A sensor network topology is invalid or cannot be constructed.

    Raised when placement parameters make a connected spanning tree
    impossible (radio range too small) or when tree invariants are
    violated (multiple roots, cycles, unknown node ids).
    """


class PlanError(ReproError):
    """A query plan is malformed or inconsistent with its topology."""


class BudgetError(ReproError):
    """An energy budget is too small to admit any feasible plan."""


class SamplingError(ReproError):
    """Sample data is missing, malformed, or inconsistent with the network."""


class TraceError(ReproError):
    """A sensor reading trace is malformed or exhausted."""


class ObservabilityError(ReproError):
    """The observability subsystem was used inconsistently.

    Raised for unknown event kinds, malformed metric dumps, and other
    misuse of :mod:`repro.obs`; never raised on the hot path when
    instrumentation is disabled.
    """


class ServiceError(ReproError):
    """Base class for the multi-tenant query service's failures.

    Subclasses travel over the wire by class name (see
    :mod:`repro.service.messages`), so a socket client raises the same
    typed error an in-process caller would.
    """


class ProtocolError(ServiceError):
    """A wire-protocol violation (framing, negotiation, or payload).

    Raised when a peer breaks the binary v2 framing rules — a
    malformed or truncated frame, trailing payload bytes, an unknown
    kind code, a bad blob reference — or when version negotiation
    fails (a v1-only peer against a server requiring v2, say).
    Distinct from :class:`ServiceError` proper so clients can tell
    "the bytes were wrong" from "the request was wrong".
    """


class SessionError(ServiceError):
    """A session id is unknown, already closed, or idle-expired."""


class AdmissionError(ServiceError):
    """The service refused to open a session (admission control).

    Raised when the configured maximum number of concurrent sessions
    is reached; callers should retry later or close idle sessions.
    """


class OverloadError(ServiceError):
    """A request was shed under backpressure.

    Raised when a session's bounded request queue is full; the request
    was *not* executed and can safely be retried after a backoff.
    """


class ServiceUnavailableError(ServiceError):
    """The service endpoint cannot be reached (or stopped responding).

    Raised by :class:`~repro.service.client.SocketClient` when a
    connect or read times out or the peer drops the connection, and by
    a draining service that refuses new work during graceful shutdown.
    Idempotent requests are transparently retried once over a fresh
    connection before this is raised.
    """
