"""Figure 8: PROSPECTOR-Exact vs the exact baselines.

PROSPECTOR-Exact runs a PROSPECTOR-Proof phase under a swept phase-1
budget ("trial instances"), then mops up whatever the proof phase
failed to certify.  NAIVE-k and ORACLE-PROOF are single-phase, so they
appear as horizontal cost lines.

Paper shape to reproduce: small phase-1 budgets leave an expensive
phase 2; generous phase-1 budgets over-fetch; the optimum lies in
between and recovers a substantial share (~50% in the paper) of the
gap between NAIVE-k and ORACLE-PROOF.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.gaussian import random_gaussian_field
from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentRunner
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.exact import ExactTopK
from repro.planners.oracle import OracleProofPlanner
from repro.planners.proof import ProofPlanner
from repro.plans.plan import QueryPlan, top_k_set
from repro.simulation.batch import BatchSimulator
from repro.simulation.fleet import FleetCell, FleetSimulator
from repro.simulation.runtime import Simulator


def _exact_trial(params: dict, rng: np.random.Generator) -> dict:
    """One phase-1 budget level: run the two-phase exact algorithm over
    the evaluation trace (the proof/mop-up protocol is inherently
    per-epoch, so the inner loop stays scalar).  The proof plan arrives
    precomputed — the whole budget ladder is solved as one warm-started
    parametric sweep before the trials fan out."""
    energy = params["energy"]
    plan = params["plan"]
    exact = ExactTopK(ProofPlanner(fill_budget=True))
    phase1 = []
    phase2 = []
    for readings in params["eval_trace"]:
        outcome = exact.run_with_plan(plan, params["k"], readings)
        assert outcome.answer_nodes() == top_k_set(readings, params["k"])
        phase1.append(sum(m.cost(energy) for m in outcome.phase1_messages))
        phase2.append(sum(m.cost(energy) for m in outcome.phase2_messages))
    return {
        "trial": params["trial"],
        "phase1_budget_mj": round(params["budget"], 2),
        "phase1_cost_mj": float(np.mean(phase1)),
        "phase2_cost_mj": float(np.mean(phase2)),
        "total_cost_mj": float(np.mean(phase1) + np.mean(phase2)),
    }


def run(
    seed: int = 2006,
    n: int = 80,
    k: int = 10,
    num_samples: int = 10,
    eval_epochs: int = 8,
    budget_factors: tuple[float, ...] = (1.0, 1.1, 1.2, 1.3, 1.45, 1.6, 1.8),
    variance_scale: float = 1.0,
    engine: str = "batch",
    processes: int | None = None,
    runner: ExperimentRunner | None = None,
) -> list[dict]:
    """One row per trial instance (phase-1 budget level) of Figure 8."""
    rng = np.random.default_rng(seed)
    energy = EnergyModel.mica2()
    topology = random_topology(n, rng=rng)
    field = random_gaussian_field(n, rng).scaled_variance(variance_scale)
    train = field.trace(num_samples, rng)
    eval_trace = field.trace(eval_epochs, rng)
    samples = train.sample_matrix(k)
    simulator = Simulator(topology, energy)

    # horizontal baselines: NAIVE-k replays one installed plan, so the
    # batch engine measures it in one pass (or as a fleet cell, whose
    # accounting is energy-identical since NAIVE-k visits every node);
    # the proof-carrying oracle baseline stays on the scalar
    # proof-execution path
    if engine == "fleet":
        fleet = FleetSimulator(energy, processes=processes)
        report = fleet.run(
            [
                FleetCell(
                    topology, QueryPlan.naive_k(topology, k),
                    eval_trace.values, label="naive-k",
                )
            ],
            seed=seed,
        )[0]
        naive_line = float(np.mean(report.energy_mj))
    elif engine == "batch":
        batch = BatchSimulator(topology, energy)
        naive_line = float(
            np.mean(batch.run_naive_k(eval_trace.values, k).energy_mj)
        )
    else:
        naive_costs = [
            simulator.run_naive_k(readings, k).energy_mj
            for readings in eval_trace
        ]
        naive_line = float(np.mean(naive_costs))

    oracle_proof = OracleProofPlanner()
    oracle_costs = []
    for readings in eval_trace:
        plan = oracle_proof.plan_for_readings(topology, readings, k)
        oracle_costs.append(
            simulator.run_proof_collection(plan, readings).energy_mj
        )
    oracle_line = float(np.mean(oracle_costs))

    # fill_budget reproduces the paper's phase-1 behaviour: allocated
    # energy is spent ("the first phase acquires more values than
    # needed" at generous budgets), giving the U-shaped total cost
    proof_planner = ProofPlanner(fill_budget=True)
    probe = PlanningContext(topology, energy, samples, k, budget=float("inf"))
    minimum = proof_planner.minimum_cost(probe)

    if runner is None:
        runner = ExperimentRunner(processes=processes, seed=seed)
    budgets = [minimum * factor for factor in budget_factors]
    context = PlanningContext(
        topology, energy, samples, k, budget=budgets[0]
    )
    plans = proof_planner.plan_for_budgets(context, budgets)
    trial_params = [
        {
            "trial": trial,
            "topology": topology,
            "energy": energy,
            "k": k,
            "budget": budget,
            "plan": plan,
            "eval_trace": eval_trace,
        }
        for trial, (budget, plan) in enumerate(zip(budgets, plans), start=1)
    ]
    rows = list(runner.map(_exact_trial, trial_params, seed=seed))
    for row in rows:
        row["naive_k_mj"] = naive_line
        row["oracle_proof_mj"] = oracle_line
    return rows


def main() -> list[dict]:
    rows = run()
    print_table(
        rows,
        columns=[
            "trial",
            "phase1_budget_mj",
            "phase1_cost_mj",
            "phase2_cost_mj",
            "total_cost_mj",
            "naive_k_mj",
            "oracle_proof_mj",
        ],
        title="Figure 8: PROSPECTOR-Exact phase breakdown",
    )
    return rows


if __name__ == "__main__":
    main()
