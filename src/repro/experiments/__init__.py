"""Experiment harness: one module per figure of the paper's evaluation.

Every module exposes a ``run(...) -> list[dict]`` returning one row per
plotted point, plus a ``main()`` that prints the rows as an ASCII
table.  The benchmarks under ``benchmarks/`` call these same functions,
so ``pytest benchmarks/ --benchmark-only`` regenerates the whole
evaluation; EXPERIMENTS.md records the measured shapes against the
paper's.
"""

from repro.experiments import (
    fig3_comparison,
    fig4_variance,
    fig5_zones,
    fig7_num_zones,
    fig8_exact,
    fig9_intel,
    lp_timing,
    sample_size,
)
from repro.experiments.reporting import format_table

__all__ = [
    "fig3_comparison",
    "fig4_variance",
    "fig5_zones",
    "fig7_num_zones",
    "fig8_exact",
    "fig9_intel",
    "format_table",
    "lp_timing",
    "sample_size",
]
