"""Figure 9: the Intel Lab temperature data (surrogate).

54 motes, radio range shortened to 6m to force hierarchy, the first 50
epochs as samples, k = 5.  On this data the top-k locations are fairly
predictable, so the paper finds LP+LF ≈ LP−LF (local filtering buys
nothing) while topology-awareness still separates LP−LF from Greedy;
NAIVE-k needs over 3x the energy of the approximate planners at
near-100% accuracy.

The surrogate trace preserves exactly those properties (stable warm
spots, smooth drift); see DESIGN.md §4 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.intel import IntelLabSurrogate, intel_lab_network
from repro.experiments.common import budget_sweep, evaluate_planner
from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentRunner
from repro.network.energy import EnergyModel
from repro.planners.greedy import GreedyPlanner
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.query.accuracy import accuracy as accuracy_metric
from repro.query.accuracy import batch_accuracy
from repro.simulation.batch import BatchSimulator
from repro.simulation.runtime import Simulator


def _budget_trial(params: dict, rng: np.random.Generator) -> dict:
    """One (planner, budget) point, runnable in a worker process."""
    evaluation = evaluate_planner(
        params["planner"],
        params["topology"],
        params["energy"],
        params["train"],
        params["eval_trace"],
        params["k"],
        params["budget"],
        rng=rng,
        engine=params["engine"],
    )
    return evaluation.row(budget_mj=round(params["budget"], 2))


def run(
    seed: int = 2006,
    k: int = 5,
    training_epochs: int = 50,
    eval_epochs: int = 25,
    budget_steps: int = 6,
    include_lp_lf: bool = True,
    engine: str = "batch",
    processes: int | None = None,
    runner: ExperimentRunner | None = None,
) -> list[dict]:
    """One row per (algorithm, budget) point of Figure 9."""
    rng = np.random.default_rng(seed)
    energy = EnergyModel.mica2()
    topology = intel_lab_network(rng)
    surrogate = IntelLabSurrogate()
    trace = surrogate.generate(topology, training_epochs + eval_epochs, rng)
    train, eval_trace = trace.split(training_epochs)

    planners = [GreedyPlanner(), LPNoLFPlanner()]
    if include_lp_lf:
        planners.append(LPLFPlanner())

    if runner is None:
        runner = ExperimentRunner(processes=processes, seed=seed)

    # the lab network is deep (radio range forced down to 6m), so even
    # one fetched value pays per-message along the whole root path
    base = energy.message_cost(1) * (topology.height + 2)
    trial_params = [
        {
            "planner": planner,
            "topology": topology,
            "energy": energy,
            "train": train,
            "eval_trace": eval_trace,
            "k": k,
            "budget": budget,
            "engine": engine,
        }
        for budget in budget_sweep(base, budget_steps, factor=1.5)
        for planner in planners
    ]
    rows: list[dict] = list(runner.map(_budget_trial, trial_params, seed=seed))

    # the NAIVE-k reference point the paper quotes in prose
    if engine == "batch":
        simulator = BatchSimulator(topology, energy)
        report = simulator.run_naive_k(eval_trace.values, k)
        naive_accs = batch_accuracy(report.top_k_nodes(k), eval_trace.values, k)
        naive_costs = report.energy_mj
    else:
        simulator = Simulator(topology, energy)
        naive_costs = []
        naive_accs = []
        for readings in eval_trace:
            report = simulator.run_naive_k(readings, k)
            naive_costs.append(report.energy_mj)
            naive_accs.append(
                accuracy_metric(report.top_k_nodes(k), readings, k)
            )
    rows.append(
        {
            "algorithm": "naive-k",
            "accuracy": float(np.mean(naive_accs)),
            "energy_mj": float(np.mean(naive_costs)),
            "budget_mj": "",
        }
    )
    return rows


def main() -> list[dict]:
    rows = run()
    print_table(
        rows,
        columns=["algorithm", "budget_mj", "energy_mj", "accuracy"],
        title="Figure 9: Intel Lab data (synthetic surrogate)",
    )
    return rows


if __name__ == "__main__":
    main()
