"""Figure 7: varying the number of contention zones.

Starting from the Figure 5 scenario, the zone count sweeps 1..6 while
each zone keeps 2k nodes; the per-node probability of exceeding the
background rises to ``1/(2z)`` so the network always expects k zone
values above the background.  The budget is fixed at a level where
Figure 5 shows a large LP+LF/LP−LF gap.

Paper shape to reproduce: both algorithms degrade as zones multiply
(more zones must be traversed to collect the same k values), and the
LP−LF penalty for swallowing whole zones grows since any single zone
holds a smaller share of the top k.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.zones import ZoneWorkload
from repro.experiments.common import evaluate_planner
from repro.experiments.reporting import print_table
from repro.network.energy import EnergyModel
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner


def run(
    seed: int = 2006,
    zone_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
    k: int = 10,
    num_samples: int = 25,
    eval_epochs: int = 20,
    budget: float | None = None,
) -> list[dict]:
    """One row per (algorithm, zone count) point of Figure 7."""
    rng = np.random.default_rng(seed)
    energy = EnergyModel.mica2()
    if budget is None:
        # a mid-ladder Figure 5 budget: large LP+LF advantage there
        budget = energy.message_cost(1) * 5 * 1.8**3

    rows: list[dict] = []
    for zones in zone_counts:
        workload = ZoneWorkload(num_zones=zones, k=k)
        train = workload.trace(num_samples, rng)
        eval_trace = workload.trace(eval_epochs, rng)
        for planner in (LPNoLFPlanner(), LPLFPlanner()):
            evaluation = evaluate_planner(
                planner, workload.topology, energy, train, eval_trace, k, budget
            )
            rows.append(evaluation.row(num_zones=zones))
    return rows


def main() -> list[dict]:
    rows = run()
    print_table(
        rows,
        columns=["algorithm", "num_zones", "energy_mj", "accuracy"],
        title="Figure 7: varying the number of contention zones",
    )
    return rows


if __name__ == "__main__":
    main()
