"""Figure 5: contention zones — LP+LF vs LP−LF over an energy sweep.

Six zones of 2k nodes around the perimeter (Figure 6 layout); each zone
node has the same small chance of exceeding the background mean, so
each zone supplies top values but *which* nodes supply them changes
every epoch.

Paper shape to reproduce: LP+LF greatly outperforms LP−LF, and its
advantage grows with the budget — LP−LF wastes energy acquiring whole
zones (every zone value it fetches has only a small chance of mattering)
while LP+LF visits several zones and locally filters each down to its
few winners.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.zones import ZoneWorkload
from repro.experiments.common import budget_sweep, evaluate_planner
from repro.experiments.reporting import print_table
from repro.network.energy import EnergyModel
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner


def run(
    seed: int = 2006,
    num_zones: int = 6,
    k: int = 10,
    num_samples: int = 25,
    eval_epochs: int = 20,
    budget_steps: int = 6,
) -> list[dict]:
    """One row per (algorithm, budget) point of Figure 5."""
    rng = np.random.default_rng(seed)
    energy = EnergyModel.mica2()
    workload = ZoneWorkload(num_zones=num_zones, k=k)
    topology = workload.topology
    train = workload.trace(num_samples, rng)
    eval_trace = workload.trace(eval_epochs, rng)

    # the interesting regime starts where one whole zone is affordable:
    # relay chain plus 2k member acquisitions (the LP−LF mistake the
    # paper describes is only expressible from there on up)
    zone_size = 2 * k
    base = energy.message_cost(1) * (workload.relay_hops + zone_size)
    rows: list[dict] = []
    for budget in budget_sweep(base, budget_steps, factor=1.5):
        for planner in (LPNoLFPlanner(), LPLFPlanner()):
            evaluation = evaluate_planner(
                planner, topology, energy, train, eval_trace, k, budget
            )
            rows.append(evaluation.row(budget_mj=round(budget, 2)))
    return rows


def main() -> list[dict]:
    rows = run()
    print_table(
        rows,
        columns=["algorithm", "budget_mj", "energy_mj", "accuracy"],
        title="Figure 5: contention zones",
    )
    return rows


if __name__ == "__main__":
    main()
