"""Figure 4: effect of variance on LP−LF vs LP+LF.

Means stay in a small range; the variance sweeps from near zero (top-k
locations fully predictable) to large (all nodes nearly equally
likely).  The budget is fixed at a level that lets LP+LF reach near
perfect accuracy when variance is negligible.

Paper shape to reproduce: both algorithms are near 100% at low
variance; both degrade as variance grows, but LP−LF degrades *faster*
(it must commit to a fixed node set, while LP+LF spends the same budget
visiting more nodes and filtering locally); both level out once the
means are diluted.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.gaussian import random_gaussian_field
from repro.experiments.common import evaluate_planner
from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentRunner
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner

DEFAULT_VARIANCES = (0.05, 0.5, 2.0, 4.0, 7.0, 10.0, 14.0)


def _variance_trial(params: dict, rng: np.random.Generator) -> dict:
    """One (planner, variance) point, runnable in a worker process."""
    evaluation = evaluate_planner(
        params["planner"],
        params["topology"],
        params["energy"],
        params["train"],
        params["eval_trace"],
        params["k"],
        params["budget"],
        rng=rng,
        engine=params["engine"],
    )
    return evaluation.row(variance=params["variance"])


def run(
    seed: int = 2006,
    n: int = 60,
    k: int = 10,
    num_samples: int = 25,
    eval_epochs: int = 20,
    variances: tuple[float, ...] = DEFAULT_VARIANCES,
    budget: float | None = None,
    engine: str = "batch",
    processes: int | None = None,
    runner: ExperimentRunner | None = None,
) -> list[dict]:
    """One row per (algorithm, variance) point of Figure 4."""
    rng = np.random.default_rng(seed)
    energy = EnergyModel.mica2()
    topology = random_topology(n, rng=rng)
    # unit-variance base field; the sweep scales it
    base = random_gaussian_field(n, rng, std_range=(1.0, 1.0))
    if budget is None:
        # enough to fetch ~3k scattered values: near-perfect when
        # variance is negligible, stressed when it is not
        budget = energy.message_cost(1) * 3 * k

    if runner is None:
        runner = ExperimentRunner(processes=processes, seed=seed)

    # traces are drawn in sweep order first so the rng stream (and
    # hence every row) is bit-identical to the original serial loop
    trial_params = []
    for variance in variances:
        field = base.scaled_variance(variance)
        train = field.trace(num_samples, rng)
        eval_trace = field.trace(eval_epochs, rng)
        for planner in (LPNoLFPlanner(), LPLFPlanner()):
            trial_params.append(
                {
                    "planner": planner,
                    "topology": topology,
                    "energy": energy,
                    "train": train,
                    "eval_trace": eval_trace,
                    "k": k,
                    "budget": budget,
                    "variance": variance,
                    "engine": engine,
                }
            )
    return list(runner.map(_variance_trial, trial_params, seed=seed))


def main() -> list[dict]:
    rows = run()
    print_table(
        rows,
        columns=["algorithm", "variance", "energy_mj", "accuracy"],
        title="Figure 4: effect of variance",
    )
    return rows


if __name__ == "__main__":
    main()
