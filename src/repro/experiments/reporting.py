"""ASCII tables and charts for experiment output.

The harness is terminal-only (no plotting dependencies), so the figures
the paper draws as line charts are rendered as scatter plots in text:
one glyph per series, budget/variance on the x axis, accuracy or cost
on the y axis.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Render rows of dicts as a fixed-width ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "-" * len(header)
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in table
    )
    parts = [title, header, rule, body] if title else [header, rule, body]
    return "\n".join(parts)


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> None:
    print(format_table(rows, columns, title))


def ascii_chart(
    rows: Sequence[Mapping[str, object]],
    x: str,
    y: str,
    series: str | None = None,
    width: int = 64,
    height: int = 18,
    title: str = "",
) -> str:
    """Render rows as a text scatter plot.

    Parameters
    ----------
    x, y:
        Column names for the axes (numeric values only; rows with
        non-numeric entries in either column are skipped).
    series:
        Optional column whose values split the rows into glyph-coded
        series (a legend is appended).
    """
    GLYPHS = "ox+*#@%&"

    points: list[tuple[float, float, str]] = []
    labels: list[str] = []
    for row in rows:
        try:
            px = float(row[x])  # type: ignore[arg-type]
            py = float(row[y])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            continue
        label = str(row.get(series, "")) if series else ""
        if label and label not in labels:
            labels.append(label)
        points.append((px, py, label))
    if not points:
        return f"{title}\n(no plottable points)" if title else "(no plottable points)"

    xs = [p for p, __, __ in points]
    ys = [p for __, p, __ in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for __ in range(height)]
    for px, py, label in points:
        col = int((px - x_lo) / x_span * (width - 1))
        row_index = height - 1 - int((py - y_lo) / y_span * (height - 1))
        glyph = GLYPHS[labels.index(label) % len(GLYPHS)] if label else "o"
        grid[row_index][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:g}"
    bottom_label = f"{y_lo:g}"
    margin = max(len(top_label), len(bottom_label))
    for index, grid_row in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(margin)
        elif index == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |" + "".join(grid_row))
    lines.append(" " * margin + " +" + "-" * width)
    lines.append(
        " " * margin
        + f"  {x_lo:g}".ljust(width // 2)
        + f"{x_hi:g} ({x})".rjust(width // 2)
    )
    if labels:
        legend = "   ".join(
            f"{GLYPHS[i % len(GLYPHS)]}={label}"
            for i, label in enumerate(labels)
        )
        lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)


def print_chart(
    rows: Sequence[Mapping[str, object]],
    x: str,
    y: str,
    series: str | None = None,
    **kwargs,
) -> None:
    print(ascii_chart(rows, x, y, series=series, **kwargs))
