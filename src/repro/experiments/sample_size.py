"""Sample-size study (§5 "Other Results").

The paper: a single sample yields very poor accuracy; 5-25 samples
improve it dramatically; beyond ~25-50 the benefit levels out.  This
experiment sweeps the training-window size on the Figure 3 workload
(and optionally the Intel surrogate) at a fixed budget.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.gaussian import random_gaussian_field
from repro.datagen.intel import IntelLabSurrogate, intel_lab_network
from repro.datagen.trace import Trace
from repro.experiments.common import evaluate_planner
from repro.experiments.reporting import print_table
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.lp_lf import LPLFPlanner

DEFAULT_SIZES = (1, 2, 5, 10, 25, 50)


def run(
    seed: int = 2006,
    n: int = 60,
    k: int = 10,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    eval_epochs: int = 20,
    variance_scale: float = 9.0,
    workload: str = "gaussian",
) -> list[dict]:
    """One row per window size; ``workload`` is 'gaussian' or 'intel'."""
    rng = np.random.default_rng(seed)
    energy = EnergyModel.mica2()

    if workload == "gaussian":
        topology = random_topology(n, rng=rng)
        field = random_gaussian_field(n, rng).scaled_variance(variance_scale)
        train_full = field.trace(max(sizes), rng)
        eval_trace = field.trace(eval_epochs, rng)
        budget = energy.message_cost(1) * 1.5 * k
    elif workload == "intel":
        topology = intel_lab_network(rng)
        surrogate = IntelLabSurrogate()
        trace = surrogate.generate(topology, max(sizes) + eval_epochs, rng)
        train_full, eval_trace = trace.split(max(sizes))
        k = min(k, 5)
        budget = energy.message_cost(1) * 1.5 * k
    else:
        raise ValueError(f"unknown workload {workload!r}")

    planner = LPLFPlanner()
    rows: list[dict] = []
    for size in sizes:
        train = Trace(train_full.values[-size:])
        evaluation = evaluate_planner(
            planner, topology, energy, train, eval_trace, k, budget
        )
        rows.append(evaluation.row(num_samples=size, workload=workload))
    return rows


def main() -> list[dict]:
    rows = run()
    print_table(
        rows,
        columns=["workload", "num_samples", "energy_mj", "accuracy"],
        title="Sample-size study (§5 'Other Results')",
    )
    return rows


if __name__ == "__main__":
    main()
