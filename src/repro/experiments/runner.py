"""Parallel experiment runner: deterministic seeds, cached trials.

Every figure of the evaluation is a bag of independent trials (one per
planner × budget, per variance level, per phase-1 budget factor...).
:class:`ExperimentRunner` runs such a bag through three layers:

- **Deterministic seeding.**  A root :class:`numpy.random.SeedSequence`
  is spawned once per trial (``root.spawn(len(trials))``), so trial
  ``i`` always sees the same independent stream regardless of how many
  workers execute the bag, in which order, or whether other trials were
  served from cache.
- **Content-keyed result cache.**  A trial's key is a digest of the
  trial function's qualified name, its parameters, and its spawned
  seed; re-running an experiment with identical inputs returns the
  stored row without recomputation (obs counters ``runner.cache.*``
  report hit rates).
- **Process pool.**  Cache misses are dispatched to a
  ``ProcessPoolExecutor`` when ``processes > 1``; with one process (or
  one miss) they run inline, which also keeps instrumentation usable —
  an :class:`~repro.obs.Instrumentation` cannot cross process
  boundaries, so parallel trials run without it.

Trial functions must be module-level (picklable) callables of the form
``fn(params: dict, rng: numpy.random.Generator) -> result``.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, is_dataclass, fields as dataclass_fields

import numpy as np

from repro.obs import Instrumentation


def _fingerprint(value, digest) -> None:
    """Feed a stable content digest of ``value`` into ``digest``.

    Primitives, sequences and mappings are walked structurally; numpy
    arrays hash their raw bytes; dataclasses hash their fields; objects
    exposing ``cache_token()`` delegate to it.  Everything else falls
    back to its pickle (stable for identical content within and across
    processes of the same build, which is all an experiment cache
    needs).
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        digest.update(repr(value).encode())
    elif isinstance(value, np.ndarray):
        digest.update(b"ndarray")
        digest.update(str(value.dtype).encode())
        digest.update(str(value.shape).encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (list, tuple)):
        digest.update(b"seq")
        for item in value:
            _fingerprint(item, digest)
    elif isinstance(value, (set, frozenset)):
        digest.update(b"set")
        for item in sorted(value, key=repr):
            _fingerprint(item, digest)
    elif isinstance(value, dict):
        digest.update(b"map")
        for key in sorted(value, key=repr):
            _fingerprint(key, digest)
            _fingerprint(value[key], digest)
    elif hasattr(value, "cache_token"):
        digest.update(type(value).__qualname__.encode())
        _fingerprint(value.cache_token(), digest)
    elif is_dataclass(value) and not isinstance(value, type):
        digest.update(type(value).__qualname__.encode())
        for field in dataclass_fields(value):
            digest.update(field.name.encode())
            _fingerprint(getattr(value, field.name), digest)
    else:
        digest.update(type(value).__qualname__.encode())
        digest.update(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


def content_key(fn, params: dict, seed: np.random.SeedSequence) -> str:
    """Digest identifying one trial: function + parameters + seed."""
    digest = hashlib.sha256()
    digest.update(f"{fn.__module__}.{fn.__qualname__}".encode())
    _fingerprint(params, digest)
    digest.update(str(seed.entropy).encode())
    digest.update(str(seed.spawn_key).encode())
    return digest.hexdigest()


def _call_trial(fn, params: dict, seed: np.random.SeedSequence):
    """Worker-side entry point (module-level so it pickles)."""
    return fn(params, np.random.default_rng(seed))


@dataclass
class TrialOutcome:
    """Bookkeeping for one executed or cache-served trial."""

    result: object
    cached: bool
    seconds: float


class ExperimentRunner:
    """Runs bags of independent experiment trials (see module docstring).

    Parameters
    ----------
    processes:
        Worker processes for cache-missed trials.  ``None`` or ``1``
        runs inline (deterministic order, instrumentation usable);
        larger values dispatch to a process pool.
    seed:
        Default root seed (int or ``SeedSequence``) used by
        :meth:`map` when the call does not pass its own.
    instrumentation:
        Optional observability sink; records ``runner.*`` counters and
        per-trial timings (inline trials only — instrumentation cannot
        cross process boundaries).
    """

    def __init__(
        self,
        processes: int | None = None,
        seed=0,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.processes = 1 if processes is None else max(1, int(processes))
        self.seed = seed
        self.instrumentation = instrumentation
        self._cache: dict[str, object] = {}

    # -- cache ----------------------------------------------------------
    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- execution ------------------------------------------------------
    def _spawn(self, seed, count: int) -> list[np.random.SeedSequence]:
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        return root.spawn(count)

    def map(self, fn, param_list, *, seed=None) -> list:
        """Run ``fn(params, rng)`` for every params dict, in order.

        Results come back positionally aligned with ``param_list``.
        Identical trials (same function, parameters and root seed) are
        served from the content-keyed cache.
        """
        params_seq = list(param_list)
        if not params_seq:
            return []
        seeds = self._spawn(self.seed if seed is None else seed, len(params_seq))
        keys = [
            content_key(fn, params, child)
            for params, child in zip(params_seq, seeds)
        ]
        results: list = [None] * len(params_seq)
        misses: list[int] = []
        for index, key in enumerate(keys):
            if key in self._cache:
                results[index] = self._cache[key]
                if self.instrumentation is not None:
                    self.instrumentation.record_runner_trial(cached=True)
            else:
                misses.append(index)

        if misses:
            if self.processes > 1 and len(misses) > 1:
                workers = min(self.processes, len(misses))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        pool.submit(_call_trial, fn, params_seq[i], seeds[i])
                        for i in misses
                    ]
                    for index, future in zip(misses, futures):
                        started = time.perf_counter()
                        results[index] = future.result()
                        self._record_miss(time.perf_counter() - started)
            else:
                for index in misses:
                    started = time.perf_counter()
                    results[index] = _call_trial(
                        fn, params_seq[index], seeds[index]
                    )
                    self._record_miss(time.perf_counter() - started)
            for index in misses:
                self._cache[keys[index]] = results[index]
        return results

    def run_fleet(self, simulator, cells, *, seed=None) -> list:
        """Run a fleet grid through the runner's content-keyed cache.

        The fleet analogue of :meth:`map`: ``simulator`` is a
        :class:`~repro.simulation.fleet.FleetSimulator` and ``cells``
        its grid.  Cells whose content (topology token, plan, trace,
        failure model) and spawned seed match a previous run are served
        from cache; only the missed cells go through one
        ``simulator.run`` — seeded with their original spawn children,
        so results are independent of the hit/miss split.  The fleet's
        own ``processes`` setting governs parallelism; the runner's
        pool is not involved.
        """
        cell_seq = list(cells)
        if not cell_seq:
            return []
        root = self.seed if seed is None else seed
        seeds = self._spawn(root, len(cell_seq))
        keys = []
        for cell, child in zip(cell_seq, seeds):
            digest = hashlib.sha256()
            digest.update(b"fleet-cell")
            _fingerprint(cell, digest)
            digest.update(str(child.entropy).encode())
            digest.update(str(child.spawn_key).encode())
            keys.append(digest.hexdigest())
        results: list = [None] * len(cell_seq)
        misses: list[int] = []
        for index, key in enumerate(keys):
            if key in self._cache:
                results[index] = self._cache[key]
                if self.instrumentation is not None:
                    self.instrumentation.record_runner_trial(cached=True)
            else:
                misses.append(index)
        if misses:
            started = time.perf_counter()
            reports = simulator.run_cells_seeded(
                [cell_seq[i] for i in misses], [seeds[i] for i in misses]
            )
            seconds = (time.perf_counter() - started) / len(misses)
            for index, report in zip(misses, reports):
                results[index] = report
                self._cache[keys[index]] = report
                self._record_miss(seconds)
        return results

    def _record_miss(self, seconds: float) -> None:
        if self.instrumentation is not None:
            self.instrumentation.record_runner_trial(
                cached=False, seconds=seconds
            )


def run_trials(fn, param_list, *, seed=0, processes: int | None = None) -> list:
    """One-shot convenience wrapper around :class:`ExperimentRunner`."""
    return ExperimentRunner(processes=processes, seed=seed).map(
        fn, param_list, seed=seed
    )
