"""Shared plumbing for the experiment modules.

The paper's evaluation installs a plan once and runs it over many
epochs ("install-once, run-many-times usage", §5), measuring the
average per-query energy (trigger + collection) and the average
accuracy against ground truth.  :func:`evaluate_plan` implements that
loop; :func:`evaluate_planner` plans first from a training trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.trace import Trace
from repro.network.energy import EnergyModel
from repro.network.topology import Topology
from repro.obs import Instrumentation
from repro.plans.plan import QueryPlan
from repro.planners.base import Planner, PlanningContext
from repro.query.accuracy import accuracy
from repro.simulation.runtime import Simulator


@dataclass
class Evaluation:
    """Averaged outcome of running one plan over an evaluation trace."""

    algorithm: str
    mean_accuracy: float
    mean_energy_mj: float
    static_cost_mj: float
    plan: QueryPlan | None = None

    def row(self, **extra) -> dict:
        base = {
            "algorithm": self.algorithm,
            "accuracy": self.mean_accuracy,
            "energy_mj": self.mean_energy_mj,
        }
        base.update(extra)
        return base


def evaluate_plan(
    name: str,
    plan: QueryPlan,
    topology: Topology,
    energy: EnergyModel,
    eval_trace: Trace,
    k: int,
    instrumentation: Instrumentation | None = None,
) -> Evaluation:
    """Run an installed plan over every epoch of the evaluation trace."""
    simulator = Simulator(topology, energy, instrumentation=instrumentation)
    accuracies = []
    energies = []
    for readings in eval_trace:
        report = simulator.run_collection(plan, readings)
        answer_nodes = {node for __, node in report.returned[:k]}
        accuracies.append(accuracy(answer_nodes, readings, k))
        energies.append(report.energy_mj)
    return Evaluation(
        algorithm=name,
        mean_accuracy=float(np.mean(accuracies)),
        mean_energy_mj=float(np.mean(energies)),
        static_cost_mj=plan.static_cost(energy),
        plan=plan,
    )


def evaluate_planner(
    planner: Planner,
    topology: Topology,
    energy: EnergyModel,
    train_trace: Trace,
    eval_trace: Trace,
    k: int,
    budget: float,
    instrumentation: Instrumentation | None = None,
) -> Evaluation:
    """Plan from the training trace, then evaluate the plan."""
    context = PlanningContext(
        topology=topology,
        energy=energy,
        samples=train_trace.sample_matrix(k),
        k=k,
        budget=budget,
        instrumentation=instrumentation,
    )
    plan = planner.plan(context)
    return evaluate_plan(
        planner.name, plan, topology, energy, eval_trace, k,
        instrumentation=instrumentation,
    )


def budget_sweep(base: float, steps: int, factor: float = 1.6) -> list[float]:
    """A geometric ladder of energy budgets starting at ``base``."""
    return [base * factor**i for i in range(steps)]
