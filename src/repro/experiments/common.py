"""Shared plumbing for the experiment modules.

The paper's evaluation installs a plan once and runs it over many
epochs ("install-once, run-many-times usage", §5), measuring the
average per-query energy (trigger + collection) and the average
accuracy against ground truth.  :func:`evaluate_plan` implements that
loop; :func:`evaluate_planner` plans first from a training trace.

Two execution engines are available (see DESIGN.md):

- ``engine="batch"`` (default) replays the whole evaluation trace in
  one vectorized pass through
  :class:`~repro.simulation.batch.BatchSimulator`;
- ``engine="scalar"`` is the epoch-by-epoch reference oracle through
  :class:`~repro.simulation.runtime.Simulator`.

Both produce identical node sets and energies to float round-off
(equivalence-tested), including failure retries under a shared seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.trace import Trace
from repro.errors import PlanError
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.network.topology import Topology
from repro.obs import Instrumentation
from repro.plans.plan import QueryPlan
from repro.planners.base import Planner, PlanningContext
from repro.query.accuracy import accuracy, batch_accuracy
from repro.simulation.batch import BatchSimulator
from repro.simulation.runtime import Simulator


@dataclass
class Evaluation:
    """Averaged outcome of running one plan over an evaluation trace."""

    algorithm: str
    mean_accuracy: float
    mean_energy_mj: float
    static_cost_mj: float
    plan: QueryPlan | None = None

    def row(self, **extra) -> dict:
        base = {
            "algorithm": self.algorithm,
            "accuracy": self.mean_accuracy,
            "energy_mj": self.mean_energy_mj,
        }
        base.update(extra)
        return base


def _resolve_rng(rng, seed) -> np.random.Generator:
    """One randomness source for the failure draws of an evaluation.

    Accepting either an explicit generator or a seed (but not both)
    makes failure-model experiments reproducible; the previous
    behaviour — a fresh unseeded ``default_rng`` per evaluation — is
    kept only when neither is given.
    """
    if rng is not None and seed is not None:
        raise PlanError("pass either rng or seed, not both")
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


def evaluate_plan(
    name: str,
    plan: QueryPlan,
    topology: Topology,
    energy: EnergyModel,
    eval_trace: Trace,
    k: int,
    instrumentation: Instrumentation | None = None,
    *,
    failures: LinkFailureModel | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    engine: str = "batch",
) -> Evaluation:
    """Run an installed plan over every epoch of the evaluation trace."""
    if engine not in ("batch", "scalar"):
        raise PlanError(f"unknown evaluation engine {engine!r}")
    generator = _resolve_rng(rng, seed)
    if engine == "batch":
        simulator = BatchSimulator(
            topology, energy, failures=failures, rng=generator,
            instrumentation=instrumentation,
        )
        report = simulator.run_collection(plan, eval_trace.values)
        accuracies = batch_accuracy(
            report.top_k_nodes(k), eval_trace.values, k
        )
        energies = report.energy_mj
    else:
        simulator = Simulator(
            topology, energy, failures=failures, rng=generator,
            instrumentation=instrumentation,
        )
        accuracies = []
        energies = []
        for readings in eval_trace:
            report = simulator.run_collection(plan, readings)
            accuracies.append(accuracy(report.top_k_nodes(k), readings, k))
            energies.append(report.energy_mj)
    return Evaluation(
        algorithm=name,
        mean_accuracy=float(np.mean(accuracies)),
        mean_energy_mj=float(np.mean(energies)),
        static_cost_mj=plan.static_cost(energy),
        plan=plan,
    )


def evaluate_planner(
    planner: Planner,
    topology: Topology,
    energy: EnergyModel,
    train_trace: Trace,
    eval_trace: Trace,
    k: int,
    budget: float,
    instrumentation: Instrumentation | None = None,
    *,
    failures: LinkFailureModel | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    engine: str = "batch",
) -> Evaluation:
    """Plan from the training trace, then evaluate the plan."""
    context = PlanningContext(
        topology=topology,
        energy=energy,
        samples=train_trace.sample_matrix(k),
        k=k,
        budget=budget,
        failures=failures,
        instrumentation=instrumentation,
    )
    plan = planner.plan(context)
    return evaluate_plan(
        planner.name, plan, topology, energy, eval_trace, k,
        instrumentation=instrumentation,
        failures=failures, rng=rng, seed=seed, engine=engine,
    )


def budget_sweep(base: float, steps: int, factor: float = 1.6) -> list[float]:
    """A geometric ladder of energy budgets starting at ``base``."""
    return [base * factor**i for i in range(steps)]
