"""Figure 3: energy cost vs accuracy for all algorithms.

Independent-Gaussian workload (means and variances from small ranges),
k = 10.  Approximate algorithms (Greedy, LP−LF, LP+LF) sweep the energy
budget; exact algorithms (ORACLE, NAIVE-k, and the discussed NAIVE-1)
sweep the target ``j <= k`` instead and report accuracy ``j/k`` at
their measured cost.

Paper shape to reproduce: NAIVE-k far right (most expensive); the
approximate algorithms reach high accuracy at a fraction of its cost,
ordered Greedy < LP−LF < LP+LF; ORACLE is the unreachable left
frontier; NAIVE-1's cost at k=1 already matches NAIVE-k at k=50.

The (planner, budget) sweep is a bag of independent trials routed
through :class:`~repro.experiments.runner.ExperimentRunner`
(deterministic per-trial seeds, cached, optionally parallel), and the
replay loops use the batched simulation engine; ``engine="scalar"``
reruns the original epoch-by-epoch loops for reference timing.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.gaussian import random_gaussian_field
from repro.experiments.common import budget_sweep, evaluate_plan, evaluate_planner
from repro.experiments.reporting import print_table
from repro.experiments.runner import ExperimentRunner
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.greedy import GreedyPlanner
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.planners.oracle import OraclePlanner
from repro.query.accuracy import accuracy as accuracy_metric
from repro.query.accuracy import batch_accuracy
from repro.simulation.batch import BatchSimulator
from repro.simulation.fleet import FleetCell, FleetSimulator
from repro.simulation.runtime import Simulator


def _planner_trial(params: dict, rng: np.random.Generator) -> dict:
    """One (planner, budget) point, runnable in a worker process.

    LP planners arrive with a precomputed ``plan`` (the whole budget
    ladder is solved in one warm-started parametric sweep before the
    trials fan out), so their trials are pure replays; planners without
    sweep support plan inside the trial as before.
    """
    if "plan" in params:
        evaluation = evaluate_plan(
            params["name"],
            params["plan"],
            params["topology"],
            params["energy"],
            params["eval_trace"],
            params["k"],
            instrumentation=params.get("instrumentation"),
            rng=rng,
            engine=params["engine"],
        )
    else:
        evaluation = evaluate_planner(
            params["planner"],
            params["topology"],
            params["energy"],
            params["train"],
            params["eval_trace"],
            params["k"],
            params["budget"],
            instrumentation=params.get("instrumentation"),
            rng=rng,
            engine=params["engine"],
        )
    return evaluation.row(budget_mj=round(params["budget"], 2))


def run(
    seed: int = 2006,
    n: int = 60,
    k: int = 10,
    num_samples: int = 25,
    eval_epochs: int = 20,
    budget_steps: int = 7,
    variance_scale: float = 9.0,
    include_naive_one: bool = False,
    instrumentation=None,
    engine: str = "batch",
    processes: int | None = None,
    runner: ExperimentRunner | None = None,
) -> list[dict]:
    """Regenerate the Figure 3 point cloud; one row per plotted point.

    ``instrumentation`` (an optional :class:`~repro.obs.Instrumentation`)
    collects per-planner LP solve-time histograms and per-collection
    energy counters across the whole sweep (inline trials only — it
    cannot cross process boundaries, so it is dropped when
    ``processes > 1``).  ``engine`` selects the batched replay path
    (default), the scalar reference, or ``"fleet"`` — which evaluates
    every precomputed LP plan replay as one
    :class:`~repro.simulation.fleet.FleetSimulator` grid (identical
    rows to ``"batch"``); ``processes``/``runner`` control trial
    parallelism and result caching.
    """
    fleet = engine == "fleet"
    trial_engine = "batch" if fleet else engine
    rng = np.random.default_rng(seed)
    energy = EnergyModel.mica2()
    topology = random_topology(n, rng=rng)
    field = random_gaussian_field(n, rng).scaled_variance(variance_scale)
    train = field.trace(num_samples, rng)
    eval_trace = field.trace(eval_epochs, rng)

    if runner is None:
        runner = ExperimentRunner(processes=processes, seed=seed)
    parallel = runner.processes > 1

    base_budget = energy.message_cost(1) * 4
    budgets = budget_sweep(base_budget, budget_steps)
    obs_extra = (
        {}
        if parallel or instrumentation is None
        else {"instrumentation": instrumentation}
    )
    trial_params = [
        {
            "planner": GreedyPlanner(),
            "topology": topology,
            "energy": energy,
            "train": train,
            "eval_trace": eval_trace,
            "k": k,
            "budget": budget,
            "engine": trial_engine,
            **obs_extra,
        }
        for budget in budgets
    ]
    # the LP planners solve the whole budget ladder as one parametric
    # sweep (compile once, warm-start each member); the trials then
    # just replay the precomputed plans
    samples = train.sample_matrix(k)
    replays: list[tuple[str, object, float]] = []
    for planner in (LPNoLFPlanner(), LPLFPlanner()):
        context = PlanningContext(
            topology=topology,
            energy=energy,
            samples=samples,
            k=k,
            budget=budgets[0],
            instrumentation=None if parallel else instrumentation,
        )
        plans = planner.plan_for_budgets(context, budgets)
        if fleet:
            replays.extend(
                (planner.name, plan, budget)
                for budget, plan in zip(budgets, plans)
            )
            continue
        trial_params.extend(
            {
                "name": planner.name,
                "plan": plan,
                "topology": topology,
                "energy": energy,
                "eval_trace": eval_trace,
                "k": k,
                "budget": budget,
                "engine": trial_engine,
                **obs_extra,
            }
            for budget, plan in zip(budgets, plans)
        )
    rows: list[dict] = list(runner.map(_planner_trial, trial_params, seed=seed))
    if replays:
        rows.extend(
            _replay_fleet(
                replays, topology, energy, eval_trace, k,
                None if parallel else instrumentation,
                runner.processes,
            )
        )

    # exact algorithms: sweep j and report accuracy j / k
    if engine in ("batch", "fleet"):
        rows.extend(
            _exact_sweep_batch(
                topology, energy, eval_trace, k, include_naive_one,
                instrumentation,
            )
        )
    else:
        rows.extend(
            _exact_sweep_scalar(
                topology, energy, eval_trace, k, include_naive_one,
                instrumentation,
            )
        )
    return rows


def _replay_fleet(
    replays, topology, energy, eval_trace, k, instrumentation, processes
) -> list[dict]:
    """All precomputed LP plan replays as one fleet grid.

    One :class:`~repro.simulation.fleet.FleetSimulator` pass evaluates
    every (planner, budget) replay cell — plans sharing bandwidths run
    through one blocked tree recursion.  No failure models are attached,
    so the rows are *identical* to the per-trial batched path.
    """
    cells = [
        FleetCell(topology, plan, eval_trace.values, label=name)
        for name, plan, _ in replays
    ]
    simulator = FleetSimulator(
        energy, processes=processes, instrumentation=instrumentation
    )
    rows = []
    for (name, __, budget), report in zip(
        replays, simulator.run(cells, seed=0)
    ):
        accuracies = batch_accuracy(
            report.top_k_nodes(k), eval_trace.values, k
        )
        rows.append(
            {
                "algorithm": name,
                "accuracy": float(np.mean(accuracies)),
                "energy_mj": float(np.mean(report.energy_mj)),
                "budget_mj": round(budget, 2),
            }
        )
    return rows


def _exact_sweep_batch(
    topology, energy, eval_trace, k, include_naive_one, instrumentation
) -> list[dict]:
    """The ORACLE / NAIVE sweeps on the batched engine.

    ORACLE replans every epoch, so its energies come from one
    vectorized plan sweep per ``j`` instead of per-epoch simulations;
    NAIVE-k replays one installed plan per ``j``.  NAIVE-1's pipelined
    protocol has no batch formulation and stays scalar.
    """
    simulator = BatchSimulator(topology, energy, instrumentation=instrumentation)
    scalar = Simulator(topology, energy, instrumentation=instrumentation)
    oracle = OraclePlanner()
    values = eval_trace.values
    rows: list[dict] = []
    for j in range(1, k + 1):
        plans = [
            oracle.plan_for_readings(topology, readings, j)
            for readings in values
        ]
        oracle_costs = simulator.run_plan_sweep(plans)
        rows.append(
            {
                "algorithm": "oracle",
                "accuracy": j / k,
                "energy_mj": float(np.mean(oracle_costs)),
                "budget_mj": "",
            }
        )

        report = simulator.run_naive_k(values, j)
        naive_acc = batch_accuracy(report.top_k_nodes(j), values, j) * j / k
        rows.append(
            {
                "algorithm": "naive-k",
                "accuracy": float(np.mean(naive_acc)),
                "energy_mj": float(np.mean(report.energy_mj)),
                "budget_mj": "",
            }
        )

        if include_naive_one:
            one_costs = [
                scalar.run_naive_one(readings, j).energy_mj
                for readings in values
            ]
            rows.append(
                {
                    "algorithm": "naive-1",
                    "accuracy": j / k,
                    "energy_mj": float(np.mean(one_costs)),
                    "budget_mj": "",
                }
            )
    return rows


def _exact_sweep_scalar(
    topology, energy, eval_trace, k, include_naive_one, instrumentation
) -> list[dict]:
    """The original per-epoch ORACLE / NAIVE loops (reference path)."""
    simulator = Simulator(topology, energy, instrumentation=instrumentation)
    oracle = OraclePlanner()
    rows: list[dict] = []
    for j in range(1, k + 1):
        oracle_costs = []
        for readings in eval_trace:
            plan = oracle.plan_for_readings(topology, readings, j)
            oracle_costs.append(
                simulator.run_collection(plan, readings).energy_mj
            )
        rows.append(
            {
                "algorithm": "oracle",
                "accuracy": j / k,
                "energy_mj": float(np.mean(oracle_costs)),
                "budget_mj": "",
            }
        )

        naive_costs = []
        naive_acc = []
        for readings in eval_trace:
            report = simulator.run_naive_k(readings, j)
            naive_costs.append(report.energy_mj)
            naive_acc.append(
                accuracy_metric(report.top_k_nodes(j), readings, j) * j / k
            )
        rows.append(
            {
                "algorithm": "naive-k",
                "accuracy": float(np.mean(naive_acc)),
                "energy_mj": float(np.mean(naive_costs)),
                "budget_mj": "",
            }
        )

        if include_naive_one:
            one_costs = [
                simulator.run_naive_one(readings, j).energy_mj
                for readings in eval_trace
            ]
            rows.append(
                {
                    "algorithm": "naive-1",
                    "accuracy": j / k,
                    "energy_mj": float(np.mean(one_costs)),
                    "budget_mj": "",
                }
            )
    return rows


def main() -> list[dict]:
    rows = run()
    print_table(
        rows,
        columns=["algorithm", "budget_mj", "energy_mj", "accuracy"],
        title="Figure 3: comparison of algorithms (energy vs accuracy)",
    )
    return rows


if __name__ == "__main__":
    main()
