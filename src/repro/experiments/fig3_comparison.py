"""Figure 3: energy cost vs accuracy for all algorithms.

Independent-Gaussian workload (means and variances from small ranges),
k = 10.  Approximate algorithms (Greedy, LP−LF, LP+LF) sweep the energy
budget; exact algorithms (ORACLE, NAIVE-k, and the discussed NAIVE-1)
sweep the target ``j <= k`` instead and report accuracy ``j/k`` at
their measured cost.

Paper shape to reproduce: NAIVE-k far right (most expensive); the
approximate algorithms reach high accuracy at a fraction of its cost,
ordered Greedy < LP−LF < LP+LF; ORACLE is the unreachable left
frontier; NAIVE-1's cost at k=1 already matches NAIVE-k at k=50.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.gaussian import random_gaussian_field
from repro.experiments.common import budget_sweep, evaluate_plan, evaluate_planner
from repro.experiments.reporting import print_table
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.greedy import GreedyPlanner
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.planners.oracle import OraclePlanner
from repro.query.accuracy import accuracy as accuracy_metric
from repro.simulation.runtime import Simulator


def run(
    seed: int = 2006,
    n: int = 60,
    k: int = 10,
    num_samples: int = 25,
    eval_epochs: int = 20,
    budget_steps: int = 7,
    variance_scale: float = 9.0,
    include_naive_one: bool = False,
    instrumentation=None,
) -> list[dict]:
    """Regenerate the Figure 3 point cloud; one row per plotted point.

    ``instrumentation`` (an optional :class:`~repro.obs.Instrumentation`)
    collects per-planner LP solve-time histograms and per-collection
    energy counters across the whole sweep.
    """
    rng = np.random.default_rng(seed)
    energy = EnergyModel.mica2()
    topology = random_topology(n, rng=rng)
    field = random_gaussian_field(n, rng).scaled_variance(variance_scale)
    train = field.trace(num_samples, rng)
    eval_trace = field.trace(eval_epochs, rng)

    rows: list[dict] = []

    base_budget = energy.message_cost(1) * 4
    budgets = budget_sweep(base_budget, budget_steps)
    planners = [GreedyPlanner(), LPNoLFPlanner(), LPLFPlanner()]
    for planner in planners:
        for budget in budgets:
            evaluation = evaluate_planner(
                planner, topology, energy, train, eval_trace, k, budget,
                instrumentation=instrumentation,
            )
            rows.append(evaluation.row(budget_mj=round(budget, 2)))

    # exact algorithms: sweep j and report accuracy j / k
    simulator = Simulator(topology, energy, instrumentation=instrumentation)
    oracle = OraclePlanner()
    for j in range(1, k + 1):
        oracle_costs = []
        for readings in eval_trace:
            plan = oracle.plan_for_readings(topology, readings, j)
            oracle_costs.append(
                simulator.run_collection(plan, readings).energy_mj
            )
        rows.append(
            {
                "algorithm": "oracle",
                "accuracy": j / k,
                "energy_mj": float(np.mean(oracle_costs)),
                "budget_mj": "",
            }
        )

        naive_costs = []
        naive_acc = []
        for readings in eval_trace:
            report = simulator.run_naive_k(readings, j)
            naive_costs.append(report.energy_mj)
            answer = {node for __, node in report.returned[:j]}
            naive_acc.append(
                accuracy_metric(answer, readings, j) * j / k
            )
        rows.append(
            {
                "algorithm": "naive-k",
                "accuracy": float(np.mean(naive_acc)),
                "energy_mj": float(np.mean(naive_costs)),
                "budget_mj": "",
            }
        )

        if include_naive_one:
            one_costs = [
                simulator.run_naive_one(readings, j).energy_mj
                for readings in eval_trace
            ]
            rows.append(
                {
                    "algorithm": "naive-1",
                    "accuracy": j / k,
                    "energy_mj": float(np.mean(one_costs)),
                    "budget_mj": "",
                }
            )
    return rows


def main() -> list[dict]:
    rows = run()
    print_table(
        rows,
        columns=["algorithm", "budget_mj", "energy_mj", "accuracy"],
        title="Figure 3: comparison of algorithms (energy vs accuracy)",
    )
    return rows


if __name__ == "__main__":
    main()
