"""LP solve-time study (§5 "Other Results").

The paper reports CPLEX 8.1 timings on a 250(?) MHz desktop: usually a
few seconds, slower near budgets where many plans tie.  This experiment
measures build+solve wall time of each PROSPECTOR formulation across
network and sample sizes on our HiGHS backend.
"""

from __future__ import annotations

import time

import numpy as np

from repro.datagen.gaussian import random_gaussian_field
from repro.experiments.reporting import print_table
from repro.lp.backend import get_backend
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.planners.proof import ProofPlanner


def run(
    seed: int = 2006,
    node_counts: tuple[int, ...] = (20, 40, 60),
    sample_counts: tuple[int, ...] = (10, 25),
    k: int = 10,
    include_proof: bool = True,
    backend: str | None = None,
    instrumentation=None,
) -> list[dict]:
    """One row per (formulation, n, m) combination.

    ``backend`` is a registered solver name (see
    :func:`repro.lp.backend.available_backends`); the default is the
    production HiGHS backend.
    """
    rng = np.random.default_rng(seed)
    energy = EnergyModel.mica2()
    solver = get_backend(backend, instrumentation=instrumentation)
    rows: list[dict] = []
    for n in node_counts:
        # keep sparse instances connectable: widen the radio range as
        # the node count shrinks
        radio_range = max(25.0, 200.0 / n**0.5)
        topology = random_topology(n, rng=rng, radio_range=radio_range)
        field = random_gaussian_field(n, rng).scaled_variance(4.0)
        for m in sample_counts:
            samples = field.trace(m, rng).sample_matrix(k)
            budget = energy.message_cost(1) * 2 * k
            context = PlanningContext(topology, energy, samples, k, budget)
            planners = [LPNoLFPlanner(), LPLFPlanner()]
            if include_proof:
                planners.append(ProofPlanner())
            for planner in planners:
                if isinstance(planner, ProofPlanner):
                    context_p = PlanningContext(
                        topology, energy, samples, k,
                        budget=planner.minimum_cost(context) * 1.5,
                    )
                else:
                    context_p = context
                start = time.perf_counter()
                model, *__ = planner.build_model(context_p)
                build_seconds = time.perf_counter() - start
                solution = model.solve(solver)
                # the fast-path compiler, cold (fresh planner => empty
                # replan cache), produces the same arrays directly
                start = time.perf_counter()
                planner.compile_fast(context_p)
                fastbuild_seconds = time.perf_counter() - start
                rows.append(
                    {
                        "formulation": planner.name,
                        "n": n,
                        "m": m,
                        "variables": model.num_variables,
                        "constraints": model.num_constraints,
                        "build_s": build_seconds,
                        "fastbuild_s": fastbuild_seconds,
                        "build_speedup": build_seconds
                        / max(fastbuild_seconds, 1e-12),
                        "solve_s": solution.stats.wall_seconds,
                    }
                )
    return rows


def main() -> list[dict]:
    rows = run()
    print_table(
        rows,
        columns=[
            "formulation", "n", "m", "variables", "constraints",
            "build_s", "fastbuild_s", "build_speedup", "solve_s",
        ],
        title="LP solve-time study",
    )
    return rows


if __name__ == "__main__":
    main()
