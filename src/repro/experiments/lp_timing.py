"""LP solve-time study (§5 "Other Results").

The paper reports CPLEX 8.1 timings on a 250(?) MHz desktop: usually a
few seconds, slower near budgets where many plans tie.  This experiment
measures build+solve wall time of each PROSPECTOR formulation across
network and sample sizes on our HiGHS backend, plus the parametric
budget-sweep columns: ``sweep_s`` is one compile + ``solve_sweep`` over
an 8-budget ladder, ``sweep_speedup`` is how much faster that is than
compiling and solving each budget cold.  (HiGHS has no warm-start entry
point, so its sweep win is the shared compile; the pure simplex backend
adds dual-simplex warm starts — see ``benchmarks/bench_lpsweep.py``.)
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.datagen.gaussian import random_gaussian_field
from repro.experiments.reporting import print_table
from repro.lp.backend import get_backend
from repro.lp.fastbuild import (
    compile_lp_lf,
    compile_lp_lf_parametric,
    compile_lp_no_lf,
    compile_lp_no_lf_parametric,
    compile_proof_parametric,
)
from repro.network.builder import random_topology
from repro.network.energy import EnergyModel
from repro.planners.base import PlanningContext
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.planners.proof import ProofPlanner

_SWEEP_FACTORS = (0.7, 0.85, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0)


def _parametric_for(planner, context):
    """The planner's formulation as a :class:`ParametricForm`."""
    if isinstance(planner, ProofPlanner):
        reserve = planner._reserve(context)
        acquisition = planner._acquisition_total(context)
        return compile_proof_parametric(
            context,
            budget_rhs_of=lambda budget: budget - reserve - acquisition,
        )
    if isinstance(planner, LPLFPlanner):
        return compile_lp_lf_parametric(context)
    return compile_lp_no_lf_parametric(context)


def _cold_compile(planner, context):
    """One cold compile (no replan cache) of the planner's formulation."""
    if isinstance(planner, ProofPlanner):
        return planner.compile_fast(context)
    if isinstance(planner, LPLFPlanner):
        return compile_lp_lf(context)
    return compile_lp_no_lf(context)


def _sweep_timings(planner, context, solver) -> tuple[float, float]:
    """(one-compile sweep seconds, per-budget cold seconds)."""
    budgets = [context.budget * factor for factor in _SWEEP_FACTORS]
    start = time.perf_counter()
    parametric = _parametric_for(planner, context)
    solver.solve_sweep(parametric, parametric.rhs_values(budgets))
    sweep_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for budget in budgets:
        member = replace(context, budget=budget)
        compiled = _cold_compile(planner, member)
        solver.solve_form(compiled.form, compiled.name)
    cold_seconds = time.perf_counter() - start
    return sweep_seconds, cold_seconds


def run(
    seed: int = 2006,
    node_counts: tuple[int, ...] = (20, 40, 60),
    sample_counts: tuple[int, ...] = (10, 25),
    k: int = 10,
    include_proof: bool = True,
    backend: str | None = None,
    instrumentation=None,
) -> list[dict]:
    """One row per (formulation, n, m) combination.

    ``backend`` is a registered solver name (see
    :func:`repro.lp.backend.available_backends`); the default is the
    production HiGHS backend.
    """
    rng = np.random.default_rng(seed)
    energy = EnergyModel.mica2()
    solver = get_backend(backend, instrumentation=instrumentation)
    rows: list[dict] = []
    for n in node_counts:
        # keep sparse instances connectable: widen the radio range as
        # the node count shrinks
        radio_range = max(25.0, 200.0 / n**0.5)
        topology = random_topology(n, rng=rng, radio_range=radio_range)
        field = random_gaussian_field(n, rng).scaled_variance(4.0)
        for m in sample_counts:
            samples = field.trace(m, rng).sample_matrix(k)
            budget = energy.message_cost(1) * 2 * k
            context = PlanningContext(topology, energy, samples, k, budget)
            planners = [LPNoLFPlanner(), LPLFPlanner()]
            if include_proof:
                planners.append(ProofPlanner())
            for planner in planners:
                if isinstance(planner, ProofPlanner):
                    context_p = PlanningContext(
                        topology, energy, samples, k,
                        budget=planner.minimum_cost(context) * 1.5,
                    )
                else:
                    context_p = context
                start = time.perf_counter()
                model, *__ = planner.build_model(context_p)
                build_seconds = time.perf_counter() - start
                solution = model.solve(solver)
                # the fast-path compiler, cold (fresh planner => empty
                # replan cache), produces the same arrays directly
                start = time.perf_counter()
                planner.compile_fast(context_p)
                fastbuild_seconds = time.perf_counter() - start
                sweep_seconds, cold_seconds = _sweep_timings(
                    planner, context_p, solver
                )
                rows.append(
                    {
                        "formulation": planner.name,
                        "n": n,
                        "m": m,
                        "variables": model.num_variables,
                        "constraints": model.num_constraints,
                        "build_s": build_seconds,
                        "fastbuild_s": fastbuild_seconds,
                        "build_speedup": build_seconds
                        / max(fastbuild_seconds, 1e-12),
                        "solve_s": solution.stats.wall_seconds,
                        "sweep_s": sweep_seconds,
                        "sweep_speedup": cold_seconds
                        / max(sweep_seconds, 1e-12),
                    }
                )
    return rows


def main() -> list[dict]:
    rows = run()
    print_table(
        rows,
        columns=[
            "formulation", "n", "m", "variables", "constraints",
            "build_s", "fastbuild_s", "build_speedup", "solve_s",
            "sweep_s", "sweep_speedup",
        ],
        title="LP solve-time study",
    )
    return rows


if __name__ == "__main__":
    main()
