"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig3
    python -m repro run fig5 --out /tmp/fig5.txt
    python -m repro run all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.experiments import (
    fig3_comparison,
    fig4_variance,
    fig5_zones,
    fig7_num_zones,
    fig8_exact,
    fig9_intel,
    lp_timing,
    sample_size,
)
from repro.experiments.reporting import ascii_chart, format_table

EXPERIMENTS: dict[str, tuple[Callable[[], list[dict]], str]] = {
    "fig3": (fig3_comparison.run, "Figure 3: comparison of algorithms"),
    "fig4": (fig4_variance.run, "Figure 4: effect of variance"),
    "fig5": (fig5_zones.run, "Figure 5: contention zones"),
    "fig7": (fig7_num_zones.run, "Figure 7: varying the number of zones"),
    "fig8": (fig8_exact.run, "Figure 8: PROSPECTOR-Exact phase breakdown"),
    "fig9": (fig9_intel.run, "Figure 9: Intel Lab surrogate"),
    "samples": (sample_size.run, "Sample-size study (§5 'Other Results')"),
    "lptime": (lp_timing.run, "LP solve-time study (§5 'Other Results')"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Sampling-Based Approach to Optimizing"
            " Top-k Queries in Sensor Networks' (ICDE 2006)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (see 'list')",
    )
    run.add_argument(
        "--out",
        default=None,
        help="also write the table(s) to this file",
    )
    run.add_argument(
        "--chart",
        action="store_true",
        help="append an ASCII accuracy-vs-energy chart when applicable",
    )
    return parser


def _run_one(name: str, chart: bool = False) -> str:
    run_fn, title = EXPERIMENTS[name]
    rows = run_fn()
    text = format_table(rows, title=title)
    if chart:
        numeric = [
            r for r in rows
            if isinstance(r.get("energy_mj"), (int, float))
            and isinstance(r.get("accuracy"), (int, float))
        ]
        if numeric:
            series = "algorithm" if "algorithm" in numeric[0] else None
            text += "\n\n" + ascii_chart(
                numeric, x="energy_mj", y="accuracy", series=series,
                title=f"{title} (chart)",
            )
    return text


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (__, title) in sorted(EXPERIMENTS.items()):
            print(f"{name.ljust(width)}  {title}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    outputs = []
    for name in names:
        text = _run_one(name, chart=args.chart)
        print(text)
        print()
        outputs.append(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write("\n\n".join(outputs) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
