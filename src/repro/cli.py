"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig3
    python -m repro run fig5 --out /tmp/fig5.txt
    python -m repro run all
    python -m repro stats --demo
    python -m repro stats --demo --json --out /tmp/stats.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.experiments import (
    fig3_comparison,
    fig4_variance,
    fig5_zones,
    fig7_num_zones,
    fig8_exact,
    fig9_intel,
    lp_timing,
    sample_size,
)
from repro.experiments.reporting import ascii_chart, format_table

EXPERIMENTS: dict[str, tuple[Callable[[], list[dict]], str]] = {
    "fig3": (fig3_comparison.run, "Figure 3: comparison of algorithms"),
    "fig4": (fig4_variance.run, "Figure 4: effect of variance"),
    "fig5": (fig5_zones.run, "Figure 5: contention zones"),
    "fig7": (fig7_num_zones.run, "Figure 7: varying the number of zones"),
    "fig8": (fig8_exact.run, "Figure 8: PROSPECTOR-Exact phase breakdown"),
    "fig9": (fig9_intel.run, "Figure 9: Intel Lab surrogate"),
    "samples": (sample_size.run, "Sample-size study (§5 'Other Results')"),
    "lptime": (lp_timing.run, "LP solve-time study (§5 'Other Results')"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Sampling-Based Approach to Optimizing"
            " Top-k Queries in Sensor Networks' (ICDE 2006)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (see 'list')",
    )
    run.add_argument(
        "--out",
        default=None,
        help="also write the table(s) to this file",
    )
    run.add_argument(
        "--chart",
        action="store_true",
        help="append an ASCII accuracy-vs-energy chart when applicable",
    )

    stats = subparsers.add_parser(
        "stats",
        help="observability report of an instrumented run (repro.obs)",
    )
    stats.add_argument(
        "--demo",
        action="store_true",
        help=(
            "run a small instrumented fig3-style sweep plus an engine"
            " loop and report its metrics"
        ),
    )
    stats.add_argument(
        "--epochs",
        type=int,
        default=12,
        help="engine epochs for the demo run (default 12)",
    )
    stats.add_argument(
        "--nodes",
        type=int,
        default=24,
        help="network size for the demo run (default 24)",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the raw metrics/trace dump as JSON instead of tables",
    )
    stats.add_argument(
        "--out",
        default=None,
        help="also write the report to this file",
    )
    return parser


def _stats_demo(epochs: int = 12, nodes: int = 24, k: int = 5, seed: int = 7):
    """A small instrumented run: a fig3-style planner sweep plus an
    engine explore/exploit loop, all feeding one Instrumentation."""
    import numpy as np

    from repro.datagen.gaussian import random_gaussian_field
    from repro.experiments.common import evaluate_planner
    from repro.network.builder import random_topology
    from repro.network.energy import EnergyModel
    from repro.obs import Instrumentation
    from repro.planners.greedy import GreedyPlanner
    from repro.planners.lp_lf import LPLFPlanner
    from repro.planners.lp_no_lf import LPNoLFPlanner
    from repro.query.engine import EngineConfig, TopKEngine

    obs = Instrumentation()
    rng = np.random.default_rng(seed)
    energy = EnergyModel.mica2()
    # widen the radio range as the network shrinks so sparse demo
    # instances stay connectable (same rule as the lp-timing study)
    radio_range = max(25.0, 200.0 / nodes**0.5)
    topology = random_topology(nodes, rng=rng, radio_range=radio_range)
    field = random_gaussian_field(nodes, rng)
    train = field.trace(8, rng)
    eval_trace = field.trace(4, rng)
    budget = energy.message_cost(1) * 2.5 * k

    for planner in (GreedyPlanner(), LPNoLFPlanner(), LPLFPlanner()):
        evaluate_planner(
            planner, topology, energy, train, eval_trace, k, budget,
            instrumentation=obs,
        )

    engine = TopKEngine(
        topology,
        energy,
        k=k,
        planner=LPLFPlanner(),
        config=EngineConfig(budget_mj=budget, replan_every=3),
        rng=np.random.default_rng(seed + 1),
        instrumentation=obs,
    )
    for __ in range(3):
        engine.feed_sample(field.sample(rng))
    for __ in range(epochs):
        engine.step(field.sample(rng))
    return obs


def _run_one(name: str, chart: bool = False) -> str:
    run_fn, title = EXPERIMENTS[name]
    rows = run_fn()
    text = format_table(rows, title=title)
    if chart:
        numeric = [
            r for r in rows
            if isinstance(r.get("energy_mj"), (int, float))
            and isinstance(r.get("accuracy"), (int, float))
        ]
        if numeric:
            series = "algorithm" if "algorithm" in numeric[0] else None
            text += "\n\n" + ascii_chart(
                numeric, x="energy_mj", y="accuracy", series=series,
                title=f"{title} (chart)",
            )
    return text


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "stats":
        if not args.demo:
            parser.error("stats requires --demo (no live run to report on)")
        from repro.obs import render_report, to_json

        obs = _stats_demo(epochs=args.epochs, nodes=args.nodes)
        text = (
            to_json(obs)
            if args.json
            else render_report(obs, title="repro stats (demo run)")
        )
        print(text)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
        return 0

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (__, title) in sorted(EXPERIMENTS.items()):
            print(f"{name.ljust(width)}  {title}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    outputs = []
    for name in names:
        text = _run_one(name, chart=args.chart)
        print(text)
        print()
        outputs.append(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write("\n\n".join(outputs) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
