"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig3
    python -m repro run fig5 --out /tmp/fig5.txt
    python -m repro run all
    python -m repro stats --demo
    python -m repro stats --demo --json --out /tmp/stats.json
    python -m repro stats --demo --service
    python -m repro trace --demo
    python -m repro trace --demo --service
    python -m repro trace --demo --chrome /tmp/trace.json --prom /tmp/metrics.prom
    python -m repro serve --port 7690
    python -m repro serve --workers 4 --grace 10
    python -m repro serve --protocol v2 --blob-dir /dev/shm/repro-blobs
    python -m repro serve --workers 4 --telemetry-port 7691
    python -m repro top --port 7691
    python -m repro top --url http://127.0.0.1:7691 --once

With ``--service`` the demo runs through a live in-process
multi-tenant service (two sessions sharing one compiled plan), so the
reported spans include ``service.request``, the ``service.cache.*``
counters, and — after a short socket exchange on each protocol — the
``service.wire.*`` negotiated-version counters and bytes-per-request
histograms; ``serve`` exposes the same service over a socket speaking
JSON-lines v1 and (by negotiation) the binary wire protocol v2.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.experiments import (
    fig3_comparison,
    fig4_variance,
    fig5_zones,
    fig7_num_zones,
    fig8_exact,
    fig9_intel,
    lp_timing,
    sample_size,
)
from repro.experiments.reporting import ascii_chart, format_table

EXPERIMENTS: dict[str, tuple[Callable[[], list[dict]], str]] = {
    "fig3": (fig3_comparison.run, "Figure 3: comparison of algorithms"),
    "fig4": (fig4_variance.run, "Figure 4: effect of variance"),
    "fig5": (fig5_zones.run, "Figure 5: contention zones"),
    "fig7": (fig7_num_zones.run, "Figure 7: varying the number of zones"),
    "fig8": (fig8_exact.run, "Figure 8: PROSPECTOR-Exact phase breakdown"),
    "fig9": (fig9_intel.run, "Figure 9: Intel Lab surrogate"),
    "samples": (sample_size.run, "Sample-size study (§5 'Other Results')"),
    "lptime": (lp_timing.run, "LP solve-time study (§5 'Other Results')"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Sampling-Based Approach to Optimizing"
            " Top-k Queries in Sensor Networks' (ICDE 2006)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (see 'list')",
    )
    run.add_argument(
        "--out",
        default=None,
        help="also write the table(s) to this file",
    )
    run.add_argument(
        "--chart",
        action="store_true",
        help="append an ASCII accuracy-vs-energy chart when applicable",
    )

    stats = subparsers.add_parser(
        "stats",
        help="observability report of an instrumented run (repro.obs)",
    )
    stats.add_argument(
        "--demo",
        action="store_true",
        help=(
            "run a small instrumented fig3-style sweep plus an engine"
            " loop and report its metrics"
        ),
    )
    stats.add_argument(
        "--epochs",
        type=int,
        default=12,
        help="engine epochs for the demo run (default 12)",
    )
    stats.add_argument(
        "--nodes",
        type=int,
        default=24,
        help="network size for the demo run (default 24)",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the raw metrics/trace dump as JSON instead of tables",
    )
    stats.add_argument(
        "--out",
        default=None,
        help="also write the report to this file",
    )
    stats.add_argument(
        "--service",
        action="store_true",
        help=(
            "route the demo through a live in-process multi-tenant"
            " service (two sessions, shared plan cache)"
        ),
    )

    trace = subparsers.add_parser(
        "trace",
        help="span tree + energy telemetry of an instrumented demo run",
    )
    trace.add_argument(
        "--demo",
        action="store_true",
        help="run the instrumented demo (same pipeline as 'stats --demo')",
    )
    trace.add_argument(
        "--epochs", type=int, default=12,
        help="engine epochs for the demo run (default 12)",
    )
    trace.add_argument(
        "--nodes", type=int, default=24,
        help="network size for the demo run (default 24)",
    )
    trace.add_argument(
        "--capacity",
        type=float,
        default=200.0,
        help="per-node battery capacity in mJ for lifetime projection"
        " (default 200)",
    )
    trace.add_argument(
        "--chrome",
        default=None,
        help="write a Chrome trace-event JSON (load in ui.perfetto.dev)",
    )
    trace.add_argument(
        "--prom",
        default=None,
        help="write the metrics in Prometheus text exposition format",
    )
    trace.add_argument(
        "--out",
        default=None,
        help="also write the flame/energy report to this file",
    )
    trace.add_argument(
        "--service",
        action="store_true",
        help=(
            "route the demo through a live in-process multi-tenant"
            " service (two sessions, shared plan cache)"
        ),
    )

    serve = subparsers.add_parser(
        "serve",
        help="host the multi-tenant top-k query service (JSON lines/TCP)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default localhost)"
    )
    serve.add_argument(
        "--port", type=int, default=7690,
        help="TCP port (default 7690; 0 picks a free port)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=16,
        help="admission-control cap on concurrent open sessions",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=8,
        help="per-session pending-request bound before shedding",
    )
    serve.add_argument(
        "--session-ttl", type=float, default=300.0,
        help="idle seconds before a session expires (default 300)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help=(
            "worker processes; >1 hosts a sharded service (one port per"
            " worker, sessions routed by content hash)"
        ),
    )
    serve.add_argument(
        "--grace", type=float, default=5.0,
        help=(
            "graceful-shutdown window in seconds: in-flight requests"
            " get their final replies before the listener dies"
        ),
    )
    serve.add_argument(
        "--artifact-dir", default=None,
        help=(
            "directory for the cross-process compiled-plan artifact"
            " store (sharded mode defaults to a private tempdir)"
        ),
    )
    serve.add_argument(
        "--protocol", choices=("v1", "v2", "auto"), default="auto",
        help=(
            "wire protocol policy: 'auto' (default) negotiates binary"
            " v2 per connection and falls back to JSON-lines v1;"
            " 'v2' refuses v1 clients; 'v1' never negotiates"
        ),
    )
    serve.add_argument(
        "--blob-dir", default=None,
        help=(
            "directory for the v2 same-host shared-memory fast path:"
            " large numpy payloads ship as mmap'd blob references"
            " instead of inline bytes"
        ),
    )
    serve.add_argument(
        "--telemetry-port", type=int, default=None,
        help=(
            "also expose the live telemetry HTTP endpoint on this port"
            " (0 picks a free one): /metrics Prometheus exposition,"
            " /trace merged Chrome trace, /exemplars slowest requests,"
            " /json the dashboard 'repro top' polls"
        ),
    )

    top = subparsers.add_parser(
        "top",
        help="live per-shard dashboard of a served fleet (qps/p99/cache)",
    )
    top.add_argument(
        "--url", default=None,
        help="telemetry base URL (e.g. http://127.0.0.1:7691)",
    )
    top.add_argument(
        "--host", default="127.0.0.1",
        help="telemetry host when using --port (default localhost)",
    )
    top.add_argument(
        "--port", type=int, default=None,
        help="telemetry port (what serve --telemetry-port bound)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period in seconds (default 2)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single snapshot and exit (no screen refresh)",
    )
    return parser


def _stats_demo(
    epochs: int = 12,
    nodes: int = 24,
    k: int = 5,
    seed: int = 7,
    capacity_mj: float = 200.0,
):
    """A small instrumented run: a fig3-style planner sweep plus an
    engine explore/exploit loop, all feeding one Instrumentation.

    Returns ``(obs, ledger)``.  The run is wrapped in a root ``run``
    span with contiguous ``phase.*`` child spans (setup, plan sweep,
    engine loop) so the exported span tree shows where the wall time
    went; the engine's simulator charges a per-node
    :class:`~repro.obs.EnergyLedger` whose headline numbers are
    published back into the metrics registry.  The trailing ``None``
    mirrors :func:`_service_demo`'s stats counters slot.
    """
    import numpy as np

    from repro.datagen.gaussian import random_gaussian_field
    from repro.experiments.common import evaluate_planner
    from repro.network.builder import random_topology
    from repro.network.energy import EnergyModel
    from repro.obs import EnergyLedger, Instrumentation
    from repro.planners.greedy import GreedyPlanner
    from repro.planners.lp_lf import LPLFPlanner
    from repro.planners.lp_no_lf import LPNoLFPlanner
    from repro.query.engine import EngineConfig, TopKEngine

    obs = Instrumentation()
    ledger = EnergyLedger(nodes, capacity_mj=capacity_mj)
    with obs.span("run", epochs=epochs, nodes=nodes, k=k):
        with obs.span("phase.setup"):
            rng = np.random.default_rng(seed)
            energy = EnergyModel.mica2()
            # widen the radio range as the network shrinks so sparse
            # demo instances stay connectable (same rule as the
            # lp-timing study)
            radio_range = max(25.0, 200.0 / nodes**0.5)
            topology = random_topology(
                nodes, rng=rng, radio_range=radio_range
            )
            field = random_gaussian_field(nodes, rng)
            train = field.trace(8, rng)
            eval_trace = field.trace(4, rng)
            budget = energy.message_cost(1) * 2.5 * k

        with obs.span("phase.plan_sweep"):
            for planner in (GreedyPlanner(), LPNoLFPlanner(), LPLFPlanner()):
                evaluate_planner(
                    planner, topology, energy, train, eval_trace, k, budget,
                    instrumentation=obs,
                )
            # a warm-started budget sweep, so the span tree shows
            # warm/cold sweep members side by side
            from repro.planners.base import PlanningContext
            from repro.sampling.matrix import SampleMatrix

            sweep_context = PlanningContext(
                topology=topology,
                energy=energy,
                samples=SampleMatrix(train.values, k=k),
                k=k,
                budget=budget,
                instrumentation=obs,
            )
            LPLFPlanner(backend="pure-simplex").plan_for_budgets(
                sweep_context, [budget * f for f in (0.8, 1.0, 1.2)]
            )

        with obs.span("phase.engine"):
            engine = TopKEngine(
                topology,
                energy,
                k=k,
                planner=LPLFPlanner(),
                config=EngineConfig(budget_mj=budget, replan_every=3),
                rng=np.random.default_rng(seed + 1),
                instrumentation=obs,
                ledger=ledger,
            )
            for __ in range(3):
                engine.feed_sample(field.sample(rng))
            for __ in range(epochs):
                engine.step(field.sample(rng))
    ledger.publish(obs)
    return obs, ledger, None


def _service_demo(
    epochs: int = 12,
    nodes: int = 24,
    k: int = 5,
    seed: int = 7,
    capacity_mj: float = 200.0,
    sessions: int = 2,
):
    """The demo run routed through a live in-process service.

    Same shape as :func:`_stats_demo` but multi-tenant: ``sessions``
    clients share one registered topology and one
    :class:`~repro.service.cache.SharedPlanCache`, so the resulting
    span tree shows ``service.request`` handling and (at most) one
    ``compile`` span per distinct sample window.  Returns
    ``(obs, ledger, stats_counters)`` with the first session's
    per-node ledger and the final :class:`GetStats` counters (wire
    bytes, blob-spool outcomes) for the per-shard report section.
    """
    import numpy as np

    from repro.datagen.gaussian import random_gaussian_field
    from repro.network.builder import random_topology
    from repro.obs import Instrumentation
    from repro.service.client import InProcessClient
    from repro.service.server import ServiceConfig, TopKService

    obs = Instrumentation()
    service = TopKService(
        ServiceConfig(ledger_capacity_mj=capacity_mj),
        instrumentation=obs,
    )
    client = InProcessClient(service)
    with obs.span(
        "run", epochs=epochs, nodes=nodes, k=k, sessions=sessions
    ):
        with obs.span("phase.setup"):
            rng = np.random.default_rng(seed)
            radio_range = max(25.0, 200.0 / nodes**0.5)
            topology = random_topology(
                nodes, rng=rng, radio_range=radio_range
            )
            field = random_gaussian_field(nodes, rng)
            budget = service.energy.message_cost(1) * 2.5 * k
            topology_id = client.register_topology(topology)
            warmup = [field.sample(rng) for __ in range(3)]

        with obs.span("phase.sessions"):
            handles = [
                client.open_session(
                    topology_id, k, budget_mj=budget, replan_every=3
                )
                for __ in range(sessions)
            ]
            # identical warmup windows: the second session's first plan
            # is a pure shared-cache hit (zero compile work)
            for handle in handles:
                for row in warmup:
                    handle.feed(row)

        with obs.span("phase.load"):
            for __ in range(epochs):
                row = field.sample(rng)
                for handle in handles:
                    handle.step(row)
            client.stats()

        with obs.span("phase.wire"):
            # a short socket exchange on each protocol so the report
            # carries live service.wire.* metrics: negotiated versions
            # per connection and bytes-per-request histograms
            from repro.service.client import SocketClient
            from repro.service.server import ServiceThread

            matrix = np.array([field.sample(rng) for __ in range(4)])
            with ServiceThread(service) as live:
                for protocol in ("v1", "v2"):
                    with SocketClient(
                        live.host, live.port, protocol=protocol
                    ) as socket_client:
                        handle = socket_client.open_session(
                            topology_id, k, budget_mj=budget
                        )
                        for row in warmup:
                            handle.feed(row)
                        handle.query_batch(matrix)
                        socket_client.stats()

    ledger = service.ledger_of(handles[0].session_id)
    ledger.publish(obs)
    return obs, ledger, client.stats().counters


def _energy_section(ledger) -> str:
    """ASCII rendering of the ledger's headline telemetry."""
    from repro.experiments.reporting import format_table

    lines = [format_table(ledger.hottest(5), title="hottest nodes")]
    if ledger.capacity_mj is not None and ledger.num_epochs:
        burn = ledger.burn_down()
        lines.append(
            "burn-down (worst-node remaining fraction): "
            + " ".join(f"{fraction:.3f}" for fraction in burn)
        )
        death = ledger.lifetime_epoch()
        projected = ledger.projected_lifetime()
        lines.append(
            "network lifetime: "
            + (
                f"first node died during epoch {death}"
                if death is not None
                else "no node death observed"
            )
            + (
                f"; projected first death after {projected:.0f} epochs"
                f" at the observed burn rate"
                if projected is not None
                else ""
            )
        )
    title = "energy ledger"
    return "\n".join([title, "-" * len(title)] + lines)


def _wire_blob_section(counters: dict) -> str:
    """Per-shard wire-protocol bytes and blob-spool outcome counters.

    Accepts either a sharded ``GetStats`` counters dict (with a
    ``per_shard`` map) or a single service's counters (rendered as
    shard ``0``), so the same report works for both deployments.
    """
    per_shard = counters.get("per_shard") or {"0": counters}
    rows = []
    for shard in sorted(per_shard, key=lambda s: (len(s), s)):
        shard_counters = per_shard[shard] or {}
        wire = shard_counters.get("wire") or {}
        blobs = shard_counters.get("blobs") or {}
        requests = wire.get("requests") or {}
        request_bytes = wire.get("request_bytes") or {}
        reply_bytes = wire.get("reply_bytes") or {}
        rows.append(
            {
                "shard": shard,
                "req_v1": requests.get("v1", 0),
                "req_v2": requests.get("v2", 0),
                "request_bytes": request_bytes.get("v1", 0)
                + request_bytes.get("v2", 0),
                "reply_bytes": reply_bytes.get("v1", 0)
                + reply_bytes.get("v2", 0),
                "blob_spills": blobs.get("spills", 0),
                "blob_reuses": blobs.get("reuses", 0),
                "blob_loads": blobs.get("loads", 0),
            }
        )
    return format_table(rows, title="wire & blob spool per shard")


def _run_one(name: str, chart: bool = False) -> str:
    run_fn, title = EXPERIMENTS[name]
    rows = run_fn()
    text = format_table(rows, title=title)
    if chart:
        numeric = [
            r for r in rows
            if isinstance(r.get("energy_mj"), (int, float))
            and isinstance(r.get("accuracy"), (int, float))
        ]
        if numeric:
            series = "algorithm" if "algorithm" in numeric[0] else None
            text += "\n\n" + ascii_chart(
                numeric, x="energy_mj", y="accuracy", series=series,
                title=f"{title} (chart)",
            )
    return text


def _serve_command(args) -> int:
    """Host the JSON-lines service until interrupted.

    SIGTERM (and Ctrl-C) triggers a graceful shutdown: the listener
    closes, draining sessions refuse new work, and requests already in
    flight get their final replies within ``--grace`` seconds.
    """
    import asyncio
    import signal
    import threading

    from repro.service.server import ServiceConfig, TopKService, serve

    config = ServiceConfig(
        max_sessions=args.max_sessions,
        queue_limit=args.queue_limit,
        session_ttl_s=args.session_ttl,
        artifact_dir=args.artifact_dir,
        protocol=args.protocol,
        blob_dir=args.blob_dir,
    )

    if args.workers > 1:
        from repro.service.shard import ShardedService

        sharded = ShardedService(
            args.workers,
            config,
            host=args.host,
            artifact_dir=args.artifact_dir,
            telemetry_port=args.telemetry_port,
            grace_seconds=args.grace,
        )
        with sharded:
            ports = ", ".join(str(port) for __, port in sharded.endpoints)
            print(
                f"repro sharded service: {args.workers} workers"
                f" on {args.host} ports {ports}"
            )
            if sharded.telemetry is not None:
                print(f"telemetry endpoint: {sharded.telemetry.url('')}")
            stop = threading.Event()
            signal.signal(signal.SIGTERM, lambda *__: stop.set())
            try:
                stop.wait()
            except KeyboardInterrupt:
                pass
        print("service stopped")
        return 0

    instrumentation = None
    if args.telemetry_port is not None:
        from repro.obs import Instrumentation

        instrumentation = Instrumentation(span_mode="ring")
    service = TopKService(config, instrumentation=instrumentation)
    telemetry = None
    if args.telemetry_port is not None:
        from repro.obs import LocalTelemetrySource, TelemetryServer

        telemetry = TelemetryServer(
            LocalTelemetrySource(service),
            host=args.host,
            port=args.telemetry_port,
        ).start()
        print(f"telemetry endpoint: {telemetry.url('')}")

    async def _run() -> None:
        server = await serve(service, args.host, args.port)
        bound = server.sockets[0].getsockname()
        print(f"repro service listening on {bound[0]}:{bound[1]}")
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, shutdown.set)
        await shutdown.wait()
        print(f"draining (grace {args.grace:.0f}s)...")
        await server.shutdown(args.grace)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        pass
    finally:
        if telemetry is not None:
            telemetry.stop()
    print("service stopped")
    return 0


def _top_command(args) -> int:
    """Poll a telemetry endpoint's ``/json`` and render the dashboard."""
    import json
    import time
    import urllib.request

    from repro.obs import render_top

    if args.url:
        base = args.url.rstrip("/")
    elif args.port is not None:
        base = f"http://{args.host}:{args.port}"
    else:
        print(
            "top needs --url or --port (what serve --telemetry-port bound)",
            file=sys.stderr,
        )
        return 2
    while True:
        try:
            with urllib.request.urlopen(base + "/json", timeout=10) as resp:
                payload = json.load(resp)
        except (OSError, ValueError) as err:
            print(f"telemetry endpoint unreachable: {err}", file=sys.stderr)
            return 1
        text = render_top(payload.get("rows", []))
        if args.once:
            print(text)
            return 0
        # clear screen + home, like top(1)
        print(f"\x1b[2J\x1b[Hrepro top — {base}\n\n{text}", flush=True)
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "serve":
        return _serve_command(args)

    if args.command == "top":
        return _top_command(args)

    if args.command == "stats":
        if not args.demo:
            parser.error("stats requires --demo (no live run to report on)")
        from repro.obs import render_report, to_json

        demo = _service_demo if args.service else _stats_demo
        obs, ledger, stats_counters = demo(
            epochs=args.epochs, nodes=args.nodes
        )
        title = (
            "repro stats (service demo run)"
            if args.service
            else "repro stats (demo run)"
        )
        text = (
            to_json(obs)
            if args.json
            else render_report(obs, title=title)
            + "\n\n"
            + _energy_section(ledger)
        )
        if not args.json and stats_counters is not None:
            text += "\n\n" + _wire_blob_section(stats_counters)
        print(text)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
        return 0

    if args.command == "trace":
        if not args.demo:
            parser.error("trace requires --demo (no live run to trace)")
        from repro.obs import chrome_trace_json, prometheus_text, render_flame

        demo = _service_demo if args.service else _stats_demo
        obs, ledger, __ = demo(
            epochs=args.epochs, nodes=args.nodes, capacity_mj=args.capacity
        )
        text = render_flame(obs) + "\n\n" + _energy_section(ledger)
        print(text)
        if args.chrome:
            with open(args.chrome, "w") as handle:
                handle.write(chrome_trace_json(obs))
            print(f"\nwrote Chrome trace to {args.chrome}")
        if args.prom:
            with open(args.prom, "w") as handle:
                handle.write(prometheus_text(obs))
            print(f"wrote Prometheus exposition to {args.prom}")
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
        return 0

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (__, title) in sorted(EXPERIMENTS.items()):
            print(f"{name.ljust(width)}  {title}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    outputs = []
    for name in names:
        text = _run_one(name, chart=args.chart)
        print(text)
        print()
        outputs.append(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write("\n\n".join(outputs) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
