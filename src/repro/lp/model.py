"""The LP model container: variables, constraints, objective, solve().

A :class:`Model` owns its variables and constraints and knows how to
compile itself into the standard-form arrays consumed by the solver
backends (see :mod:`repro.lp.standard_form`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ModelError
from repro.lp.expr import ExprLike, LinExpr, Variable
from repro.lp.result import Solution

_SENSES = ("<=", ">=", "==")


class Constraint:
    """A linear constraint ``expr (<=|>=|==) rhs``.

    The right-hand side is folded so that ``expr`` carries all variable
    terms and ``rhs`` is a plain float.
    """

    __slots__ = ("expr", "sense", "rhs", "name")

    def __init__(self, expr: LinExpr, sense: str, rhs: float, name: str = "") -> None:
        if sense not in _SENSES:
            raise ModelError(f"unknown constraint sense {sense!r}")
        self.expr = expr
        self.sense = sense
        self.rhs = float(rhs)
        self.name = name

    @classmethod
    def build(cls, lhs: LinExpr, rhs: ExprLike, sense: str) -> "Constraint":
        """Build a constraint from ``lhs sense rhs``, folding both sides."""
        folded = lhs - rhs  # all terms on the left
        constant = folded.constant
        folded.constant = 0.0
        return cls(folded, sense, -constant)

    def is_satisfied(self, values: Sequence[float], tol: float = 1e-7) -> bool:
        """Check the constraint against a candidate solution vector."""
        lhs = self.expr.evaluate(values)
        if self.sense == "<=":
            return lhs <= self.rhs + tol
        if self.sense == ">=":
            return lhs >= self.rhs - tol
        return abs(lhs - self.rhs) <= tol

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense} {self.rhs:g}{label})"


class Model:
    """An LP model: ``min/max c'x`` subject to linear constraints and bounds.

    Parameters
    ----------
    name:
        Optional label used in error messages and reprs.

    Notes
    -----
    Integrality is handled *outside* the model, as in the paper: the
    PROSPECTOR formulations declare 0/1 or integer variables, relax them
    to the continuous ranges here, and round the fractional solution
    afterwards (:mod:`repro.planners.rounding`).
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr | None = None
        self.sense: str = "min"
        self._names: dict[str, Variable] = {}

    # -- variables --------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lb: float | None = 0.0,
        ub: float | None = None,
    ) -> Variable:
        """Create a variable with the given bounds (default ``x >= 0``)."""
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r} in model {self.name!r}")
        if lb is not None and ub is not None and lb > ub:
            raise ModelError(f"variable {name!r} has lb {lb} > ub {ub}")
        var = Variable(self, len(self.variables), name, lb, ub)
        self.variables.append(var)
        self._names[name] = var
        return var

    def add_variables(
        self, names: Iterable[str], lb: float | None = 0.0, ub: float | None = None
    ) -> list[Variable]:
        """Create several variables sharing the same bounds."""
        return [self.add_variable(name, lb=lb, ub=ub) for name in names]

    def variable(self, name: str) -> Variable:
        """Look up a variable by name."""
        try:
            return self._names[name]
        except KeyError:
            raise ModelError(f"no variable named {name!r} in model {self.name!r}") from None

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    # -- constraints -------------------------------------------------------
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Attach a constraint (built via expression comparisons)."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constraint expects a Constraint; did you compare two"
                " plain numbers instead of expressions?"
            )
        self._check_ownership(constraint.expr)
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def _check_ownership(self, expr: LinExpr) -> None:
        if expr.model is not None and expr.model is not self:
            raise ModelError(
                f"expression belongs to model {expr.model.name!r}, not {self.name!r}"
            )
        for idx in expr.terms:
            if idx >= len(self.variables):
                raise ModelError(f"expression references unknown variable index {idx}")

    # -- objective ----------------------------------------------------------
    def minimize(self, expr: ExprLike) -> None:
        """Set a minimization objective."""
        self._set_objective(expr, "min")

    def maximize(self, expr: ExprLike) -> None:
        """Set a maximization objective."""
        self._set_objective(expr, "max")

    def _set_objective(self, expr: ExprLike, sense: str) -> None:
        if isinstance(expr, Variable):
            expr = expr.to_expr()
        elif isinstance(expr, (int, float)):
            expr = LinExpr({}, float(expr), self)
        if not isinstance(expr, LinExpr):
            raise ModelError("objective must be a linear expression")
        self._check_ownership(expr)
        self.objective = expr
        self.sense = sense

    # -- solving ---------------------------------------------------------------
    def solve(self, backend=None) -> Solution:
        """Solve the model and return a :class:`~repro.lp.result.Solution`.

        Parameters
        ----------
        backend:
            A solver backend instance, a registered backend name (see
            :func:`repro.lp.backend.available_backends`), or ``None``
            for the production default (HiGHS).
        """
        if self.objective is None:
            raise ModelError(f"model {self.name!r} has no objective")
        from repro.lp.backend import resolve_backend

        return resolve_backend(backend).solve(self)

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_variables},"
            f" constraints={self.num_constraints}, sense={self.sense})"
        )
