"""The solver-backend protocol and the one factory that selects one.

Everything that solves an LP — planners, experiments, ``Model.solve``
— goes through :func:`get_backend` (or :func:`resolve_backend` when a
caller may already hold an instance) instead of importing a concrete
backend class.  Registering a name here is all a new solver needs to
become selectable everywhere.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import SolverError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lp.model import Model
    from repro.lp.result import Solution
    from repro.obs import Instrumentation


@runtime_checkable
class Backend(Protocol):
    """Anything that can solve a compiled LP model.

    Both shipped backends additionally implement two optional entry
    points that callers feature-test with ``hasattr``:

    ``solve_form(form, name)``
        Solve a pre-compiled
        :class:`~repro.lp.standard_form.StandardForm` (the
        :mod:`repro.lp.fastbuild` fast path).

    ``solve_sweep(parametric, rhs_values, name=None)``
        Solve one :class:`~repro.lp.fastbuild.ParametricForm` for a
        sequence of RHS-slot values, returning one ``Solution`` per
        value — element-wise identical to independent cold solves.
        The pure simplex warm-starts each member from the previous
        optimal basis (dual-simplex restart); the scipy backend reuses
        the compiled arrays across ``linprog`` calls.

    ``solve_batch(parametric, rhs_values, name=None, *, costs=None,
    strategy=None)``
        Solve B same-structure LPs as one batch: per-member RHS-slot
        values, optionally per-member cost vectors (``(B, n)``,
        minimization sense).  The pure simplex runs eligible batches in
        lockstep — one blocked numpy computation with stacked basis
        factorizations — falling back to scalar solves per member
        where needed; the scipy backend loops ``linprog`` with all
        per-call validation/conversion hoisted out.  Results are
        element-wise identical to independent cold solves either way.
    """

    name: str

    def solve(self, model: "Model") -> "Solution":
        """Return an optimal solution or raise :class:`SolverError`."""
        ...  # pragma: no cover - protocol definition


def _make_scipy(instrumentation=None) -> "Backend":
    from repro.lp.scipy_backend import ScipyBackend

    return ScipyBackend(instrumentation=instrumentation)


def _make_simplex(instrumentation=None) -> "Backend":
    from repro.lp.simplex import SimplexBackend

    return SimplexBackend(instrumentation=instrumentation)


_FACTORIES = {
    "scipy-highs": _make_scipy,
    "scipy": _make_scipy,
    "highs": _make_scipy,
    "pure-simplex": _make_simplex,
    "simplex": _make_simplex,
}

DEFAULT_BACKEND = "scipy-highs"


def available_backends() -> tuple[str, ...]:
    """The names :func:`get_backend` accepts."""
    return tuple(sorted(_FACTORIES))


def get_backend(
    name: str | None = None,
    instrumentation: "Instrumentation | None" = None,
) -> Backend:
    """Build the backend registered under ``name`` (default: HiGHS).

    Parameters
    ----------
    name:
        A registered backend name (see :func:`available_backends`);
        ``None`` selects the production default.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; when given, the
        backend records every solve (an ``lp_solve`` event plus
        per-formulation solve-time histograms).
    """
    key = DEFAULT_BACKEND if name is None else name
    try:
        factory = _FACTORIES[key]
    except KeyError:
        raise SolverError(
            f"unknown LP backend {name!r}; available:"
            f" {', '.join(available_backends())}"
        ) from None
    return factory(instrumentation=instrumentation)


def resolve_backend(
    spec: "Backend | str | None",
    instrumentation: "Instrumentation | None" = None,
) -> Backend:
    """Turn a backend spec — instance, name, or ``None`` — into a backend.

    An already-constructed instance is returned unchanged (its own
    ``instrumentation``, if any, governs); names and ``None`` go
    through :func:`get_backend` with the given instrumentation.
    """
    if spec is None or isinstance(spec, str):
        return get_backend(spec, instrumentation=instrumentation)
    return spec
