"""Compile a :class:`~repro.lp.model.Model` into standard-form arrays.

The target form matches ``scipy.optimize.linprog``::

    minimize    c @ x
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                bounds[i][0] <= x[i] <= bounds[i][1]

Maximization objectives are negated here and un-negated when the
solution is reported, so backends only ever minimize.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.lp.model import Model


@dataclass
class StandardForm:
    """Arrays for ``min c'x s.t. A_ub x <= b_ub, A_eq x == b_eq, bounds``."""

    c: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    bounds: list[tuple[float | None, float | None]]
    objective_constant: float
    maximize: bool

    @property
    def num_variables(self) -> int:
        return len(self.c)

    def report_objective(self, minimized_value: float) -> float:
        """Convert the backend's minimized value to the model's sense."""
        value = minimized_value + self.objective_constant
        return -value if self.maximize else value


def orient_inequality_duals(
    duals: np.ndarray | None, form: StandardForm, model: Model | None
) -> np.ndarray | None:
    """Shadow prices in the model's own sense.

    Backends report ``d(minimized objective)/d(b_ub)`` for the compiled
    ``<=`` rows; this converts to ``d(model objective)/d(original rhs)``
    by undoing the maximization negation and the ``>=``-to-``<=`` row
    flips of :func:`compile_model`.  The form-only path (``model is
    None``) has no original ``>=`` rows to report against, so only the
    sense negation applies.
    """
    if duals is None:
        return None
    duals = np.asarray(duals, dtype=float).copy()
    if form.maximize:
        duals = -duals
    if model is None:
        return duals
    row = 0
    for constraint in model.constraints:
        if constraint.sense == "==":
            continue
        if constraint.sense == ">=":
            duals[row] = -duals[row]
        row += 1
    return duals


def compile_model(model: Model) -> StandardForm:
    """Lower an algebraic model into :class:`StandardForm` arrays.

    ``>=`` rows are negated into ``<=`` rows; ``==`` rows go to the
    equality block.  The sparse matrices are built in COO form in a
    single pass and converted to CSR.
    """
    n = model.num_variables
    objective = model.objective
    maximize = model.sense == "max"

    c = np.zeros(n)
    constant = 0.0
    if objective is not None:
        for idx, coeff in objective.terms.items():
            c[idx] = coeff
        constant = objective.constant
    if maximize:
        c = -c
        constant = -constant

    ub_rows: list[int] = []
    ub_cols: list[int] = []
    ub_vals: list[float] = []
    b_ub: list[float] = []
    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_vals: list[float] = []
    b_eq: list[float] = []

    for constraint in model.constraints:
        sign = -1.0 if constraint.sense == ">=" else 1.0
        if constraint.sense == "==":
            row = len(b_eq)
            for idx, coeff in constraint.expr.terms.items():
                eq_rows.append(row)
                eq_cols.append(idx)
                eq_vals.append(coeff)
            b_eq.append(constraint.rhs)
        else:
            row = len(b_ub)
            for idx, coeff in constraint.expr.terms.items():
                ub_rows.append(row)
                ub_cols.append(idx)
                ub_vals.append(sign * coeff)
            b_ub.append(sign * constraint.rhs)

    a_ub = sparse.coo_matrix(
        (ub_vals, (ub_rows, ub_cols)), shape=(len(b_ub), n)
    ).tocsr()
    a_eq = sparse.coo_matrix(
        (eq_vals, (eq_rows, eq_cols)), shape=(len(b_eq), n)
    ).tocsr()

    bounds = [(var.lb, var.ub) for var in model.variables]
    return StandardForm(
        c=c,
        a_ub=a_ub,
        b_ub=np.asarray(b_ub, dtype=float),
        a_eq=a_eq,
        b_eq=np.asarray(b_eq, dtype=float),
        bounds=bounds,
        objective_constant=constant,
        maximize=maximize,
    )
