"""Linear expressions and decision variables.

These are deliberately lightweight: a :class:`Variable` is an index into
its owning model, and a :class:`LinExpr` is a sparse mapping from
variable index to coefficient plus a constant.  Arithmetic operators
build expressions; comparison operators build
:class:`~repro.lp.model.Constraint` objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Union

from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lp.model import Constraint, Model

Number = Union[int, float]
ExprLike = Union["Variable", "LinExpr", Number]


class Variable:
    """A single decision variable owned by a :class:`~repro.lp.model.Model`.

    Variables are created through :meth:`Model.add_variable`; they should
    never be instantiated directly by user code.
    """

    __slots__ = ("model", "index", "name", "lb", "ub")

    def __init__(
        self,
        model: "Model",
        index: int,
        name: str,
        lb: float | None,
        ub: float | None,
    ) -> None:
        self.model = model
        self.index = index
        self.name = name
        self.lb = lb
        self.ub = ub

    def to_expr(self) -> "LinExpr":
        """Return this variable as a single-term linear expression."""
        return LinExpr({self.index: 1.0}, 0.0, self.model)

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: ExprLike) -> "LinExpr":
        return self.to_expr() + other

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self.to_expr() + other

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (-1.0) * self.to_expr() + other

    def __mul__(self, coeff: Number) -> "LinExpr":
        return self.to_expr() * coeff

    def __rmul__(self, coeff: Number) -> "LinExpr":
        return self.to_expr() * coeff

    def __neg__(self) -> "LinExpr":
        return self.to_expr() * -1.0

    # -- comparisons build constraints ---------------------------------
    def __le__(self, other: ExprLike) -> "Constraint":
        return self.to_expr() <= other

    def __ge__(self, other: ExprLike) -> "Constraint":
        return self.to_expr() >= other

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self.to_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(self.model), self.index))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr:
    """A sparse linear expression ``sum(coeff * var) + constant``."""

    __slots__ = ("terms", "constant", "model")

    def __init__(
        self,
        terms: Mapping[int, float] | None = None,
        constant: float = 0.0,
        model: "Model | None" = None,
    ) -> None:
        self.terms: dict[int, float] = dict(terms) if terms else {}
        self.constant = float(constant)
        self.model = model

    # -- construction helpers -------------------------------------------
    @staticmethod
    def sum_of(items: Iterable[ExprLike]) -> "LinExpr":
        """Sum an iterable of variables/expressions/numbers.

        Unlike the builtin ``sum``, this never materializes intermediate
        expressions quadratically: terms are accumulated in one dict.
        """
        total = LinExpr()
        for item in items:
            total._iadd(item)
        return total

    def _merge_model(self, other: "Variable | LinExpr") -> None:
        other_model = other.model
        if other_model is None:
            return
        if self.model is None:
            self.model = other_model
        elif self.model is not other_model:
            raise ModelError("cannot mix variables from different models")

    def _iadd(self, other: ExprLike, sign: float = 1.0) -> "LinExpr":
        if isinstance(other, (int, float)):
            self.constant += sign * other
            return self
        if isinstance(other, Variable):
            self._merge_model(other)
            self.terms[other.index] = self.terms.get(other.index, 0.0) + sign
            return self
        if isinstance(other, LinExpr):
            self._merge_model(other)
            for idx, coeff in other.terms.items():
                self.terms[idx] = self.terms.get(idx, 0.0) + sign * coeff
            self.constant += sign * other.constant
            return self
        raise TypeError(f"cannot add {type(other).__name__} to LinExpr")

    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.constant, self.model)

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: ExprLike) -> "LinExpr":
        return self.copy()._iadd(other)

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self.copy()._iadd(other)

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self.copy()._iadd(other, sign=-1.0)

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (self * -1.0)._iadd(other)

    def __mul__(self, coeff: Number) -> "LinExpr":
        if not isinstance(coeff, (int, float)):
            raise TypeError("LinExpr can only be scaled by a number")
        scaled = {idx: c * coeff for idx, c in self.terms.items()}
        return LinExpr(scaled, self.constant * coeff, self.model)

    def __rmul__(self, coeff: Number) -> "LinExpr":
        return self * coeff

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons build constraints -------------------------------------
    def __le__(self, other: ExprLike) -> "Constraint":
        from repro.lp.model import Constraint

        return Constraint.build(self, other, "<=")

    def __ge__(self, other: ExprLike) -> "Constraint":
        from repro.lp.model import Constraint

        return Constraint.build(self, other, ">=")

    def __eq__(self, other: object):  # type: ignore[override]
        from repro.lp.model import Constraint

        if isinstance(other, (Variable, LinExpr, int, float)):
            return Constraint.build(self, other, "==")
        return NotImplemented

    def __hash__(self) -> int:  # expressions are mutable; identity hash
        return id(self)

    def evaluate(self, values) -> float:
        """Evaluate the expression given an indexable of variable values."""
        total = self.constant
        for idx, coeff in self.terms.items():
            total += coeff * float(values[idx])
        return total

    def __repr__(self) -> str:
        parts = [f"{c:+g}*x{i}" for i, c in sorted(self.terms.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"
