"""Solution objects returned by LP solver backends."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lp.expr import LinExpr, Variable


@dataclass
class SolveStats:
    """Bookkeeping about a solve, for the LP-timing experiments.

    ``warm_started`` and ``pivots`` describe parametric sweeps: a warm
    member restarted the dual simplex from the previous optimal basis,
    and ``pivots`` counts the basis changes (including bound flips)
    this particular solve needed.  Cold solves report
    ``warm_started=False`` and their full pivot count (zero for
    backends that do not expose one).

    ``bland_activations`` and ``cold_fallback`` are degeneracy
    telemetry: how many times this solve had to engage Bland's
    anti-cycling rule, and whether a warm restart or lockstep batch
    member had to be abandoned for a cold scalar re-solve.  Both are
    mirrored into the ``lp.sweep.*``/``lp.batch.*`` metrics so
    warm-start-quality regressions show up in ``python -m repro
    stats``.
    """

    backend: str = ""
    wall_seconds: float = 0.0
    iterations: int = 0
    num_variables: int = 0
    num_constraints: int = 0
    warm_started: bool = False
    pivots: int = 0
    bland_activations: int = 0
    cold_fallback: bool = False


@dataclass
class Solution:
    """An optimal solution to an LP model.

    Attributes
    ----------
    status:
        ``"optimal"`` on success; backends raise
        :class:`~repro.errors.SolverError` otherwise, so user code only
        ever sees optimal solutions.
    objective:
        Objective value in the model's own sense (a maximization model
        reports the maximum, even though backends minimize internally).
    values:
        Array of variable values indexed by variable index.
    inequality_duals:
        Shadow prices of the model's ``<=``/``>=`` constraints, indexed
        by their order among inequality rows, *in the model's own
        sense*: the objective's improvement per unit of right-hand-side
        slack.  ``None`` when the backend does not produce duals (the
        pure simplex).
    """

    status: str
    objective: float
    values: np.ndarray
    stats: SolveStats = field(default_factory=SolveStats)
    inequality_duals: np.ndarray | None = None

    def dual_of(self, model, constraint) -> float:
        """Shadow price of one inequality constraint of ``model``.

        For a budget row ``cost <= E`` of a maximization model this is
        the expected objective gain per extra unit of budget.
        """
        from repro.errors import SolverError

        if self.inequality_duals is None:
            raise SolverError("this backend did not produce dual values")
        index = 0
        for candidate in model.constraints:
            if candidate.sense == "==":
                continue
            if candidate is constraint:
                return float(self.inequality_duals[index])
            index += 1
        raise SolverError("constraint is not an inequality of this model")

    def value(self, item: Variable | LinExpr) -> float:
        """Value of a variable or linear expression under this solution."""
        if isinstance(item, Variable):
            return float(self.values[item.index])
        return float(item.evaluate(self.values))

    def __getitem__(self, var: Variable) -> float:
        return self.value(var)
