"""Production LP backend built on ``scipy.optimize.linprog`` (HiGHS).

This stands in for the ILOG CPLEX 8.1 solver the paper used; the LPs
are identical, only the solver implementation differs.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import linprog

from repro.errors import SolverError
from repro.lp.model import Model
from repro.lp.result import Solution, SolveStats
from repro.lp.standard_form import compile_model

_STATUS_BY_CODE = {
    0: "optimal",
    1: "iteration_limit",
    2: "infeasible",
    3: "unbounded",
    4: "numerical",
}


class ScipyBackend:
    """Solve models with scipy's HiGHS wrapper.

    Parameters
    ----------
    method:
        scipy ``linprog`` method name.  ``"highs"`` lets HiGHS choose
        between dual simplex and interior point.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; when set, every
        solve records an ``lp_solve`` event and solve-time histograms.
    """

    name = "scipy-highs"

    def __init__(self, method: str = "highs", instrumentation=None) -> None:
        self.method = method
        self.instrumentation = instrumentation

    def solve(self, model: Model) -> Solution:
        return self._solve_compiled(compile_model(model), model.name, model=model)

    def solve_form(self, form, name: str = "lp") -> Solution:
        """Solve a pre-compiled :class:`StandardForm` (fast-path entry).

        Used by :mod:`repro.lp.fastbuild`, which lowers the PROSPECTOR
        formulations to arrays without an algebraic model.  All
        inequality rows of a ``StandardForm`` are already in ``<=``
        orientation, so the reported duals need no per-row flips.
        """
        return self._solve_compiled(form, name, model=None)

    def _solve_compiled(self, form, name: str, model: Model | None) -> Solution:
        start = time.perf_counter()
        result = linprog(
            form.c,
            A_ub=form.a_ub if form.a_ub.shape[0] else None,
            b_ub=form.b_ub if form.b_ub.size else None,
            A_eq=form.a_eq if form.a_eq.shape[0] else None,
            b_eq=form.b_eq if form.b_eq.size else None,
            bounds=form.bounds,
            method=self.method,
        )
        elapsed = time.perf_counter() - start
        if not result.success:
            status = _STATUS_BY_CODE.get(result.status, "error")
            raise SolverError(
                f"LP {name!r} failed: {result.message}", status=status
            )
        values = np.asarray(result.x, dtype=float)
        stats = SolveStats(
            backend=self.name,
            wall_seconds=elapsed,
            iterations=int(getattr(result, "nit", 0) or 0),
            num_variables=form.num_variables,
            num_constraints=form.a_ub.shape[0] + form.a_eq.shape[0],
        )
        if self.instrumentation is not None:
            self.instrumentation.record_lp_solve(name, stats)
        return Solution(
            status="optimal",
            objective=form.report_objective(float(result.fun)),
            values=values,
            stats=stats,
            inequality_duals=self._duals(model, form, result),
        )

    @staticmethod
    def _duals(model, form, result) -> np.ndarray | None:
        """Shadow prices in the model's own sense.

        HiGHS reports ``d(minimized objective)/d(b_ub)``; we convert to
        ``d(model objective)/d(original rhs)`` by undoing the
        maximization negation and the ``>=``-to-``<=`` row flips.  The
        form-only path (``model is None``) has no original ``>=`` rows
        to report against, so only the sense negation applies.
        """
        ineqlin = getattr(result, "ineqlin", None)
        marginals = getattr(ineqlin, "marginals", None)
        if marginals is None:
            return None
        duals = np.asarray(marginals, dtype=float).copy()
        if form.maximize:
            duals = -duals
        if model is None:
            return duals
        row = 0
        for constraint in model.constraints:
            if constraint.sense == "==":
                continue
            if constraint.sense == ">=":
                duals[row] = -duals[row]
            row += 1
        return duals
