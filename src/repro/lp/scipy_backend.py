"""Production LP backend built on ``scipy.optimize.linprog`` (HiGHS).

This stands in for the ILOG CPLEX 8.1 solver the paper used; the LPs
are identical, only the solver implementation differs.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csc_array

from repro.errors import SolverError
from repro.lp.model import Model
from repro.lp.result import Solution, SolveStats
from repro.lp.standard_form import compile_model, orient_inequality_duals
from repro.obs.spans import maybe_span

_STATUS_BY_CODE = {
    0: "optimal",
    1: "iteration_limit",
    2: "infeasible",
    3: "unbounded",
    4: "numerical",
}


class ScipyBackend:
    """Solve models with scipy's HiGHS wrapper.

    Parameters
    ----------
    method:
        scipy ``linprog`` method name.  ``"highs"`` lets HiGHS choose
        between dual simplex and interior point.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; when set, every
        solve records an ``lp_solve`` event and solve-time histograms.
    """

    name = "scipy-highs"

    def __init__(self, method: str = "highs", instrumentation=None) -> None:
        self.method = method
        self.instrumentation = instrumentation

    def solve(self, model: Model) -> Solution:
        return self._solve_compiled(compile_model(model), model.name, model=model)

    def solve_form(self, form, name: str = "lp") -> Solution:
        """Solve a pre-compiled :class:`StandardForm` (fast-path entry).

        Used by :mod:`repro.lp.fastbuild`, which lowers the PROSPECTOR
        formulations to arrays without an algebraic model.  All
        inequality rows of a ``StandardForm`` are already in ``<=``
        orientation, so the reported duals need no per-row flips.
        """
        return self._solve_compiled(form, name, model=None)

    @staticmethod
    def _hoisted(form) -> dict:
        """One-time preparation of the ``linprog`` inputs for a sweep.

        ``linprog`` re-validates and re-converts every array on every
        call: the dense ``A_ub`` is copied to CSC for HiGHS and the
        bounds list is re-parsed each time.  Doing that work once per
        sweep (CSC matrices, a packed ``(n, 2)`` bounds array) is where
        the batched scipy path gets its speedup.
        """
        bounds = np.empty((form.num_variables, 2), dtype=float)
        for i, (lo, hi) in enumerate(form.bounds):
            bounds[i, 0] = -np.inf if lo is None else lo
            bounds[i, 1] = np.inf if hi is None else hi
        return {
            "c": np.ascontiguousarray(form.c, dtype=float),
            "a_ub": csc_array(form.a_ub) if form.a_ub.shape[0] else None,
            "a_eq": csc_array(form.a_eq) if form.a_eq.shape[0] else None,
            "b_eq": form.b_eq if form.b_eq.size else None,
            "bounds": bounds,
        }

    def _solve_compiled(
        self, form, name: str, model: Model | None, b_ub=None,
        prepared=None, c=None,
    ) -> Solution:
        start = time.perf_counter()
        rhs = form.b_ub if b_ub is None else b_ub
        if prepared is None:
            kwargs = {
                "A_ub": form.a_ub if form.a_ub.shape[0] else None,
                "A_eq": form.a_eq if form.a_eq.shape[0] else None,
                "b_eq": form.b_eq if form.b_eq.size else None,
                "bounds": form.bounds,
            }
            if c is None:
                c = form.c
        else:
            kwargs = {
                "A_ub": prepared["a_ub"],
                "A_eq": prepared["a_eq"],
                "b_eq": prepared["b_eq"],
                "bounds": prepared["bounds"],
            }
            if c is None:
                c = prepared["c"]
        with maybe_span(
            self.instrumentation, "solve", model=name, backend=self.name
        ) as span:
            result = linprog(
                c,
                b_ub=rhs if rhs.size else None,
                method=self.method,
                **kwargs,
            )
            span.annotate(iterations=int(getattr(result, "nit", 0) or 0))
        elapsed = time.perf_counter() - start
        if not result.success:
            status = _STATUS_BY_CODE.get(result.status, "error")
            raise SolverError(
                f"LP {name!r} failed: {result.message}", status=status
            )
        values = np.asarray(result.x, dtype=float)
        stats = SolveStats(
            backend=self.name,
            wall_seconds=elapsed,
            iterations=int(getattr(result, "nit", 0) or 0),
            num_variables=form.num_variables,
            num_constraints=form.a_ub.shape[0] + form.a_eq.shape[0],
        )
        if self.instrumentation is not None:
            self.instrumentation.record_lp_solve(name, stats)
        return Solution(
            status="optimal",
            objective=form.report_objective(float(result.fun)),
            values=values,
            stats=stats,
            inequality_duals=self._duals(model, form, result),
        )

    def solve_sweep(self, parametric, rhs_values, name: str | None = None):
        """Solve one compiled form for many values of its RHS slot.

        scipy's ``linprog`` has no warm-start entry point, so the win
        here is structural: the sweep compiles once and every member
        reuses the same ``c``/``A_ub``/``A_eq``/bounds arrays, patching
        the single scalar RHS slot per solve.  Returns one
        :class:`~repro.lp.result.Solution` per value, element-wise
        identical to independent cold solves (the patched arrays are
        bitwise equal to freshly compiled ones).
        """
        label = name or parametric.name
        form = parametric.compiled.form
        prepared = self._hoisted(form)
        b_ub = form.b_ub.copy()
        solutions = []
        start = time.perf_counter()
        for rhs in np.asarray(rhs_values, dtype=float):
            b_ub[parametric.row] = rhs
            with maybe_span(
                self.instrumentation, "sweep.member",
                model=label, rhs=float(rhs), mode="cold",
            ):
                solutions.append(
                    self._solve_compiled(
                        form, label, model=None, b_ub=b_ub,
                        prepared=prepared,
                    )
                )
        if self.instrumentation is not None:
            self.instrumentation.record_lp_sweep(
                label,
                members=len(solutions),
                warm_hits=0,
                pivots_saved=0,
                seconds=time.perf_counter() - start,
            )
        return solutions

    def solve_batch(
        self,
        parametric,
        rhs_values,
        name: str | None = None,
        *,
        costs=None,
        strategy: str | None = None,
    ):
        """Solve B same-structure LPs over one compiled form.

        scipy has no vectorized entry point, so this is a loop — but
        with all per-``linprog`` validation/conversion work hoisted out
        via :meth:`_hoisted` (CSC constraint matrices, packed bounds).
        ``costs`` optionally overrides the cost vector per member
        (``(B, n)``, minimization sense).  ``strategy`` is accepted for
        signature compatibility with the pure simplex and ignored.
        """
        del strategy
        label = name or parametric.name
        rhs_values = np.atleast_1d(np.asarray(rhs_values, dtype=float))
        if rhs_values.size == 0:
            return []
        form = parametric.compiled.form
        prepared = self._hoisted(form)
        b_matrix = parametric.b_ub_matrix(rhs_values)
        solutions = []
        start = time.perf_counter()
        with maybe_span(
            self.instrumentation, "batch.solve",
            model=label, backend=self.name, members=int(rhs_values.size),
        ):
            for index, b_ub in enumerate(b_matrix):
                c = (
                    None if costs is None
                    else np.ascontiguousarray(costs[index], dtype=float)
                )
                solutions.append(
                    self._solve_compiled(
                        form, label, model=None, b_ub=b_ub,
                        prepared=prepared, c=c,
                    )
                )
        if self.instrumentation is not None:
            self.instrumentation.record_lp_batch(
                label,
                members=len(solutions),
                lockstep_iterations=0,
                cold_fallbacks=0,
                bland_activations=0,
                seconds=time.perf_counter() - start,
            )
        return solutions

    @staticmethod
    def _duals(model, form, result) -> np.ndarray | None:
        """HiGHS marginals oriented into the model's own sense."""
        ineqlin = getattr(result, "ineqlin", None)
        marginals = getattr(ineqlin, "marginals", None)
        return orient_inequality_duals(marginals, form, model)
