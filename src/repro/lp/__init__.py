"""A small linear-programming modeling layer with pluggable solvers.

The paper solved its plan-optimization LPs with ILOG CPLEX 8.1.  This
subpackage provides the equivalent substrate: an algebraic modeling
layer (:class:`~repro.lp.model.Model`) that compiles to standard-form
arrays, a production backend built on ``scipy.optimize.linprog``
(HiGHS), and a self-contained two-phase simplex implementation used to
cross-check the production backend in tests.

Example
-------
>>> from repro.lp import Model
>>> m = Model("diet")
>>> x = m.add_variable("x", lb=0.0)
>>> y = m.add_variable("y", lb=0.0)
>>> m.add_constraint(x + 2.0 * y <= 14.0)
>>> m.add_constraint(3.0 * x - y >= 0.0)
>>> m.maximize(3.0 * x + 4.0 * y)
>>> sol = m.solve()
>>> round(sol.objective, 6)
34.0
"""

from repro.lp.backend import (
    Backend,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.lp.expr import LinExpr, Variable
from repro.lp.fastbuild import (
    CompiledLP,
    ParametricForm,
    ReplanCache,
    compile_lp_lf,
    compile_lp_lf_parametric,
    compile_lp_no_lf,
    compile_lp_no_lf_parametric,
    compile_proof,
    compile_proof_parametric,
)
from repro.lp.model import Constraint, Model
from repro.lp.result import Solution, SolveStats
from repro.lp.scipy_backend import ScipyBackend
from repro.lp.simplex import SimplexBackend
from repro.lp.standard_form import StandardForm, compile_model

__all__ = [
    "Backend",
    "CompiledLP",
    "Constraint",
    "LinExpr",
    "Model",
    "ParametricForm",
    "ReplanCache",
    "ScipyBackend",
    "SimplexBackend",
    "Solution",
    "SolveStats",
    "StandardForm",
    "Variable",
    "available_backends",
    "compile_lp_lf",
    "compile_lp_lf_parametric",
    "compile_lp_no_lf",
    "compile_lp_no_lf_parametric",
    "compile_model",
    "compile_proof",
    "compile_proof_parametric",
    "get_backend",
    "resolve_backend",
]
