"""A self-contained two-phase primal simplex solver.

This backend exists so the library does not take the production solver
on faith: tests cross-check :class:`~repro.lp.scipy_backend.ScipyBackend`
against this independent implementation on every formulation.  It is a
dense tableau simplex with Bland's anti-cycling rule, intended for the
small-to-medium LPs that arise in tests; the HiGHS backend remains the
default for real planning.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import SolverError
from repro.lp.model import Model
from repro.lp.result import Solution, SolveStats
from repro.lp.standard_form import StandardForm, compile_model

_FEAS_TOL = 1e-9
_OPT_TOL = 1e-9


class _Column:
    """Mapping from a transformed nonnegative column back to a model variable."""

    __slots__ = ("var_index", "scale", "shift")

    def __init__(self, var_index: int, scale: float, shift: float) -> None:
        self.var_index = var_index
        self.scale = scale
        self.shift = shift


class SimplexBackend:
    """Two-phase dense simplex over the model's standard form.

    Parameters
    ----------
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; when set, every
        solve records an ``lp_solve`` event and solve-time histograms.
    """

    name = "pure-simplex"

    def __init__(
        self, max_iterations: int = 100_000, instrumentation=None
    ) -> None:
        self.max_iterations = max_iterations
        self.instrumentation = instrumentation

    def solve(self, model: Model) -> Solution:
        return self.solve_form(compile_model(model), model.name)

    def solve_form(self, form: StandardForm, name: str = "lp") -> Solution:
        """Solve a pre-compiled :class:`StandardForm` (fast-path entry).

        Used by :mod:`repro.lp.fastbuild`; also keeps this backend
        usable as a cross-check oracle for array-level compilers.
        """
        start = time.perf_counter()
        x, iterations = self._solve_form(form, name)
        elapsed = time.perf_counter() - start
        minimized = float(form.c @ x)
        stats = SolveStats(
            backend=self.name,
            wall_seconds=elapsed,
            iterations=iterations,
            num_variables=form.num_variables,
            num_constraints=form.a_ub.shape[0] + form.a_eq.shape[0],
        )
        if self.instrumentation is not None:
            self.instrumentation.record_lp_solve(name, stats)
        return Solution(
            status="optimal",
            objective=form.report_objective(minimized),
            values=x,
            stats=stats,
        )

    # -- transformation to x >= 0 form ------------------------------------
    def _solve_form(self, form: StandardForm, name: str) -> tuple[np.ndarray, int]:
        columns: list[_Column] = []
        extra_ub_rows: list[tuple[int, float]] = []  # (column, rhs) for x' <= rhs

        for i, (lb, ub) in enumerate(form.bounds):
            if lb is None and ub is None:
                # free variable: x = p - q
                columns.append(_Column(i, 1.0, 0.0))
                columns.append(_Column(i, -1.0, 0.0))
            elif lb is None:
                # x <= ub: x = ub - x'
                columns.append(_Column(i, -1.0, float(ub)))  # type: ignore[arg-type]
            else:
                # x >= lb: x = lb + x'
                col = len(columns)
                columns.append(_Column(i, 1.0, float(lb)))
                if ub is not None:
                    extra_ub_rows.append((col, float(ub) - float(lb)))

        n_cols = len(columns)
        n_orig = form.num_variables

        # each original variable contributes its shift once, even when it
        # is split into two columns (free variables have shift 0 anyway)
        shifts = np.zeros(n_orig)
        shifted: set[int] = set()
        for col in columns:
            if col.var_index not in shifted:
                shifts[col.var_index] = col.shift
                shifted.add(col.var_index)

        def transform_matrix(a) -> tuple[np.ndarray, np.ndarray]:
            dense = (
                np.asarray(a.todense()) if a.shape[0] else np.zeros((0, n_orig))
            )
            out = np.zeros((dense.shape[0], n_cols))
            for col_idx, col in enumerate(columns):
                out[:, col_idx] = dense[:, col.var_index] * col.scale
            return out, dense @ shifts

        a_ub_t, ub_shift = transform_matrix(form.a_ub)
        a_eq_t, eq_shift = transform_matrix(form.a_eq)
        b_ub = form.b_ub - ub_shift if form.b_ub.size else form.b_ub
        b_eq = form.b_eq - eq_shift if form.b_eq.size else form.b_eq

        if extra_ub_rows:
            extra = np.zeros((len(extra_ub_rows), n_cols))
            extra_b = np.zeros(len(extra_ub_rows))
            for row, (col, rhs) in enumerate(extra_ub_rows):
                extra[row, col] = 1.0
                extra_b[row] = rhs
            a_ub_t = np.vstack([a_ub_t, extra]) if a_ub_t.size else extra
            b_ub = np.concatenate([b_ub, extra_b]) if b_ub.size else extra_b

        c_t = np.zeros(n_cols)
        for col_idx, col in enumerate(columns):
            c_t[col_idx] = form.c[col.var_index] * col.scale

        x_t, iterations = self._two_phase(c_t, a_ub_t, b_ub, a_eq_t, b_eq, name)

        x = np.zeros(n_orig)
        seen_shift: set[int] = set()
        for col_idx, col in enumerate(columns):
            x[col.var_index] += col.scale * x_t[col_idx]
            if col.var_index not in seen_shift:
                x[col.var_index] += col.shift
                seen_shift.add(col.var_index)
        return x, iterations

    # -- core two-phase tableau simplex -------------------------------------
    def _two_phase(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        name: str,
    ) -> tuple[np.ndarray, int]:
        n = len(c)
        m_ub = len(b_ub)
        m_eq = len(b_eq)
        m = m_ub + m_eq

        # rows: [A_ub | slack I | artificials?] ; [A_eq | 0 | artificials]
        a = np.zeros((m, n + m_ub))
        b = np.zeros(m)
        if m_ub:
            a[:m_ub, :n] = a_ub
            a[:m_ub, n : n + m_ub] = np.eye(m_ub)
            b[:m_ub] = b_ub
        if m_eq:
            a[m_ub:, :n] = a_eq
            b[m_ub:] = b_eq

        # normalize to b >= 0
        for row in range(m):
            if b[row] < 0:
                a[row] *= -1.0
                b[row] *= -1.0

        total = n + m_ub
        # artificial variables for every row (simple and robust; slack rows
        # whose slack coefficient is +1 could reuse the slack as basis, but
        # after sign flips that is not guaranteed).
        art = np.eye(m)
        tableau = np.hstack([a, art])
        basis = list(range(total, total + m))

        # phase 1: minimize sum of artificials
        cost1 = np.zeros(total + m)
        cost1[total:] = 1.0
        value, iterations1 = self._optimize(tableau, b, cost1, basis)
        if value > 1e-6:
            raise SolverError(f"LP {name!r} infeasible (phase-1 = {value:g})",
                              status="infeasible")

        # drive any lingering artificial out of the basis if possible
        for row, bvar in enumerate(basis):
            if bvar >= total:
                pivot_col = next(
                    (
                        j
                        for j in range(total)
                        if abs(tableau[row, j]) > _FEAS_TOL
                    ),
                    None,
                )
                if pivot_col is not None:
                    self._pivot(tableau, b, basis, row, pivot_col)
        # phase 2 on original costs; forbid artificials by dropping them
        tableau2 = tableau[:, :total]
        cost2 = np.zeros(total)
        cost2[:n] = c
        redundant = [row for row, bvar in enumerate(basis) if bvar >= total]
        if redundant:
            keep = [row for row in range(m) if row not in redundant]
            tableau2 = tableau2[keep]
            b = b[keep]
            basis = [basis[row] for row in keep]
        value, iterations2 = self._optimize(tableau2, b, cost2, basis)

        x = np.zeros(total)
        for row, bvar in enumerate(basis):
            if bvar < total:
                x[bvar] = b[row]
        return x[:n], iterations1 + iterations2

    def _optimize(
        self,
        tableau: np.ndarray,
        b: np.ndarray,
        cost: np.ndarray,
        basis: list[int],
    ) -> tuple[float, int]:
        """Run primal simplex in place; return (objective, iterations)."""
        iterations = 0
        while True:
            iterations += 1
            if iterations > self.max_iterations:
                raise SolverError("simplex iteration limit exceeded",
                                  status="iteration_limit")
            duals = self._reduced_costs(tableau, cost, basis)
            entering = next(
                (j for j in range(tableau.shape[1]) if duals[j] < -_OPT_TOL), None
            )
            if entering is None:
                break
            column = tableau[:, entering]
            ratios = [
                (b[row] / column[row], basis[row], row)
                for row in range(len(b))
                if column[row] > _FEAS_TOL
            ]
            if not ratios:
                raise SolverError("LP unbounded", status="unbounded")
            # Bland: smallest ratio, ties by smallest basis variable index
            __, __, leave_row = min(ratios, key=lambda t: (t[0], t[1]))
            self._pivot(tableau, b, basis, leave_row, entering)
        objective = sum(cost[bvar] * b[row] for row, bvar in enumerate(basis))
        return float(objective), iterations

    @staticmethod
    def _reduced_costs(
        tableau: np.ndarray, cost: np.ndarray, basis: list[int]
    ) -> np.ndarray:
        basic_cost = cost[basis]
        return cost - basic_cost @ tableau

    @staticmethod
    def _pivot(
        tableau: np.ndarray,
        b: np.ndarray,
        basis: list[int],
        row: int,
        col: int,
    ) -> None:
        pivot = tableau[row, col]
        tableau[row] /= pivot
        b[row] /= pivot
        for other in range(tableau.shape[0]):
            if other != row and abs(tableau[other, col]) > 0:
                factor = tableau[other, col]
                tableau[other] -= factor * tableau[row]
                b[other] -= factor * b[row]
        basis[row] = col
