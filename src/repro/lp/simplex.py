"""A self-contained revised-simplex solver with warm-started re-solves.

This backend exists so the library does not take the production solver
on faith: tests cross-check :class:`~repro.lp.scipy_backend.ScipyBackend`
against this independent implementation on every formulation.

The engine is a bounded-variable revised simplex over the standard-form
arrays: variable bounds (including free and fixed variables) are handled
natively instead of being rewritten into extra rows, the basis is kept
as an LU factorization (:func:`scipy.linalg.lu_factor`) refreshed every
few dozen pivots with product-form eta updates in between, and pricing
is one vectorized reduced-cost pass per iteration (Dantzig's rule, with
Bland's rule engaged after a run of degenerate pivots so cycling
candidates still terminate).  Phase 1 only introduces artificial
columns for rows the slack basis cannot satisfy, so the PROSPECTOR
formulations — all ``<=`` rows with a feasible all-lower-bounds point —
cold-start directly in phase 2.

Because the factorized basis persists, the engine also supports the
parametric sweeps of :mod:`repro.lp.fastbuild`: when only one
right-hand-side entry changes between solves the optimal basis stays
dual-feasible, so :meth:`SimplexBackend.solve_sweep` re-solves each
sweep member with a dual-simplex restart from the previous optimum — a
handful of pivots instead of a cold run (``warm_started``/``pivots`` in
the returned :class:`~repro.lp.result.SolveStats`).
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np
from scipy import sparse
from scipy.linalg import LinAlgError, lu_factor, lu_solve
from scipy.linalg.blas import dger

from repro.errors import SolverError
from repro.lp.model import Model
from repro.lp.result import Solution, SolveStats
from repro.lp.standard_form import (
    StandardForm,
    compile_model,
    orient_inequality_duals,
)
from repro.obs.spans import maybe_span

_OPT_TOL = 1e-9          # reduced-cost threshold for entering candidates
_LOCKSTEP_MIN_MEMBERS = 12   # below this the sequential warm sweep wins
_LOCKSTEP_MAX_ROWS = 768     # dense (B, m, m) factorizations beyond this blow memory
_LOCKSTEP_MAX_BYTES = 512 * 1024 * 1024  # cap on the stacked-LU tensor
_LOCKSTEP_REFACTOR_EVERY = 96  # lockstep pivots between hygiene refactors
_FEAS_TOL = 1e-8         # bound-violation threshold (primal feasibility)
_PIVOT_TOL = 1e-10       # minimum acceptable pivot magnitude
_PHASE1_TOL = 1e-6       # residual artificial mass that means infeasible
_RATIO_TIE = 1e-9        # ratio-test tie window
_REFACTOR_EVERY = 64     # eta-file length before a fresh LU
_BLAND_AFTER = 24        # consecutive degenerate pivots before Bland
_TIE_BREAK = 1e-7        # pricing perturbation that pins a unique vertex
_GOLDEN = 0.6180339887498949


class _WarmRestartFailed(Exception):
    """Internal: the dual restart could not finish; fall back to cold."""


class _RevisedSimplex:
    """One LP instance with restartable basis state.

    Holds the computational form ``A x = b`` with ``A = [[A_ub, I],
    [A_eq, 0]]`` over structural + slack (+ late artificial) columns,
    the current basis and its factorization.  ``solve()`` runs the cold
    two-phase primal simplex; ``resolve(row, rhs)`` patches one entry
    of ``b`` and restarts the dual simplex from the current optimal
    basis, which stays dual-feasible because costs and columns are
    untouched.
    """

    def __init__(self, form: StandardForm, name: str, max_iterations: int) -> None:
        self.name = name
        self.max_iterations = max_iterations
        n = form.num_variables
        m_ub = form.a_ub.shape[0]
        m_eq = form.a_eq.shape[0]
        self.n = n
        self.m_ub = m_ub
        self.m = m_ub + m_eq
        self.cost = np.concatenate([np.asarray(form.c, dtype=float),
                                    np.zeros(m_ub)])
        # Degenerate formulations have whole faces of alternate optima,
        # and a warm restart may reach a different optimal vertex than a
        # cold run.  Phase-2 pricing therefore minimizes ``cost + tie``,
        # a deterministic per-column perturbation (golden-ratio spread,
        # so no two columns or small combinations cancel) that makes the
        # optimal vertex generically unique: cold solves and warm sweep
        # restarts land on the *same* vertex.  Objectives and duals are
        # still reported against the true ``cost``.
        ncols = n + m_ub
        scale = max(1.0, float(np.abs(self.cost).max(initial=0.0)))
        spread = np.modf((np.arange(ncols) + 1.0) * _GOLDEN)[0]
        self.tie = _TIE_BREAK * scale * (0.5 + spread)
        self.b = np.concatenate([form.b_ub, form.b_eq]).astype(float)

        blocks = []
        if m_ub:
            blocks.append(sparse.hstack(
                [form.a_ub, sparse.identity(m_ub, format="csc")], format="csc"
            ))
        if m_eq:
            blocks.append(sparse.hstack(
                [form.a_eq, sparse.csc_matrix((m_eq, m_ub))], format="csc"
            ))
        if blocks:
            self.A = sparse.vstack(blocks, format="csc")
        else:
            self.A = sparse.csc_matrix((0, n + m_ub))

        self.lo = np.zeros(n + m_ub)
        self.hi = np.full(n + m_ub, np.inf)
        for i, (lb, ub) in enumerate(form.bounds):
            self.lo[i] = -np.inf if lb is None else float(lb)
            self.hi[i] = np.inf if ub is None else float(ub)
        self.free = np.isneginf(self.lo) & np.isposinf(self.hi)

        # nonbasic start point: finite lower bound, else finite upper
        # bound, else 0 for free columns
        self.x = np.where(np.isfinite(self.lo), self.lo,
                          np.where(np.isfinite(self.hi), self.hi, 0.0))
        self.at_upper = ~np.isfinite(self.lo) & np.isfinite(self.hi)

        self.allowed = np.ones(n + m_ub, dtype=bool)  # may enter the basis
        self.in_basis = np.zeros(n + m_ub, dtype=bool)
        self.basis = np.zeros(self.m, dtype=np.int64)
        self.xB = np.zeros(self.m)
        self._lu = None
        self._etas: list[tuple[int, np.ndarray]] = []
        self.pivots = 0
        self.bland_activations = 0

    # -- linear algebra over the factorized basis -----------------------
    def _refactor(self) -> None:
        self._etas = []
        if self.m == 0:
            self._lu = None
            return
        dense = self.A[:, self.basis].toarray()
        try:
            self._lu = lu_factor(dense, check_finite=False)
        except LinAlgError as err:  # pragma: no cover - defensive
            raise SolverError(
                f"LP {self.name!r} produced a singular basis",
                status="numerical",
            ) from err

    def _ftran(self, v: np.ndarray) -> np.ndarray:
        """``B^-1 v`` through the LU factors and the eta file."""
        if self.m == 0:
            return v
        z = lu_solve(self._lu, v, check_finite=False)
        for row, w in self._etas:
            t = z[row] / w[row]
            z -= w * t
            z[row] = t
        return z

    def _btran(self, v: np.ndarray) -> np.ndarray:
        """``B^-T v`` — etas applied in reverse, then the transposed LU."""
        if self.m == 0:
            return v
        u = np.array(v, dtype=float)
        for row, w in reversed(self._etas):
            u[row] = (u[row] - w @ u + w[row] * u[row]) / w[row]
        return lu_solve(self._lu, u, trans=1, check_finite=False)

    def _column(self, j: int) -> np.ndarray:
        start, end = self.A.indptr[j], self.A.indptr[j + 1]
        col = np.zeros(self.m)
        col[self.A.indices[start:end]] = self.A.data[start:end]
        return col

    def _recompute_xB(self) -> None:
        """Fresh basic values from the nonbasic point (kills eta drift)."""
        x = self.x.copy()
        x[self.basis] = 0.0
        self.xB = self._ftran(self.b - self.A @ x)

    def _push_eta(self, row: int, w: np.ndarray) -> None:
        self._etas.append((row, w))
        self.pivots += 1
        if len(self._etas) >= _REFACTOR_EVERY:
            self._refactor()
            self._recompute_xB()

    # -- shared pivot bookkeeping ---------------------------------------
    def _install(self, row: int, entering: int, value: float,
                 leaving_to_upper: bool, w: np.ndarray) -> None:
        leaving = self.basis[row]
        bound = self.hi[leaving] if leaving_to_upper else self.lo[leaving]
        self.x[leaving] = bound
        self.at_upper[leaving] = leaving_to_upper
        self.in_basis[leaving] = False
        self.in_basis[entering] = True
        self.basis[row] = entering
        self.xB[row] = value
        self._push_eta(row, w)

    def _reduced_costs(self, cost: np.ndarray) -> np.ndarray:
        y = self._btran(cost[self.basis])
        d = cost - self.A.T @ y
        d[self.basis] = 0.0
        return d

    # -- primal simplex --------------------------------------------------
    def _primal(self, cost: np.ndarray, iterations: int) -> int:
        """Minimize ``cost`` from the current (primal-feasible) basis."""
        movable = self.allowed & (self.hi > self.lo)
        bland = False
        degenerate_run = 0
        while True:
            iterations += 1
            if iterations > self.max_iterations:
                raise SolverError("simplex iteration limit exceeded",
                                  status="iteration_limit")
            d = self._reduced_costs(cost)
            active = movable & ~self.in_basis
            enter_inc = active & (~self.at_upper | self.free) & (d < -_OPT_TOL)
            enter_dec = active & (self.at_upper | self.free) & (d > _OPT_TOL)
            candidates = enter_inc | enter_dec
            if not candidates.any():
                return iterations
            if bland:
                entering = int(np.flatnonzero(candidates)[0])
            else:
                score = np.where(enter_inc, -d, 0.0)
                score = np.maximum(score, np.where(enter_dec, d, 0.0))
                entering = int(np.argmax(score))
            sigma = 1.0 if enter_inc[entering] else -1.0

            w = self._ftran(self._column(entering))
            step = sigma * w
            lo_b = self.lo[self.basis]
            hi_b = self.hi[self.basis]
            ratios = np.full(self.m, np.inf)
            dec = step > _PIVOT_TOL
            ratios[dec] = (self.xB[dec] - lo_b[dec]) / step[dec]
            inc = step < -_PIVOT_TOL
            ratios[inc] = (hi_b[inc] - self.xB[inc]) / (-step[inc])
            np.clip(ratios, 0.0, None, out=ratios)
            row_min = float(ratios.min()) if self.m else np.inf
            gap = self.hi[entering] - self.lo[entering]
            if min(row_min, gap) == np.inf:
                raise SolverError("LP unbounded", status="unbounded")

            if gap <= row_min:
                # the entering column flips to its other bound
                self.xB -= step * gap
                self.x[entering] = (
                    self.hi[entering] if sigma > 0 else self.lo[entering]
                )
                self.at_upper[entering] = sigma > 0
                self.pivots += 1
                t = gap
            else:
                tied = np.flatnonzero(ratios <= row_min + _RATIO_TIE)
                if bland:
                    row = int(tied[np.argmin(self.basis[tied])])
                else:
                    row = int(tied[np.argmax(np.abs(step[tied]))])
                t = float(ratios[row])
                value = self.x[entering] + sigma * t
                self.xB -= step * t
                self._install(row, entering, value,
                              leaving_to_upper=step[row] < 0, w=w)
            if t <= _RATIO_TIE:
                degenerate_run += 1
                if not bland and degenerate_run >= _BLAND_AFTER:
                    bland = True
                    self.bland_activations += 1
            else:
                degenerate_run = 0
                bland = False

    # -- phase 1 ----------------------------------------------------------
    def _start_basis(self) -> None:
        """Slack basis where feasible; artificial columns elsewhere.

        Rows whose slack can absorb the residual (``<=`` rows with a
        non-negative residual at the nonbasic start point) take their
        slack; every other row gets a signed artificial column so the
        initial basic point is feasible by construction.
        """
        residual = self.b - self.A @ self.x
        art_rows: list[int] = []
        art_signs: list[float] = []
        for row in range(self.m):
            if row < self.m_ub and residual[row] >= 0:
                slack = self.n + row
                self.basis[row] = slack
                self.in_basis[slack] = True
                self.xB[row] = residual[row] - self.x[slack]
            else:
                art_rows.append(row)
                art_signs.append(1.0 if residual[row] >= 0 else -1.0)

        self.num_art = len(art_rows)
        if not self.num_art:
            self._refactor()
            self._recompute_xB()
            return
        art_block = sparse.csc_matrix(
            (np.asarray(art_signs), (np.asarray(art_rows, dtype=np.int64),
                                     np.arange(self.num_art))),
            shape=(self.m, self.num_art),
        )
        base_cols = self.A.shape[1]
        self.A = sparse.hstack([self.A, art_block], format="csc")
        self.cost = np.concatenate([self.cost, np.zeros(self.num_art)])
        self.tie = np.concatenate([self.tie, np.zeros(self.num_art)])
        self.lo = np.concatenate([self.lo, np.zeros(self.num_art)])
        self.hi = np.concatenate([self.hi, np.full(self.num_art, np.inf)])
        self.free = np.concatenate(
            [self.free, np.zeros(self.num_art, dtype=bool)]
        )
        self.x = np.concatenate([self.x, np.zeros(self.num_art)])
        self.at_upper = np.concatenate(
            [self.at_upper, np.zeros(self.num_art, dtype=bool)]
        )
        # artificials may never (re-)enter the basis
        self.allowed = np.concatenate(
            [self.allowed, np.zeros(self.num_art, dtype=bool)]
        )
        self.in_basis = np.concatenate(
            [self.in_basis, np.zeros(self.num_art, dtype=bool)]
        )
        for position, row in enumerate(art_rows):
            col = base_cols + position
            self.basis[row] = col
            self.in_basis[col] = True
        self._refactor()
        self._recompute_xB()

    def _drive_out_artificials(self) -> None:
        """Pivot lingering zero-valued artificials out where possible.

        A row whose artificial admits no nonzero pivot over the real
        columns is linearly redundant; its artificial stays basic,
        pinned at zero by its (now closed) bounds.
        """
        art_start = self.n + self.m_ub
        self.lo[art_start:] = 0.0
        self.hi[art_start:] = 0.0
        for row in range(self.m):
            if self.basis[row] < art_start:
                continue
            rho = np.zeros(self.m)
            rho[row] = 1.0
            alpha = self.A.T @ self._btran(rho)
            alpha[self.in_basis] = 0.0
            alpha[art_start:] = 0.0
            entering = int(np.argmax(np.abs(alpha)))
            if abs(alpha[entering]) <= _PIVOT_TOL:
                continue  # redundant row
            w = self._ftran(self._column(entering))
            self._install(row, entering, self.x[entering],
                          leaving_to_upper=False, w=w)

    # -- cold and warm entry points --------------------------------------
    def solve(self) -> int:
        """Cold two-phase run; returns the iteration count."""
        self._start_basis()
        iterations = 0
        if self.num_art:
            phase1 = np.zeros(self.A.shape[1])
            phase1[self.n + self.m_ub:] = 1.0
            iterations = self._primal(phase1, iterations)
            infeasibility = float(phase1[self.basis] @ self.xB)
            if infeasibility > _PHASE1_TOL:
                raise SolverError(
                    f"LP {self.name!r} infeasible"
                    f" (phase-1 = {infeasibility:g})",
                    status="infeasible",
                )
            self._drive_out_artificials()
        try:
            return self._primal(self.cost + self.tie, iterations)
        except SolverError as err:
            if err.status != "unbounded":
                raise
            # a zero-cost recession direction can look unbounded under
            # the perturbed pricing; re-check against the true costs
            # (vertex uniqueness is lost, but correctness is not)
            return self._primal(self.cost, iterations)

    def resolve(self, row: int, rhs: float) -> int:
        """Dual-simplex restart after patching ``b[row] = rhs``.

        The basis from the previous optimum stays dual-feasible (costs
        and columns are unchanged), so only primal feasibility must be
        restored: repeatedly drop the most bound-violating basic
        variable and re-enter the nonbasic column that keeps the
        reduced costs correctly signed.  Raises
        :class:`_WarmRestartFailed` when a long step would be needed or
        the restart stalls; callers fall back to a cold solve.
        """
        self.b = self.b.copy()
        self.b[row] = rhs
        self._recompute_xB()
        pricing = self.cost + self.tie
        # dual reduced costs, updated incrementally per pivot (the
        # pivot row is already in hand); refreshed from scratch after
        # every refactorization to kill drift
        d = self._reduced_costs(pricing)
        iterations = 0
        limit = min(self.max_iterations, max(200, 2 * self.m))
        while True:
            iterations += 1
            if iterations > limit:
                raise _WarmRestartFailed("dual restart stalled")
            lo_b = self.lo[self.basis]
            hi_b = self.hi[self.basis]
            below = lo_b - self.xB
            above = self.xB - hi_b
            violation = np.maximum(below, above)
            leave_row = int(np.argmax(violation)) if self.m else 0
            if self.m == 0 or violation[leave_row] <= _FEAS_TOL:
                # primal feasibility restored; polish with the primal
                # simplex so any residual dual infeasibility (drift in
                # the incremental reduced costs, or a ratio-test tie)
                # cannot park the restart at a different vertex than a
                # cold solve would reach
                try:
                    return self._primal(pricing, iterations)
                except SolverError as err:
                    raise _WarmRestartFailed(
                        f"post-restart polish failed: {err}"
                    ) from err
            is_below = below[leave_row] >= above[leave_row]

            # alpha in a unified orientation: positive entries are
            # columns whose *increase* shrinks the violation
            rho = np.zeros(self.m)
            rho[leave_row] = 1.0
            alpha = self.A.T @ self._btran(rho)
            if is_below:
                alpha = -alpha
            delta = float(violation[leave_row])
            movable = self.allowed & (self.hi > self.lo) & ~self.in_basis
            from_lower = movable & (~self.at_upper | self.free)
            from_upper = movable & (self.at_upper | self.free)
            candidates = (from_lower & (alpha > _PIVOT_TOL)) | (
                from_upper & (alpha < -_PIVOT_TOL)
            )
            if not candidates.any():
                raise _WarmRestartFailed("dual step found no entering column")

            # bound-flipping ratio test: walk the candidates by dual
            # ratio; a boxed column whose full range cannot absorb the
            # remaining violation flips to its other bound (the dual
            # ratio having been passed, its reduced cost changes sign),
            # and the next candidate continues the step
            order = np.flatnonzero(candidates)
            ratios = np.clip(d[order] / alpha[order], 0.0, None)
            order = order[np.argsort(ratios, kind="stable")]
            remaining = delta
            entering = -1
            flips: list[int] = []
            for q in order:
                absorb = abs(alpha[q]) * (self.hi[q] - self.lo[q])
                if absorb < remaining:
                    flips.append(int(q))
                    remaining -= absorb
                else:
                    entering = int(q)
                    break
            if entering < 0:
                raise _WarmRestartFailed("violation exceeds flip capacity")
            for q in flips:
                gap = self.hi[q] - self.lo[q]
                w = self._ftran(self._column(q))
                if self.at_upper[q]:
                    self.x[q] = self.lo[q]
                    self.at_upper[q] = False
                    self.xB += w * gap
                else:
                    self.x[q] = self.hi[q]
                    self.at_upper[q] = True
                    self.xB -= w * gap
                self.pivots += 1

            tau = remaining / alpha[entering]
            value = self.x[entering] + tau
            if not (self.lo[entering] - _FEAS_TOL
                    <= value <= self.hi[entering] + _FEAS_TOL):
                raise _WarmRestartFailed("dual step left its bound range")
            w = self._ftran(self._column(entering))
            self.xB -= w * tau
            theta = float(d[entering] / alpha[entering])
            self._install(leave_row, entering, value,
                          leaving_to_upper=not is_below, w=w)
            if self._etas:
                # the orientation sign cancels in the rank-one update
                # (theta and alpha both carry it), and the leaving
                # column falls out of the same formula via alpha = +-1
                d -= theta * alpha
                d[self.basis] = 0.0
            else:  # a refactorization just happened: recompute exactly
                d = self._reduced_costs(pricing)

    # -- results ----------------------------------------------------------
    def solution_values(self) -> np.ndarray:
        x = self.x.copy()
        x[self.basis] = self.xB
        # snap to a 1e-9 grid: cold and warm runs reach the same vertex
        # but along different pivot paths, and ~1e-15 arithmetic noise
        # on a value that is analytically exactly .5 would otherwise
        # flip the planners' rounding between the two
        return np.round(x[: self.n], 9)

    def duals(self) -> np.ndarray:
        """Row prices ``y = B^-T c_B`` for the ``<=`` rows.

        Same convention as the HiGHS marginals: the derivative of the
        *minimized* objective with respect to ``b_ub``.
        """
        y = self._btran(self.cost[self.basis])
        return np.asarray(y[: self.m_ub], dtype=float)

    def verify(self) -> None:
        """Cheap invariant check after a warm restart."""
        x = self.x.copy()
        x[self.basis] = self.xB
        scale = 1.0 + float(np.abs(self.b).max(initial=0.0))
        if np.abs(self.A @ x - self.b).max(initial=0.0) > 1e-6 * scale:
            raise _WarmRestartFailed("restart left a row residual")
        lo_gap = self.lo - x
        hi_gap = x - self.hi
        if max(lo_gap.max(initial=0.0), hi_gap.max(initial=0.0)) > 1e-6:
            raise _WarmRestartFailed("restart left a bound violation")


# member states of a lockstep batch
_ACTIVE = 0
_DONE = 1
_FALLBACK = 2


class _BatchedSimplex:
    """B same-structure LPs advanced in lockstep as one blocked computation.

    All members share the constraint matrix ``A`` (densified once) and
    bounds; each member has its own right-hand side (one patched RHS
    slot) and optionally its own cost vector.  The basis inverses are
    stacked into a ``(B, m, m)`` tensor (``numpy.linalg.inv`` is a true
    gufunc, so the refactorization is one C-level batched call — the
    scipy ``lu_solve`` route loops members in Python, which dominated
    the round cost), with a shared product-form eta file whose layers
    carry one ``(row, w)`` update per member per pivot round (identity
    layers for members that flipped a bound, converged, or fell back).
    The exit verification plus the scalar fallback keep the explicit
    inverse safe: a member whose basis is too ill-conditioned for it
    simply leaves the lockstep.

    Every member replays the *exact* pivot rules of
    :class:`_RevisedSimplex.solve` — slack-basis start, Dantzig pricing
    over the tie-perturbed costs, bound flips, the ``argmax |step|``
    ratio-test tie-break, per-member Bland's rule after a degenerate
    run, and the unperturbed-cost retry on apparent unboundedness — so
    a converged member lands on the same generically-unique perturbed
    vertex as a cold scalar solve.  Members the lockstep cannot finish
    (artificial columns needed, iteration limit, singular refactor, or
    a failed exit verification) are marked ``_FALLBACK`` and re-solved
    exactly by the caller with the scalar engine.
    """

    def __init__(
        self,
        form: StandardForm,
        row: int,
        rhs_values: np.ndarray,
        name: str,
        max_iterations: int,
        costs: np.ndarray | None = None,
    ) -> None:
        if form.a_eq.shape[0]:
            raise SolverError(
                "lockstep batching requires pure-inequality forms",
                status="unsupported",
            )
        template = _RevisedSimplex(form, name, max_iterations)
        self.name = name
        self.max_iterations = max_iterations
        self.n = template.n
        self.m_ub = template.m_ub
        self.m = template.m
        rhs = np.asarray(rhs_values, dtype=float)
        self.B = int(rhs.shape[0])
        self.A = template.A.toarray()
        a_csc = template.A.tocsc()
        self._col_indptr = a_csc.indptr
        self._col_indices = a_csc.indices
        self._col_data = a_csc.data
        self.ncols = self.A.shape[1]
        self.lo = template.lo
        self.hi = template.hi
        self.free = template.free
        self.movable = self.hi > self.lo

        if costs is None:
            self.cost = np.tile(template.cost, (self.B, 1))
            self.tie = np.tile(template.tie, (self.B, 1))
        else:
            costs = np.asarray(costs, dtype=float)
            self.cost = np.zeros((self.B, self.ncols))
            self.cost[:, : self.n] = costs
            scale = np.maximum(1.0, np.abs(self.cost).max(axis=1))
            spread = np.modf((np.arange(self.ncols) + 1.0) * _GOLDEN)[0]
            self.tie = _TIE_BREAK * scale[:, None] * (0.5 + spread)[None, :]

        self.b = np.tile(template.b, (self.B, 1))
        self.b[:, row] = rhs

        # shared slack-basis start point (the scalar engine's, verbatim)
        self.x = np.tile(template.x, (self.B, 1))
        self.at_upper = np.tile(template.at_upper, (self.B, 1))
        self.basis = np.tile(
            self.n + np.arange(self.m, dtype=np.int64), (self.B, 1)
        )
        self.in_basis = np.zeros((self.B, self.ncols), dtype=bool)
        self.in_basis[:, self.n:] = True
        self.xB = np.zeros((self.B, self.m))

        # members whose slack basis cannot absorb the start residual
        # would need phase-1 artificials; they fall straight back to
        # the scalar two-phase engine
        residual = self.b - (self.A @ template.x)[None, :]
        self.status = np.full(self.B, _ACTIVE, dtype=np.int8)
        self.status[(residual < 0).any(axis=1)] = _FALLBACK

        self._ar = np.arange(self.B)
        self._binv = None
        self.unperturbed = np.zeros(self.B, dtype=bool)
        self.iterations = np.zeros(self.B, dtype=np.int64)
        self.member_pivots = np.zeros(self.B, dtype=np.int64)
        self.bland_counts = np.zeros(self.B, dtype=np.int64)
        self.lockstep_iterations = 0

    # -- stacked linear algebra -----------------------------------------
    def _refactor(self) -> None:
        if (self.basis == self.n + np.arange(self.m)).all() and (
            np.array_equal(self.A[:, self.n:], np.eye(self.m))
        ):
            # the shared slack start: every basis matrix is the identity
            self._binv = np.tile(np.eye(self.m), (self.B, 1, 1))
            return
        mats = np.ascontiguousarray(
            self.A[:, self.basis].transpose(1, 0, 2)
        )
        self._binv = np.linalg.inv(mats)

    def _ftran(self, V: np.ndarray) -> np.ndarray:
        """Per-member ``B^-1 v`` against the stacked explicit inverse."""
        return np.matmul(self._binv, V[:, :, None])[..., 0]

    def _btran(self, V: np.ndarray) -> np.ndarray:
        """Per-member ``B^-T v`` against the stacked explicit inverse."""
        return np.matmul(V[:, None, :], self._binv)[:, 0, :]

    def _recompute_xB(self) -> None:
        xnb = self.x.copy()
        np.put_along_axis(xnb, self.basis, 0.0, axis=1)
        self.xB = self._ftran(self.b - xnb @ self.A.T)

    def _reduced_costs(self, C: np.ndarray) -> np.ndarray:
        cB = np.take_along_axis(C, self.basis, axis=1)
        d = C - self._btran(cB) @ self.A
        np.put_along_axis(d, self.basis, 0.0, axis=1)
        return d

    def _exact_reduced_costs(self, P: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Fresh (non-incremental) reduced costs for the ``idx`` members."""
        cB = np.take_along_axis(P[idx], self.basis[idx], axis=1)
        y = np.matmul(cB[:, None, :], self._binv[idx])[:, 0, :]
        d = P[idx] - y @ self.A
        np.put_along_axis(d, self.basis[idx], 0.0, axis=1)
        return d

    # -- the lockstep loop ----------------------------------------------
    def run(self) -> None:
        """Advance every active member to optimality (or fallback)."""
        if not (self.status == _ACTIVE).any():
            return
        try:
            self._refactor()
        except LinAlgError:  # pragma: no cover - defensive
            self.status[self.status == _ACTIVE] = _FALLBACK
            return
        self._recompute_xB()

        ar = self._ar
        P = self.cost + self.tie  # per-member pricing (mutable)
        degrun = np.zeros(self.B, dtype=np.int64)
        bland = np.zeros(self.B, dtype=bool)
        # reduced costs are maintained incrementally across pivots (the
        # textbook d' = d - (d_q / alpha_r) * alpha update); members are
        # reconfirmed against an exact recompute before being declared
        # optimal, so update drift can cost extra rounds but never a
        # wrong vertex
        D = self._reduced_costs(P)
        pivots_since_refactor = 0

        def _candidates():
            active_cols = (
                self.movable[None, :] & ~self.in_basis & alive[:, None]
            )
            inc = (
                active_cols
                & (~self.at_upper | self.free[None, :])
                & (D < -_OPT_TOL)
            )
            dec = (
                active_cols
                & (self.at_upper | self.free[None, :])
                & (D > _OPT_TOL)
            )
            return inc, dec

        while True:
            alive = self.status == _ACTIVE
            if not alive.any():
                break
            self.lockstep_iterations += 1
            if self.lockstep_iterations > self.max_iterations:
                self.status[alive] = _FALLBACK
                break
            self.iterations[alive] += 1

            enter_inc, enter_dec = _candidates()
            cand = enter_inc | enter_dec
            has_cand = cand.any(axis=1)
            finished = alive & ~has_cand
            if finished.any():
                # reconfirm optimality on exact reduced costs
                idx = np.flatnonzero(finished)
                D[idx] = self._exact_reduced_costs(P, idx)
                enter_inc, enter_dec = _candidates()
                cand = enter_inc | enter_dec
                has_cand = cand.any(axis=1)
            self.status[alive & ~has_cand] = _DONE
            alive = alive & has_cand
            if not alive.any():
                continue

            score = np.where(enter_inc, -D, 0.0)
            np.maximum(score, np.where(enter_dec, D, 0.0), out=score)
            entering = np.where(
                bland, np.argmax(cand, axis=1), np.argmax(score, axis=1)
            )
            sigma = np.where(enter_inc[ar, entering], 1.0, -1.0)

            # per-member B^-1 a_q through the sparse column pattern: the
            # entering columns have a handful of nonzeros each, so
            # gathering those inverse columns beats a dense batched
            # matmul (a full (B, m, m) read) by the column sparsity
            W = np.zeros((self.B, self.m))
            indptr = self._col_indptr
            indices = self._col_indices
            data = self._col_data
            for member in np.flatnonzero(alive):
                j = entering[member]
                lo_p, hi_p = indptr[j], indptr[j + 1]
                W[member] = self._binv[member][:, indices[lo_p:hi_p]] @ (
                    data[lo_p:hi_p]
                )
            step = sigma[:, None] * W
            lo_b = self.lo[self.basis]
            hi_b = self.hi[self.basis]
            ratios = np.full((self.B, self.m), np.inf)
            dec = step > _PIVOT_TOL
            ratios[dec] = (self.xB - lo_b)[dec] / step[dec]
            inc = step < -_PIVOT_TOL
            ratios[inc] = (hi_b - self.xB)[inc] / (-step[inc])
            np.clip(ratios, 0.0, None, out=ratios)
            row_min = ratios.min(axis=1)
            gap = self.hi[entering] - self.lo[entering]

            # apparent unboundedness: retry with true costs once (the
            # scalar engine's recession-direction re-check), then give
            # up to the scalar fallback
            unbounded = alive & ~(np.minimum(row_min, gap) < np.inf)
            if unbounded.any():
                retry = unbounded & ~self.unperturbed
                fail = unbounded & self.unperturbed
                self.unperturbed[retry] = True
                P[retry] = self.cost[retry]
                self.status[fail] = _FALLBACK
                if retry.any():
                    # the pricing vector changed; the maintained reduced
                    # costs are stale for the retried members
                    idx = np.flatnonzero(retry)
                    D[idx] = self._exact_reduced_costs(P, idx)

            stepping = alive & ~unbounded
            flip = stepping & (gap <= row_min)
            pivot = stepping & ~flip

            tied = ratios <= (row_min + _RATIO_TIE)[:, None]
            bland_score = np.where(tied, self.basis, np.iinfo(np.int64).max)
            mag = np.where(tied, np.abs(step), -1.0)
            rowsel = np.where(
                bland,
                np.argmin(bland_score, axis=1),
                np.argmax(mag, axis=1),
            )
            t = np.where(flip, gap, ratios[ar, rowsel])

            if stepping.any():
                self.xB[stepping] -= step[stepping] * t[stepping][:, None]
                self.member_pivots[stepping] += 1

            if flip.any():
                idx = np.flatnonzero(flip)
                ent = entering[idx]
                up = sigma[idx] > 0
                self.x[idx, ent] = np.where(up, self.hi[ent], self.lo[ent])
                self.at_upper[idx, ent] = up

            if pivot.any():
                idx = np.flatnonzero(pivot)
                rw = rowsel[idx]
                ent = entering[idx]
                value = self.x[idx, ent] + sigma[idx] * t[idx]
                leaving = self.basis[idx, rw]
                to_upper = step[idx, rw] < 0
                self.x[idx, leaving] = np.where(
                    to_upper, self.hi[leaving], self.lo[leaving]
                )
                self.at_upper[idx, leaving] = to_upper
                self.in_basis[idx, leaving] = False
                self.in_basis[idx, ent] = True

                # pre-update pivot row of B^-1 feeds both the pricing
                # update (alpha = e_r B^-1 A) and the product-form
                # inverse update
                wr = W[idx, rw]
                row = self._binv[idx, rw, :]
                alpha = row @ self.A
                ratio = D[idx, ent] / wr
                Dsub = D[idx] - ratio[:, None] * alpha

                self.basis[idx, rw] = ent
                self.xB[idx, rw] = value
                np.put_along_axis(Dsub, self.basis[idx], 0.0, axis=1)
                D[idx] = Dsub

                # in-place per-member rank-1 inverse updates: dger on the
                # transposed (Fortran) view avoids both the (B', m, m)
                # outer-product temporary and the copy-back a fancy-indexed
                # ``binv[idx] -= ...`` would make
                scaled = row / wr[:, None]
                binv = self._binv
                for position, member in enumerate(idx):
                    dger(
                        -1.0, scaled[position], W[member],
                        a=binv[member].T, overwrite_a=1,
                    )
                self._binv[idx, rw, :] = scaled

                pivots_since_refactor += 1
                if pivots_since_refactor >= _LOCKSTEP_REFACTOR_EVERY:
                    pivots_since_refactor = 0
                    try:
                        self._refactor()
                    except LinAlgError:  # pragma: no cover - defensive
                        self.status[self.status == _ACTIVE] = _FALLBACK
                        break
                    self._recompute_xB()
                    D = self._reduced_costs(P)

            degenerate = stepping & (t <= _RATIO_TIE)
            degrun[degenerate] += 1
            newly = degenerate & ~bland & (degrun >= _BLAND_AFTER)
            bland[newly] = True
            self.bland_counts[newly] += 1
            progressed = stepping & ~degenerate
            degrun[progressed] = 0
            bland[progressed] = False

        self._verify_done()

    def _verify_done(self) -> None:
        """The scalar engine's exit invariants, batched; violating
        members are downgraded to the scalar fallback."""
        done = self.status == _DONE
        if not done.any():
            return
        xfull = self.x.copy()
        np.put_along_axis(xfull, self.basis, self.xB, axis=1)
        scale = 1.0 + np.abs(self.b).max(axis=1)
        bad = (
            np.abs(xfull @ self.A.T - self.b).max(axis=1) > 1e-6 * scale
        )
        lo_gap = (self.lo[None, :] - xfull).max(axis=1)
        hi_gap = (xfull - self.hi[None, :]).max(axis=1)
        bad |= np.maximum(lo_gap, hi_gap) > 1e-6
        self.status[done & bad] = _FALLBACK

    # -- results ----------------------------------------------------------
    def solution_matrix(self) -> np.ndarray:
        """``(B, n)`` structural values on the scalar engine's 1e-9 grid."""
        xfull = self.x.copy()
        np.put_along_axis(xfull, self.basis, self.xB, axis=1)
        return np.round(xfull[:, : self.n], 9)

    def dual_matrix(self) -> np.ndarray:
        """``(B, m_ub)`` row prices against the true (unperturbed) costs."""
        cB = np.take_along_axis(self.cost, self.basis, axis=1)
        return self._btran(cB)[:, : self.m_ub]


class SimplexBackend:
    """Bounded-variable revised simplex over the model's standard form.

    Parameters
    ----------
    max_iterations:
        Pivot budget per solve before raising ``iteration_limit``.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; when set, every
        solve records an ``lp_solve`` event and solve-time histograms,
        and sweeps record ``lp.sweep.*`` counters.
    """

    name = "pure-simplex"

    def __init__(
        self, max_iterations: int = 100_000, instrumentation=None
    ) -> None:
        self.max_iterations = max_iterations
        self.instrumentation = instrumentation

    def solve(self, model: Model) -> Solution:
        return self._solve_compiled(compile_model(model), model.name, model)

    def solve_form(self, form: StandardForm, name: str = "lp") -> Solution:
        """Solve a pre-compiled :class:`StandardForm` (fast-path entry).

        Used by :mod:`repro.lp.fastbuild`; also keeps this backend
        usable as a cross-check oracle for array-level compilers.
        """
        return self._solve_compiled(form, name, None)

    def _solve_compiled(
        self, form: StandardForm, name: str, model: Model | None
    ) -> Solution:
        start = time.perf_counter()
        with maybe_span(
            self.instrumentation, "solve", model=name, backend=self.name
        ) as span:
            engine = _RevisedSimplex(form, name, self.max_iterations)
            iterations = engine.solve()
            span.annotate(iterations=iterations, pivots=engine.pivots)
        return self._finish(
            engine, form, name, model, start,
            iterations=iterations, warm_started=False,
        )

    def _finish(
        self,
        engine: _RevisedSimplex,
        form: StandardForm,
        name: str,
        model: Model | None,
        start: float,
        *,
        iterations: int,
        warm_started: bool,
        bland_activations: int | None = None,
        cold_fallback: bool = False,
    ) -> Solution:
        x = engine.solution_values()
        duals = orient_inequality_duals(engine.duals(), form, model)
        elapsed = time.perf_counter() - start
        stats = SolveStats(
            backend=self.name,
            wall_seconds=elapsed,
            iterations=iterations,
            num_variables=form.num_variables,
            num_constraints=form.a_ub.shape[0] + form.a_eq.shape[0],
            warm_started=warm_started,
            pivots=engine.pivots,
            bland_activations=(
                engine.bland_activations
                if bland_activations is None
                else bland_activations
            ),
            cold_fallback=cold_fallback,
        )
        if self.instrumentation is not None:
            self.instrumentation.record_lp_solve(name, stats)
        return Solution(
            status="optimal",
            objective=form.report_objective(float(form.c @ x)),
            values=x,
            stats=stats,
            inequality_duals=duals,
        )

    def solve_sweep(self, parametric, rhs_values, name: str | None = None):
        """Solve one compiled form for many values of its RHS slot.

        Delegates to :meth:`solve_batch` with automatic strategy
        selection, which keeps RHS-only ladders on the sequential
        dual-simplex warm restarts (first member cold, each later
        member restarted from the previous optimal basis).  Returns
        one :class:`~repro.lp.result.Solution` per value, element-wise
        identical to independent cold solves.
        """
        return self.solve_batch(parametric, rhs_values, name=name)

    def solve_batch(
        self,
        parametric,
        rhs_values,
        name: str | None = None,
        *,
        costs=None,
        strategy: str | None = None,
    ):
        """Solve B same-structure LPs as one blocked computation.

        ``rhs_values`` patches the parametric RHS slot per member;
        ``costs`` (optional ``(B, n)``) overrides the structural cost
        vector per member (minimization sense, like ``form.c``).

        ``strategy`` picks the execution plan:

        - ``"lockstep"`` — the truly vectorized :class:`_BatchedSimplex`
          (stacked basis inverses, incremental batched pricing,
          per-member scalar fallback preserving exactness);
        - ``"sequential"`` — one scalar engine, warm-starting each
          member from the previous optimal basis (cold per member when
          ``costs`` differ, since the basis is then not dual-feasible);
        - ``None`` (default) — lockstep for per-member-``costs``
          batches of at least ``_LOCKSTEP_MIN_MEMBERS``
          pure-inequality members whose stacked inverses fit the
          memory budget; sequential otherwise.  RHS-only ladders stay
          sequential deliberately: dual warm restarts re-solve each
          member in a handful of pivots, which measures faster than a
          cold vectorized pass at every instance size we benchmark,
          while per-member cost vectors invalidate warm bases and make
          the sequential path fall back to cold solves — exactly the
          regime the lockstep engine wins (see
          ``benchmarks/bench_lpbatch.py``).

        Either way the returned solutions are element-wise identical to
        independent cold solves (same 1e-9 value grid, same rounded
        plans).
        """
        label = name or parametric.name
        rhs = np.atleast_1d(np.asarray(rhs_values, dtype=float))
        if rhs.size == 0:
            return []
        form = parametric.compiled.form
        m = form.a_ub.shape[0] + form.a_eq.shape[0]
        if strategy is None:
            eligible = (
                costs is not None
                and rhs.size >= _LOCKSTEP_MIN_MEMBERS
                and form.a_eq.shape[0] == 0
                and 0 < m <= _LOCKSTEP_MAX_ROWS
                and rhs.size * m * m * 8 <= _LOCKSTEP_MAX_BYTES
            )
            strategy = "lockstep" if eligible else "sequential"
        if strategy == "lockstep":
            return self._solve_batch_lockstep(parametric, rhs, label, costs)
        if strategy != "sequential":
            raise SolverError(
                f"unknown batch strategy {strategy!r}", status="unsupported"
            )
        return self._solve_sweep_sequential(parametric, rhs, label, costs)

    def _solve_batch_lockstep(self, parametric, rhs, label, costs):
        """The vectorized path: one lockstep engine, scalar fallbacks."""
        form = parametric.compiled.form
        num_members = int(rhs.shape[0])
        start = time.perf_counter()
        with maybe_span(
            self.instrumentation, "batch.solve",
            model=label, backend=self.name, members=num_members,
        ) as span:
            engine = _BatchedSimplex(
                form, parametric.row, rhs, label,
                self.max_iterations, costs=costs,
            )
            engine.run()
            done = engine.status == _DONE
            values = engine.solution_matrix()
            duals = engine.dual_matrix()
            span.annotate(
                lockstep_iterations=engine.lockstep_iterations,
                cold_fallbacks=int(num_members - done.sum()),
            )
        share = (time.perf_counter() - start) / num_members
        num_constraints = form.a_ub.shape[0] + form.a_eq.shape[0]
        solutions: list[Solution | None] = [None] * num_members
        for i in np.flatnonzero(done):
            x = values[i]
            cost_i = (
                form.c if costs is None else np.asarray(costs[i], dtype=float)
            )
            stats = SolveStats(
                backend=self.name,
                wall_seconds=share,
                iterations=int(engine.iterations[i]),
                num_variables=form.num_variables,
                num_constraints=num_constraints,
                warm_started=False,
                pivots=int(engine.member_pivots[i]),
                bland_activations=int(engine.bland_counts[i]),
            )
            solutions[i] = Solution(
                status="optimal",
                objective=form.report_objective(float(cost_i @ x)),
                values=x,
                stats=stats,
                inequality_duals=orient_inequality_duals(
                    duals[i], form, None
                ),
            )
        fallback = np.flatnonzero(~done)
        for i in fallback:
            patched = parametric.form_for_rhs(float(rhs[i]))
            if costs is not None:
                patched = replace(
                    patched, c=np.asarray(costs[i], dtype=float)
                )
            member_start = time.perf_counter()
            scalar = _RevisedSimplex(patched, label, self.max_iterations)
            iterations = scalar.solve()
            solutions[i] = self._finish(
                scalar, patched, label, None, member_start,
                iterations=iterations, warm_started=False,
                cold_fallback=True,
            )
        if self.instrumentation is not None:
            self.instrumentation.record_lp_batch(
                label,
                members=num_members,
                lockstep_iterations=engine.lockstep_iterations,
                cold_fallbacks=int(fallback.size),
                bland_activations=int(engine.bland_counts.sum()),
                seconds=time.perf_counter() - start,
            )
        return solutions

    def _solve_sweep_sequential(self, parametric, rhs, label, costs=None):
        """The warm-restart path: first member cold, later members
        restarted from the previous optimal basis (cold per member
        when ``costs`` differ — the old basis is not dual-feasible for
        a changed objective)."""
        form = parametric.compiled.form
        row = parametric.row
        solutions: list[Solution] = []
        engine: _RevisedSimplex | None = None
        cold_pivots = 0
        warm_hits = 0
        pivots_saved = 0
        cold_fallbacks = 0
        bland_total = 0
        sweep_start = time.perf_counter()
        for index, rhs_value in enumerate(rhs):
            start = time.perf_counter()
            warm = False
            fell_back = False
            member_form = form
            iterations = 0
            with maybe_span(
                self.instrumentation, "sweep.member",
                model=label, rhs=float(rhs_value),
            ) as span:
                if costs is not None:
                    engine = None
                if engine is not None:
                    pivots_before = engine.pivots
                    bland_before = engine.bland_activations
                    try:
                        iterations = engine.resolve(row, float(rhs_value))
                        engine.verify()
                        warm = True
                        warm_hits += 1
                        pivots_saved += max(
                            0, cold_pivots - (engine.pivots - pivots_before)
                        )
                    except _WarmRestartFailed:
                        engine = None
                        fell_back = True
                        cold_fallbacks += 1
                if engine is None:
                    patched = parametric.form_for_rhs(float(rhs_value))
                    if costs is not None:
                        patched = replace(
                            patched, c=np.asarray(costs[index], dtype=float)
                        )
                        member_form = patched
                    engine = _RevisedSimplex(
                        patched, label, self.max_iterations
                    )
                    pivots_before = engine.pivots
                    bland_before = engine.bland_activations
                    iterations = engine.solve()
                    cold_pivots = engine.pivots
                member_pivots = engine.pivots - pivots_before
                member_bland = engine.bland_activations - bland_before
                bland_total += member_bland
                span.annotate(
                    mode="warm" if warm else "cold", pivots=member_pivots
                )
            member = self._finish(
                engine, member_form, label, None, start,
                iterations=iterations, warm_started=warm,
                bland_activations=member_bland, cold_fallback=fell_back,
            )
            member.stats.pivots = member_pivots
            solutions.append(member)
        if self.instrumentation is not None:
            self.instrumentation.record_lp_sweep(
                label,
                members=len(solutions),
                warm_hits=warm_hits,
                pivots_saved=pivots_saved,
                bland_activations=bland_total,
                cold_fallbacks=cold_fallbacks,
                seconds=time.perf_counter() - sweep_start,
            )
        return solutions
