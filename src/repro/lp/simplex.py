"""A self-contained revised-simplex solver with warm-started re-solves.

This backend exists so the library does not take the production solver
on faith: tests cross-check :class:`~repro.lp.scipy_backend.ScipyBackend`
against this independent implementation on every formulation.

The engine is a bounded-variable revised simplex over the standard-form
arrays: variable bounds (including free and fixed variables) are handled
natively instead of being rewritten into extra rows, the basis is kept
as an LU factorization (:func:`scipy.linalg.lu_factor`) refreshed every
few dozen pivots with product-form eta updates in between, and pricing
is one vectorized reduced-cost pass per iteration (Dantzig's rule, with
Bland's rule engaged after a run of degenerate pivots so cycling
candidates still terminate).  Phase 1 only introduces artificial
columns for rows the slack basis cannot satisfy, so the PROSPECTOR
formulations — all ``<=`` rows with a feasible all-lower-bounds point —
cold-start directly in phase 2.

Because the factorized basis persists, the engine also supports the
parametric sweeps of :mod:`repro.lp.fastbuild`: when only one
right-hand-side entry changes between solves the optimal basis stays
dual-feasible, so :meth:`SimplexBackend.solve_sweep` re-solves each
sweep member with a dual-simplex restart from the previous optimum — a
handful of pivots instead of a cold run (``warm_started``/``pivots`` in
the returned :class:`~repro.lp.result.SolveStats`).
"""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse
from scipy.linalg import LinAlgError, lu_factor, lu_solve

from repro.errors import SolverError
from repro.lp.model import Model
from repro.lp.result import Solution, SolveStats
from repro.lp.standard_form import (
    StandardForm,
    compile_model,
    orient_inequality_duals,
)
from repro.obs.spans import maybe_span

_OPT_TOL = 1e-9          # reduced-cost threshold for entering candidates
_FEAS_TOL = 1e-8         # bound-violation threshold (primal feasibility)
_PIVOT_TOL = 1e-10       # minimum acceptable pivot magnitude
_PHASE1_TOL = 1e-6       # residual artificial mass that means infeasible
_RATIO_TIE = 1e-9        # ratio-test tie window
_REFACTOR_EVERY = 64     # eta-file length before a fresh LU
_BLAND_AFTER = 24        # consecutive degenerate pivots before Bland
_TIE_BREAK = 1e-7        # pricing perturbation that pins a unique vertex
_GOLDEN = 0.6180339887498949


class _WarmRestartFailed(Exception):
    """Internal: the dual restart could not finish; fall back to cold."""


class _RevisedSimplex:
    """One LP instance with restartable basis state.

    Holds the computational form ``A x = b`` with ``A = [[A_ub, I],
    [A_eq, 0]]`` over structural + slack (+ late artificial) columns,
    the current basis and its factorization.  ``solve()`` runs the cold
    two-phase primal simplex; ``resolve(row, rhs)`` patches one entry
    of ``b`` and restarts the dual simplex from the current optimal
    basis, which stays dual-feasible because costs and columns are
    untouched.
    """

    def __init__(self, form: StandardForm, name: str, max_iterations: int) -> None:
        self.name = name
        self.max_iterations = max_iterations
        n = form.num_variables
        m_ub = form.a_ub.shape[0]
        m_eq = form.a_eq.shape[0]
        self.n = n
        self.m_ub = m_ub
        self.m = m_ub + m_eq
        self.cost = np.concatenate([np.asarray(form.c, dtype=float),
                                    np.zeros(m_ub)])
        # Degenerate formulations have whole faces of alternate optima,
        # and a warm restart may reach a different optimal vertex than a
        # cold run.  Phase-2 pricing therefore minimizes ``cost + tie``,
        # a deterministic per-column perturbation (golden-ratio spread,
        # so no two columns or small combinations cancel) that makes the
        # optimal vertex generically unique: cold solves and warm sweep
        # restarts land on the *same* vertex.  Objectives and duals are
        # still reported against the true ``cost``.
        ncols = n + m_ub
        scale = max(1.0, float(np.abs(self.cost).max(initial=0.0)))
        spread = np.modf((np.arange(ncols) + 1.0) * _GOLDEN)[0]
        self.tie = _TIE_BREAK * scale * (0.5 + spread)
        self.b = np.concatenate([form.b_ub, form.b_eq]).astype(float)

        blocks = []
        if m_ub:
            blocks.append(sparse.hstack(
                [form.a_ub, sparse.identity(m_ub, format="csc")], format="csc"
            ))
        if m_eq:
            blocks.append(sparse.hstack(
                [form.a_eq, sparse.csc_matrix((m_eq, m_ub))], format="csc"
            ))
        if blocks:
            self.A = sparse.vstack(blocks, format="csc")
        else:
            self.A = sparse.csc_matrix((0, n + m_ub))

        self.lo = np.zeros(n + m_ub)
        self.hi = np.full(n + m_ub, np.inf)
        for i, (lb, ub) in enumerate(form.bounds):
            self.lo[i] = -np.inf if lb is None else float(lb)
            self.hi[i] = np.inf if ub is None else float(ub)
        self.free = np.isneginf(self.lo) & np.isposinf(self.hi)

        # nonbasic start point: finite lower bound, else finite upper
        # bound, else 0 for free columns
        self.x = np.where(np.isfinite(self.lo), self.lo,
                          np.where(np.isfinite(self.hi), self.hi, 0.0))
        self.at_upper = ~np.isfinite(self.lo) & np.isfinite(self.hi)

        self.allowed = np.ones(n + m_ub, dtype=bool)  # may enter the basis
        self.in_basis = np.zeros(n + m_ub, dtype=bool)
        self.basis = np.zeros(self.m, dtype=np.int64)
        self.xB = np.zeros(self.m)
        self._lu = None
        self._etas: list[tuple[int, np.ndarray]] = []
        self.pivots = 0

    # -- linear algebra over the factorized basis -----------------------
    def _refactor(self) -> None:
        self._etas = []
        if self.m == 0:
            self._lu = None
            return
        dense = self.A[:, self.basis].toarray()
        try:
            self._lu = lu_factor(dense, check_finite=False)
        except LinAlgError as err:  # pragma: no cover - defensive
            raise SolverError(
                f"LP {self.name!r} produced a singular basis",
                status="numerical",
            ) from err

    def _ftran(self, v: np.ndarray) -> np.ndarray:
        """``B^-1 v`` through the LU factors and the eta file."""
        if self.m == 0:
            return v
        z = lu_solve(self._lu, v, check_finite=False)
        for row, w in self._etas:
            t = z[row] / w[row]
            z -= w * t
            z[row] = t
        return z

    def _btran(self, v: np.ndarray) -> np.ndarray:
        """``B^-T v`` — etas applied in reverse, then the transposed LU."""
        if self.m == 0:
            return v
        u = np.array(v, dtype=float)
        for row, w in reversed(self._etas):
            u[row] = (u[row] - w @ u + w[row] * u[row]) / w[row]
        return lu_solve(self._lu, u, trans=1, check_finite=False)

    def _column(self, j: int) -> np.ndarray:
        start, end = self.A.indptr[j], self.A.indptr[j + 1]
        col = np.zeros(self.m)
        col[self.A.indices[start:end]] = self.A.data[start:end]
        return col

    def _recompute_xB(self) -> None:
        """Fresh basic values from the nonbasic point (kills eta drift)."""
        x = self.x.copy()
        x[self.basis] = 0.0
        self.xB = self._ftran(self.b - self.A @ x)

    def _push_eta(self, row: int, w: np.ndarray) -> None:
        self._etas.append((row, w))
        self.pivots += 1
        if len(self._etas) >= _REFACTOR_EVERY:
            self._refactor()
            self._recompute_xB()

    # -- shared pivot bookkeeping ---------------------------------------
    def _install(self, row: int, entering: int, value: float,
                 leaving_to_upper: bool, w: np.ndarray) -> None:
        leaving = self.basis[row]
        bound = self.hi[leaving] if leaving_to_upper else self.lo[leaving]
        self.x[leaving] = bound
        self.at_upper[leaving] = leaving_to_upper
        self.in_basis[leaving] = False
        self.in_basis[entering] = True
        self.basis[row] = entering
        self.xB[row] = value
        self._push_eta(row, w)

    def _reduced_costs(self, cost: np.ndarray) -> np.ndarray:
        y = self._btran(cost[self.basis])
        d = cost - self.A.T @ y
        d[self.basis] = 0.0
        return d

    # -- primal simplex --------------------------------------------------
    def _primal(self, cost: np.ndarray, iterations: int) -> int:
        """Minimize ``cost`` from the current (primal-feasible) basis."""
        movable = self.allowed & (self.hi > self.lo)
        bland = False
        degenerate_run = 0
        while True:
            iterations += 1
            if iterations > self.max_iterations:
                raise SolverError("simplex iteration limit exceeded",
                                  status="iteration_limit")
            d = self._reduced_costs(cost)
            active = movable & ~self.in_basis
            enter_inc = active & (~self.at_upper | self.free) & (d < -_OPT_TOL)
            enter_dec = active & (self.at_upper | self.free) & (d > _OPT_TOL)
            candidates = enter_inc | enter_dec
            if not candidates.any():
                return iterations
            if bland:
                entering = int(np.flatnonzero(candidates)[0])
            else:
                score = np.where(enter_inc, -d, 0.0)
                score = np.maximum(score, np.where(enter_dec, d, 0.0))
                entering = int(np.argmax(score))
            sigma = 1.0 if enter_inc[entering] else -1.0

            w = self._ftran(self._column(entering))
            step = sigma * w
            lo_b = self.lo[self.basis]
            hi_b = self.hi[self.basis]
            ratios = np.full(self.m, np.inf)
            dec = step > _PIVOT_TOL
            ratios[dec] = (self.xB[dec] - lo_b[dec]) / step[dec]
            inc = step < -_PIVOT_TOL
            ratios[inc] = (hi_b[inc] - self.xB[inc]) / (-step[inc])
            np.clip(ratios, 0.0, None, out=ratios)
            row_min = float(ratios.min()) if self.m else np.inf
            gap = self.hi[entering] - self.lo[entering]
            if min(row_min, gap) == np.inf:
                raise SolverError("LP unbounded", status="unbounded")

            if gap <= row_min:
                # the entering column flips to its other bound
                self.xB -= step * gap
                self.x[entering] = (
                    self.hi[entering] if sigma > 0 else self.lo[entering]
                )
                self.at_upper[entering] = sigma > 0
                self.pivots += 1
                t = gap
            else:
                tied = np.flatnonzero(ratios <= row_min + _RATIO_TIE)
                if bland:
                    row = int(tied[np.argmin(self.basis[tied])])
                else:
                    row = int(tied[np.argmax(np.abs(step[tied]))])
                t = float(ratios[row])
                value = self.x[entering] + sigma * t
                self.xB -= step * t
                self._install(row, entering, value,
                              leaving_to_upper=step[row] < 0, w=w)
            if t <= _RATIO_TIE:
                degenerate_run += 1
                bland = bland or degenerate_run >= _BLAND_AFTER
            else:
                degenerate_run = 0
                bland = False

    # -- phase 1 ----------------------------------------------------------
    def _start_basis(self) -> None:
        """Slack basis where feasible; artificial columns elsewhere.

        Rows whose slack can absorb the residual (``<=`` rows with a
        non-negative residual at the nonbasic start point) take their
        slack; every other row gets a signed artificial column so the
        initial basic point is feasible by construction.
        """
        residual = self.b - self.A @ self.x
        art_rows: list[int] = []
        art_signs: list[float] = []
        for row in range(self.m):
            if row < self.m_ub and residual[row] >= 0:
                slack = self.n + row
                self.basis[row] = slack
                self.in_basis[slack] = True
                self.xB[row] = residual[row] - self.x[slack]
            else:
                art_rows.append(row)
                art_signs.append(1.0 if residual[row] >= 0 else -1.0)

        self.num_art = len(art_rows)
        if not self.num_art:
            self._refactor()
            self._recompute_xB()
            return
        art_block = sparse.csc_matrix(
            (np.asarray(art_signs), (np.asarray(art_rows, dtype=np.int64),
                                     np.arange(self.num_art))),
            shape=(self.m, self.num_art),
        )
        base_cols = self.A.shape[1]
        self.A = sparse.hstack([self.A, art_block], format="csc")
        self.cost = np.concatenate([self.cost, np.zeros(self.num_art)])
        self.tie = np.concatenate([self.tie, np.zeros(self.num_art)])
        self.lo = np.concatenate([self.lo, np.zeros(self.num_art)])
        self.hi = np.concatenate([self.hi, np.full(self.num_art, np.inf)])
        self.free = np.concatenate(
            [self.free, np.zeros(self.num_art, dtype=bool)]
        )
        self.x = np.concatenate([self.x, np.zeros(self.num_art)])
        self.at_upper = np.concatenate(
            [self.at_upper, np.zeros(self.num_art, dtype=bool)]
        )
        # artificials may never (re-)enter the basis
        self.allowed = np.concatenate(
            [self.allowed, np.zeros(self.num_art, dtype=bool)]
        )
        self.in_basis = np.concatenate(
            [self.in_basis, np.zeros(self.num_art, dtype=bool)]
        )
        for position, row in enumerate(art_rows):
            col = base_cols + position
            self.basis[row] = col
            self.in_basis[col] = True
        self._refactor()
        self._recompute_xB()

    def _drive_out_artificials(self) -> None:
        """Pivot lingering zero-valued artificials out where possible.

        A row whose artificial admits no nonzero pivot over the real
        columns is linearly redundant; its artificial stays basic,
        pinned at zero by its (now closed) bounds.
        """
        art_start = self.n + self.m_ub
        self.lo[art_start:] = 0.0
        self.hi[art_start:] = 0.0
        for row in range(self.m):
            if self.basis[row] < art_start:
                continue
            rho = np.zeros(self.m)
            rho[row] = 1.0
            alpha = self.A.T @ self._btran(rho)
            alpha[self.in_basis] = 0.0
            alpha[art_start:] = 0.0
            entering = int(np.argmax(np.abs(alpha)))
            if abs(alpha[entering]) <= _PIVOT_TOL:
                continue  # redundant row
            w = self._ftran(self._column(entering))
            self._install(row, entering, self.x[entering],
                          leaving_to_upper=False, w=w)

    # -- cold and warm entry points --------------------------------------
    def solve(self) -> int:
        """Cold two-phase run; returns the iteration count."""
        self._start_basis()
        iterations = 0
        if self.num_art:
            phase1 = np.zeros(self.A.shape[1])
            phase1[self.n + self.m_ub:] = 1.0
            iterations = self._primal(phase1, iterations)
            infeasibility = float(phase1[self.basis] @ self.xB)
            if infeasibility > _PHASE1_TOL:
                raise SolverError(
                    f"LP {self.name!r} infeasible"
                    f" (phase-1 = {infeasibility:g})",
                    status="infeasible",
                )
            self._drive_out_artificials()
        try:
            return self._primal(self.cost + self.tie, iterations)
        except SolverError as err:
            if err.status != "unbounded":
                raise
            # a zero-cost recession direction can look unbounded under
            # the perturbed pricing; re-check against the true costs
            # (vertex uniqueness is lost, but correctness is not)
            return self._primal(self.cost, iterations)

    def resolve(self, row: int, rhs: float) -> int:
        """Dual-simplex restart after patching ``b[row] = rhs``.

        The basis from the previous optimum stays dual-feasible (costs
        and columns are unchanged), so only primal feasibility must be
        restored: repeatedly drop the most bound-violating basic
        variable and re-enter the nonbasic column that keeps the
        reduced costs correctly signed.  Raises
        :class:`_WarmRestartFailed` when a long step would be needed or
        the restart stalls; callers fall back to a cold solve.
        """
        self.b = self.b.copy()
        self.b[row] = rhs
        self._recompute_xB()
        pricing = self.cost + self.tie
        # dual reduced costs, updated incrementally per pivot (the
        # pivot row is already in hand); refreshed from scratch after
        # every refactorization to kill drift
        d = self._reduced_costs(pricing)
        iterations = 0
        limit = min(self.max_iterations, max(200, 2 * self.m))
        while True:
            iterations += 1
            if iterations > limit:
                raise _WarmRestartFailed("dual restart stalled")
            lo_b = self.lo[self.basis]
            hi_b = self.hi[self.basis]
            below = lo_b - self.xB
            above = self.xB - hi_b
            violation = np.maximum(below, above)
            leave_row = int(np.argmax(violation)) if self.m else 0
            if self.m == 0 or violation[leave_row] <= _FEAS_TOL:
                # primal feasibility restored; polish with the primal
                # simplex so any residual dual infeasibility (drift in
                # the incremental reduced costs, or a ratio-test tie)
                # cannot park the restart at a different vertex than a
                # cold solve would reach
                try:
                    return self._primal(pricing, iterations)
                except SolverError as err:
                    raise _WarmRestartFailed(
                        f"post-restart polish failed: {err}"
                    ) from err
            is_below = below[leave_row] >= above[leave_row]

            # alpha in a unified orientation: positive entries are
            # columns whose *increase* shrinks the violation
            rho = np.zeros(self.m)
            rho[leave_row] = 1.0
            alpha = self.A.T @ self._btran(rho)
            if is_below:
                alpha = -alpha
            delta = float(violation[leave_row])
            movable = self.allowed & (self.hi > self.lo) & ~self.in_basis
            from_lower = movable & (~self.at_upper | self.free)
            from_upper = movable & (self.at_upper | self.free)
            candidates = (from_lower & (alpha > _PIVOT_TOL)) | (
                from_upper & (alpha < -_PIVOT_TOL)
            )
            if not candidates.any():
                raise _WarmRestartFailed("dual step found no entering column")

            # bound-flipping ratio test: walk the candidates by dual
            # ratio; a boxed column whose full range cannot absorb the
            # remaining violation flips to its other bound (the dual
            # ratio having been passed, its reduced cost changes sign),
            # and the next candidate continues the step
            order = np.flatnonzero(candidates)
            ratios = np.clip(d[order] / alpha[order], 0.0, None)
            order = order[np.argsort(ratios, kind="stable")]
            remaining = delta
            entering = -1
            flips: list[int] = []
            for q in order:
                absorb = abs(alpha[q]) * (self.hi[q] - self.lo[q])
                if absorb < remaining:
                    flips.append(int(q))
                    remaining -= absorb
                else:
                    entering = int(q)
                    break
            if entering < 0:
                raise _WarmRestartFailed("violation exceeds flip capacity")
            for q in flips:
                gap = self.hi[q] - self.lo[q]
                w = self._ftran(self._column(q))
                if self.at_upper[q]:
                    self.x[q] = self.lo[q]
                    self.at_upper[q] = False
                    self.xB += w * gap
                else:
                    self.x[q] = self.hi[q]
                    self.at_upper[q] = True
                    self.xB -= w * gap
                self.pivots += 1

            tau = remaining / alpha[entering]
            value = self.x[entering] + tau
            if not (self.lo[entering] - _FEAS_TOL
                    <= value <= self.hi[entering] + _FEAS_TOL):
                raise _WarmRestartFailed("dual step left its bound range")
            w = self._ftran(self._column(entering))
            self.xB -= w * tau
            theta = float(d[entering] / alpha[entering])
            self._install(leave_row, entering, value,
                          leaving_to_upper=not is_below, w=w)
            if self._etas:
                # the orientation sign cancels in the rank-one update
                # (theta and alpha both carry it), and the leaving
                # column falls out of the same formula via alpha = +-1
                d -= theta * alpha
                d[self.basis] = 0.0
            else:  # a refactorization just happened: recompute exactly
                d = self._reduced_costs(pricing)

    # -- results ----------------------------------------------------------
    def solution_values(self) -> np.ndarray:
        x = self.x.copy()
        x[self.basis] = self.xB
        # snap to a 1e-9 grid: cold and warm runs reach the same vertex
        # but along different pivot paths, and ~1e-15 arithmetic noise
        # on a value that is analytically exactly .5 would otherwise
        # flip the planners' rounding between the two
        return np.round(x[: self.n], 9)

    def duals(self) -> np.ndarray:
        """Row prices ``y = B^-T c_B`` for the ``<=`` rows.

        Same convention as the HiGHS marginals: the derivative of the
        *minimized* objective with respect to ``b_ub``.
        """
        y = self._btran(self.cost[self.basis])
        return np.asarray(y[: self.m_ub], dtype=float)

    def verify(self) -> None:
        """Cheap invariant check after a warm restart."""
        x = self.x.copy()
        x[self.basis] = self.xB
        scale = 1.0 + float(np.abs(self.b).max(initial=0.0))
        if np.abs(self.A @ x - self.b).max(initial=0.0) > 1e-6 * scale:
            raise _WarmRestartFailed("restart left a row residual")
        lo_gap = self.lo - x
        hi_gap = x - self.hi
        if max(lo_gap.max(initial=0.0), hi_gap.max(initial=0.0)) > 1e-6:
            raise _WarmRestartFailed("restart left a bound violation")


class SimplexBackend:
    """Bounded-variable revised simplex over the model's standard form.

    Parameters
    ----------
    max_iterations:
        Pivot budget per solve before raising ``iteration_limit``.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; when set, every
        solve records an ``lp_solve`` event and solve-time histograms,
        and sweeps record ``lp.sweep.*`` counters.
    """

    name = "pure-simplex"

    def __init__(
        self, max_iterations: int = 100_000, instrumentation=None
    ) -> None:
        self.max_iterations = max_iterations
        self.instrumentation = instrumentation

    def solve(self, model: Model) -> Solution:
        return self._solve_compiled(compile_model(model), model.name, model)

    def solve_form(self, form: StandardForm, name: str = "lp") -> Solution:
        """Solve a pre-compiled :class:`StandardForm` (fast-path entry).

        Used by :mod:`repro.lp.fastbuild`; also keeps this backend
        usable as a cross-check oracle for array-level compilers.
        """
        return self._solve_compiled(form, name, None)

    def _solve_compiled(
        self, form: StandardForm, name: str, model: Model | None
    ) -> Solution:
        start = time.perf_counter()
        with maybe_span(
            self.instrumentation, "solve", model=name, backend=self.name
        ) as span:
            engine = _RevisedSimplex(form, name, self.max_iterations)
            iterations = engine.solve()
            span.annotate(iterations=iterations, pivots=engine.pivots)
        return self._finish(
            engine, form, name, model, start,
            iterations=iterations, warm_started=False,
        )

    def _finish(
        self,
        engine: _RevisedSimplex,
        form: StandardForm,
        name: str,
        model: Model | None,
        start: float,
        *,
        iterations: int,
        warm_started: bool,
    ) -> Solution:
        x = engine.solution_values()
        duals = orient_inequality_duals(engine.duals(), form, model)
        elapsed = time.perf_counter() - start
        stats = SolveStats(
            backend=self.name,
            wall_seconds=elapsed,
            iterations=iterations,
            num_variables=form.num_variables,
            num_constraints=form.a_ub.shape[0] + form.a_eq.shape[0],
            warm_started=warm_started,
            pivots=engine.pivots,
        )
        if self.instrumentation is not None:
            self.instrumentation.record_lp_solve(name, stats)
        return Solution(
            status="optimal",
            objective=form.report_objective(float(form.c @ x)),
            values=x,
            stats=stats,
            inequality_duals=duals,
        )

    def solve_sweep(self, parametric, rhs_values, name: str | None = None):
        """Solve one compiled form for many values of its RHS slot.

        The first member runs cold; each later member restarts the dual
        simplex from the previous optimal basis (falling back to a cold
        solve if the restart cannot finish).  Returns one
        :class:`~repro.lp.result.Solution` per value, element-wise
        identical to independent cold solves.
        """
        label = name or parametric.name
        form = parametric.compiled.form
        row = parametric.row
        solutions: list[Solution] = []
        engine: _RevisedSimplex | None = None
        cold_pivots = 0
        warm_hits = 0
        pivots_saved = 0
        sweep_start = time.perf_counter()
        for rhs in np.asarray(rhs_values, dtype=float):
            start = time.perf_counter()
            warm = False
            iterations = 0
            with maybe_span(
                self.instrumentation, "sweep.member",
                model=label, rhs=float(rhs),
            ) as span:
                if engine is not None:
                    pivots_before = engine.pivots
                    try:
                        iterations = engine.resolve(row, float(rhs))
                        engine.verify()
                        warm = True
                        warm_hits += 1
                        pivots_saved += max(
                            0, cold_pivots - (engine.pivots - pivots_before)
                        )
                    except _WarmRestartFailed:
                        engine = None
                if engine is None:
                    patched = parametric.form_for_rhs(float(rhs))
                    engine = _RevisedSimplex(
                        patched, label, self.max_iterations
                    )
                    pivots_before = engine.pivots
                    iterations = engine.solve()
                    cold_pivots = engine.pivots
                member_pivots = engine.pivots - pivots_before
                span.annotate(
                    mode="warm" if warm else "cold", pivots=member_pivots
                )
            member = self._finish(
                engine, form, label, None, start,
                iterations=iterations, warm_started=warm,
            )
            member.stats.pivots = member_pivots
            solutions.append(member)
        if self.instrumentation is not None:
            self.instrumentation.record_lp_sweep(
                label,
                members=len(solutions),
                warm_hits=warm_hits,
                pivots_saved=pivots_saved,
                seconds=time.perf_counter() - sweep_start,
            )
        return solutions
