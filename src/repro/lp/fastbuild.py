"""Fast-path compilation of the PROSPECTOR LPs to standard-form arrays.

The algebraic layer (:class:`~repro.lp.model.Model` / ``LinExpr`` /
``Constraint``) allocates one Python object per variable and several
per constraint term; for LP+LF at n=60, m=25 that is tens of thousands
of allocations, and *build* time dominates solve time — the same
pathology the paper reports for its CPLEX runs (§5 "Other Results").

This module lowers each formulation **directly** to COO triplets with
numpy and assembles a :class:`~repro.lp.standard_form.StandardForm`
whose rows, columns, coefficients, bounds, and objective are identical
to ``compile_model(planner.build_model(context))`` — the algebraic path
stays in the tree as the reference oracle, and the equivalence is
property-tested (``tests/lp/test_fastbuild.py``).

On top of the compilers sits :class:`ReplanCache`: the constraint
blocks that do not depend on the sample matrix (edge-use rows, path
rows, budget-row coefficients, bounds) are memoized per topology
content token + energy-cost fingerprint (+ ``k``), which is exactly the
regime :class:`~repro.query.engine.TopKEngine` replans live in — same
tree, sliding sample window.  A window slide then only rebuilds the
``ones(j)``-dependent rows.  Cache hits/misses and compile timers land
in :mod:`repro.obs` under ``fastbuild.cache.hits`` /
``fastbuild.cache.misses`` / ``fastbuild.compile_seconds.<name>``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np
from scipy import sparse

from repro.lp.standard_form import StandardForm
from repro.obs.instrument import maybe_timer
from repro.obs.spans import maybe_span

__all__ = [
    "CompiledLP",
    "ParametricForm",
    "ReplanCache",
    "compile_lp_no_lf",
    "compile_lp_no_lf_parametric",
    "compile_lp_lf",
    "compile_lp_lf_parametric",
    "compile_proof",
    "compile_proof_parametric",
]


@dataclass
class CompiledLP:
    """A formulation lowered straight to solver arrays.

    Attributes
    ----------
    name:
        The formulation's model name (matches the algebraic path, so
        observability series line up).
    form:
        The standard-form arrays, ready for ``backend.solve_form``.
    column_names:
        One name per column, identical to the algebraic model's
        variable names in the same order (used by the equivalence
        tests and for debugging).
    primary_columns:
        The columns a planner reads the plan off of: ``edge -> b``
        column for the bandwidth formulations, ``node -> x`` column
        for LP−LF.
    """

    name: str
    form: StandardForm
    column_names: list[str]
    primary_columns: dict[int, int]


@dataclass
class ParametricForm:
    """A compiled formulation with one designated scalar RHS slot.

    All three PROSPECTOR formulations place the energy budget in
    exactly one coefficient of the assembled arrays: the last ``b_ub``
    entry (the budget row).  A budget sweep therefore compiles **once**
    (through the :class:`ReplanCache` like any other compile) and each
    sweep member just patches that one float — via
    ``backend.solve_sweep`` for warm-started solving, or via
    :meth:`form_for` for an independent cold oracle solve.

    ``rhs_of`` maps a budget to the slot's value using the *same* float
    arithmetic as a cold compile at that budget, so a patched form is
    bitwise identical to a freshly compiled one.

    Attributes
    ----------
    compiled:
        The underlying :class:`CompiledLP` (compiled at the context's
        own budget).
    row:
        Index of the scalar slot within ``form.b_ub``.
    rhs_of:
        Budget → RHS-slot value, replicating the cold-compile
        arithmetic bit for bit.
    rhs_intercept:
        When not ``None``, ``rhs_of`` is exactly
        ``budget + rhs_intercept`` in IEEE arithmetic — the shape both
        bandwidth formulations share (``budget - acquisition``, and
        ``a - b == a + (-b)`` bitwise).  This is what lets the
        cross-process artifact store persist and reconstruct the
        parametric slot without pickling the closure; forms with a
        non-affine slot leave it ``None`` and simply are not spilled.
    """

    compiled: CompiledLP
    row: int
    rhs_of: Callable[[float], float]
    rhs_intercept: float | None = None

    @property
    def name(self) -> str:
        return self.compiled.name

    @property
    def form(self) -> StandardForm:
        return self.compiled.form

    @property
    def primary_columns(self) -> dict[int, int]:
        return self.compiled.primary_columns

    def rhs_values(self, budgets) -> np.ndarray:
        """RHS-slot values for a sequence of budgets."""
        return np.array([self.rhs_of(float(b)) for b in budgets])

    def b_ub_matrix(self, rhs_values) -> np.ndarray:
        """Stacked ``(B, len(b_ub))`` RHS matrix, one patched row per value.

        The batch entry points (``backend.solve_batch``) solve one
        member per row; this materializes every member's ``b_ub`` in
        one shot for vectorized consumers.
        """
        rhs = np.atleast_1d(np.asarray(rhs_values, dtype=float))
        matrix = np.tile(self.form.b_ub, (rhs.shape[0], 1))
        matrix[:, self.row] = rhs
        return matrix

    def form_for_rhs(self, rhs: float) -> StandardForm:
        """An independent :class:`StandardForm` with the slot patched.

        The coefficient arrays are shared (they are never mutated by
        the solvers); only ``b_ub`` is copied.
        """
        b_ub = self.form.b_ub.copy()
        b_ub[self.row] = rhs
        return replace(self.form, b_ub=b_ub)

    def form_for(self, budget: float) -> StandardForm:
        """Patched form for one budget — the cold-solve oracle entry."""
        return self.form_for_rhs(self.rhs_of(float(budget)))


class ReplanCache:
    """Memoizes sample-independent constraint blocks across replans.

    Entries are keyed on **content**: ``(formulation,
    topology.cache_token(), k, cost-fingerprint)``.  The token is the
    parent vector, which determines every derived structure, so two
    structurally equal trees share entries — the property the
    cross-session caches of :mod:`repro.service.cache` rely on.  Each
    hit is additionally verified with ``same_structure`` against the
    stored topology, so a hand-built key can never alias a different
    tree.  A topology change, a ``k`` change, or any change to the
    energy costs (including link-failure penalty drift) misses and
    rebuilds; a pure sample-window slide hits.

    The cache is a bounded LRU (a hit refreshes recency; beyond
    ``capacity`` the least-recently-used entry is evicted and counted
    in ``evictions``) and is safe for concurrent access: lookups and
    inserts hold an internal lock, which is what lets one instance be
    shared by every session of a :class:`~repro.service.server.TopKService`.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("replan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple, topology) -> dict | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or not entry["topology"].same_structure(topology):
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, topology, entry: dict) -> dict:
        entry["topology"] = topology
        with self._lock:
            if key not in self._entries:
                while len(self._entries) >= self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
            self._entries[key] = entry
            self._entries.move_to_end(key)
        return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __getstate__(self) -> dict:
        # a cache's warmth is not part of its owner's identity, and the
        # lock is process-local: pickled copies (experiment-runner
        # content fingerprints, process-pool workers) start empty
        return {"capacity": self.capacity}

    def __setstate__(self, state: dict) -> None:
        self.__init__(capacity=state["capacity"])


# -- shared helpers ---------------------------------------------------------


def _cost_fingerprint(context) -> tuple:
    """The energy quantities the static blocks depend on.

    Edge costs include the expected link-failure penalty, which drifts
    as the engine observes failures — so a drifted model naturally
    invalidates the cache.
    """
    edge_costs = tuple(context.edge_cost(edge) for edge in context.topology.edges)
    return (edge_costs, context.per_value, context.energy.acquisition_mj)


def _fetch_static(cache, obs, key, topology, build):
    """Cache lookup with obs counters; ``cache=None`` always builds."""
    if cache is None:
        return build()
    with maybe_span(obs, "cache") as span:
        entry = cache.get(key, topology)
        span.annotate(hit=entry is not None)
    if entry is not None:
        if obs is not None:
            obs.counter("fastbuild.cache.hits").inc()
        return entry
    if obs is not None:
        obs.counter("fastbuild.cache.misses").inc()
    return cache.put(key, topology, build())


def _ragged_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices for concatenating ``arr[s:s+c]`` slices without a loop."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return np.repeat(starts, counts) + offsets


def _assemble(
    *,
    c: np.ndarray,
    constant: float,
    maximize: bool,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    b_ub: np.ndarray,
    bounds: list,
) -> StandardForm:
    """Pack COO triplets into a StandardForm, mirroring compile_model."""
    if maximize:
        c = -c
        constant = -constant
    n = len(c)
    a_ub = sparse.coo_matrix(
        (vals, (rows, cols)), shape=(len(b_ub), n)
    ).tocsr()
    a_eq = sparse.coo_matrix(([], ([], [])), shape=(0, n)).tocsr()
    return StandardForm(
        c=c,
        a_ub=a_ub,
        b_ub=np.asarray(b_ub, dtype=float),
        a_eq=a_eq,
        b_eq=np.asarray([], dtype=float),
        bounds=bounds,
        objective_constant=constant,
        maximize=maximize,
    )


def _edge_budget_costs(context) -> np.ndarray:
    """Per-edge ``edge_cost + acquisition`` budget coefficients.

    Computed with the same per-edge float arithmetic as the algebraic
    builders so the assembled arrays are bit-identical.
    """
    acquisition = context.energy.acquisition_mj
    return np.array(
        [context.edge_cost(edge) + acquisition for edge in context.topology.edges],
        dtype=float,
    )


# -- PROSPECTOR LP−LF -------------------------------------------------------


def compile_lp_no_lf(context, cache: ReplanCache | None = None) -> CompiledLP:
    """Lower PROSPECTOR LP−LF (paper §4.1) to standard-form arrays.

    Columns: ``x_i`` per node, then ``y_e`` per edge.  Rows: the path
    constraints (node order, bottom-up edges), then the budget row —
    the exact order of the algebraic ``build_model``.
    """
    obs = context.instrumentation
    with maybe_span(obs, "compile", formulation="prospector-lp-no-lf"), \
            maybe_timer(obs, "fastbuild.compile_seconds.prospector-lp-no-lf"):
        topology = context.topology
        n = topology.n
        edges = np.asarray(topology.edges, dtype=np.int64)
        num_edges = edges.size
        y_col_of = np.full(n, -1, dtype=np.int64)
        y_col_of[edges] = n + np.arange(num_edges)

        key = (
            "lp-no-lf", topology.cache_token(), context.k,
            _cost_fingerprint(context),
        )

        def build_static() -> dict:
            indptr, path_flat = topology.path_edge_arrays()
            counts = indptr[edges + 1] - indptr[edges]
            gather = _ragged_gather(indptr[edges], counts)
            path_cols = y_col_of[path_flat[gather]]
            num_path = gather.size
            path_rows = np.arange(num_path, dtype=np.int64)
            budget_row = num_path
            x_budget = (
                topology.depth_array()[edges] * context.per_value
            ).astype(float)
            rows = np.concatenate(
                [
                    path_rows,
                    path_rows,
                    np.full(num_edges, budget_row, dtype=np.int64),
                    np.full(num_edges, budget_row, dtype=np.int64),
                ]
            )
            cols = np.concatenate(
                [
                    np.repeat(edges, counts),  # x columns (node id == column)
                    path_cols,
                    y_col_of[edges],
                    edges,
                ]
            )
            vals = np.concatenate(
                [
                    np.ones(num_path),
                    -np.ones(num_path),
                    _edge_budget_costs(context),
                    x_budget,
                ]
            )
            bounds = [(0.0, 1.0)] * (n + num_edges)
            names = [f"x_{node}" for node in range(n)] + [
                f"y_{edge}" for edge in edges
            ]
            return {
                "rows": rows,
                "cols": cols,
                "vals": vals,
                "num_rows": num_path + 1,
                "bounds": bounds,
                "names": names,
            }

        static = _fetch_static(cache, obs, key, topology, build_static)

        b_ub = np.zeros(static["num_rows"])
        b_ub[-1] = context.budget - context.energy.acquisition_mj  # RHS slot

        counts = context.samples.column_counts()
        c = np.zeros(n + num_edges)
        c[:n] = np.asarray(counts, dtype=float)

        form = _assemble(
            c=c,
            constant=0.0,
            maximize=True,
            rows=static["rows"],
            cols=static["cols"],
            vals=static["vals"],
            b_ub=b_ub,
            bounds=list(static["bounds"]),
        )
        return CompiledLP(
            name="prospector-lp-no-lf",
            form=form,
            column_names=list(static["names"]),
            primary_columns={node: node for node in range(n)},
        )


# -- PROSPECTOR LP+LF -------------------------------------------------------


def compile_lp_lf(context, cache: ReplanCache | None = None) -> CompiledLP:
    """Lower PROSPECTOR LP+LF (paper §4.2) to standard-form arrays.

    Columns: ``b_e`` per edge, ``y_e`` per edge, then ``z_{j,i}`` per
    sample-matrix 1-entry (``j`` ascending, nodes ascending within a
    sample).  Rows: edge-use rows, path rows, bandwidth rows, budget —
    matching the algebraic ``build_model`` exactly.
    """
    obs = context.instrumentation
    with maybe_span(obs, "compile", formulation="prospector-lp-lf"), \
            maybe_timer(obs, "fastbuild.compile_seconds.prospector-lp-lf"):
        topology = context.topology
        samples = context.samples
        n = topology.n
        edges = np.asarray(topology.edges, dtype=np.int64)
        num_edges = edges.size
        b_col_of = np.full(n, -1, dtype=np.int64)
        b_col_of[edges] = np.arange(num_edges)
        y_col_of = np.full(n, -1, dtype=np.int64)
        y_col_of[edges] = num_edges + np.arange(num_edges)

        key = (
            "lp-lf", topology.cache_token(), context.k,
            _cost_fingerprint(context),
        )

        def build_static() -> dict:
            subtree = topology.subtree_size_array()[edges].astype(float)
            use_rows = np.arange(num_edges, dtype=np.int64)
            return {
                "use_rows": np.concatenate([use_rows, use_rows]),
                "use_cols": np.concatenate([b_col_of[edges], y_col_of[edges]]),
                "use_vals": np.concatenate([np.ones(num_edges), -subtree]),
                "budget_y": _edge_budget_costs(context),
                "budget_b": np.full(num_edges, context.per_value, dtype=float),
                "bounds_by": [(0.0, float(s)) for s in subtree]
                + [(0.0, 1.0)] * num_edges,
                "names_by": [f"b_{edge}" for edge in edges]
                + [f"y_{edge}" for edge in edges],
            }

        static = _fetch_static(cache, obs, key, topology, build_static)

        # -- z layout: the matrix's 1-entries in row-major order, which
        # is exactly (j ascending, node ascending)
        num_samples = samples.num_samples
        z_sample, z_nodes = np.nonzero(np.asarray(samples.matrix, dtype=bool))
        num_z = z_nodes.size
        z_base = 2 * num_edges

        # -- (7) path rows: one per (z variable, ancestor edge)
        indptr, path_flat = topology.path_edge_arrays()
        path_counts = indptr[z_nodes + 1] - indptr[z_nodes]
        gather = _ragged_gather(indptr[z_nodes], path_counts)
        num_path = gather.size
        path_row_ids = num_edges + np.arange(num_path, dtype=np.int64)
        path_z_cols = z_base + np.repeat(
            np.arange(num_z, dtype=np.int64), path_counts
        )
        path_edge_positions = b_col_of[path_flat[gather]]
        path_y_cols = num_edges + path_edge_positions

        # -- (8) bandwidth rows.  Node i sits in edge e's subtree iff e
        # lies on i's root path, so the member entries of the bw rows
        # are the path-row gather regrouped by (sample, edge); one
        # bincount finds which (sample, edge) groups are nonempty.
        entry_groups = (
            np.repeat(z_sample, path_counts) * num_edges + path_edge_positions
        )
        member_counts = np.bincount(
            entry_groups, minlength=num_samples * num_edges
        )
        active = member_counts > 0
        num_bw = int(np.count_nonzero(active))
        bw_base = num_edges + num_path
        bw_row_lookup = np.cumsum(active) - 1  # group -> bw row rank
        bw_z_rows = bw_base + bw_row_lookup[entry_groups]
        bw_b_rows = bw_base + np.arange(num_bw, dtype=np.int64)
        bw_b_cols = np.flatnonzero(active) % num_edges

        budget_row = bw_base + num_bw
        num_rows = budget_row + 1

        rows = np.concatenate(
            [
                static["use_rows"],
                path_row_ids,
                path_row_ids,
                bw_z_rows,
                bw_b_rows,
                np.full(2 * num_edges, budget_row, dtype=np.int64),
            ]
        )
        cols = np.concatenate(
            [
                static["use_cols"],
                path_z_cols,
                path_y_cols,
                path_z_cols,  # the bw-row z entries reuse the path gather
                bw_b_cols,
                y_col_of[edges],
                b_col_of[edges],
            ]
        )
        vals = np.concatenate(
            [
                static["use_vals"],
                np.ones(num_path),
                -np.ones(num_path),
                np.ones(num_path),
                -np.ones(num_bw),
                static["budget_y"],
                static["budget_b"],
            ]
        )
        b_ub = np.zeros(num_rows)
        b_ub[-1] = context.budget - context.energy.acquisition_mj

        c = np.zeros(z_base + num_z)
        c[z_base:] = 1.0
        bounds = list(static["bounds_by"]) + [(0.0, 1.0)] * num_z
        names = list(static["names_by"]) + [
            f"z_{j}_{node}"
            for j, node in zip(z_sample.tolist(), z_nodes.tolist())
        ]

        form = _assemble(
            c=c,
            constant=0.0,
            maximize=True,
            rows=rows,
            cols=cols,
            vals=vals,
            b_ub=b_ub,
            bounds=bounds,
        )
        return CompiledLP(
            name="prospector-lp-lf",
            form=form,
            column_names=names,
            primary_columns={
                int(edge): int(b_col_of[edge]) for edge in edges
            },
        )


# -- PROSPECTOR-Proof -------------------------------------------------------


def compile_proof(context, *, budget_rhs: float) -> CompiledLP:
    """Lower PROSPECTOR-Proof (paper §4.3) to standard-form arrays.

    ``budget_rhs`` is the right-hand side of the budget row *before*
    folding the constant per-message costs — i.e. the planner's
    ``budget - reserve - acquisition_total`` — so the reserve policy
    stays in :class:`~repro.planners.proof.ProofPlanner`.

    Columns: ``b_e`` per edge, then ``p_{j,i,a}`` blocks (``j``
    ascending, nodes ascending, ancestors bottom-up).  Rows per sample:
    chain rows, bandwidth rows, support rows; the budget row is last.
    The chain/bandwidth blocks and the support *pair list* are
    sample-independent and computed once per compile; only the support
    memberships and the objective consult the sample values.
    """
    obs = context.instrumentation
    with maybe_span(obs, "compile", formulation="prospector-proof"), \
            maybe_timer(obs, "fastbuild.compile_seconds.prospector-proof"):
        topology = context.topology
        samples = context.samples
        n = topology.n
        edges = np.asarray(topology.edges, dtype=np.int64)
        num_edges = edges.size
        depth = topology.depth_array()
        chain_len = depth + 1
        node_offset = np.concatenate([[0], np.cumsum(chain_len)])
        p_per_sample = int(node_offset[-1])
        num_samples = samples.num_samples

        def p_rel(nodes: np.ndarray, anc_depth: np.ndarray) -> np.ndarray:
            """Column of ``p_{·,node,anc}`` relative to its sample block."""
            return node_offset[nodes] + depth[nodes] - anc_depth

        # -- sample-independent templates (relative columns, relative rows)
        # (13) chain rows: depth[u] rows per node, consecutive chain cols
        chain_counts = depth.copy()
        below_rel = _ragged_gather(node_offset[:-1], chain_counts)
        above_rel = below_rel + 1
        num_chain = below_rel.size
        chain_rows_rel = np.arange(num_chain, dtype=np.int64)

        # (12) bandwidth rows: one per edge, entries over its subtree
        desc = topology.descendant_matrix()
        parents = np.array(
            [topology.parent(int(edge)) for edge in edges], dtype=np.int64
        )
        bw_edge_idx, bw_nodes = np.nonzero(desc[edges])
        bw_p_rel = p_rel(bw_nodes, depth[parents[bw_edge_idx]])
        bw_rows_rel = num_chain + bw_edge_idx
        bw_b_rows_rel = num_chain + np.arange(num_edges, dtype=np.int64)

        # (14) support pairs (node, ancestor, sibling child), in the
        # algebraic iteration order; memberships are filled in per sample
        pair_nodes: list[int] = []
        pair_anc_rel: list[int] = []
        pair_siblings: list[int] = []
        for node in range(n):
            for position, anc in enumerate(topology.ancestors(node)):
                for sibling in topology.sibling_children(node, anc):
                    pair_nodes.append(node)
                    pair_anc_rel.append(int(node_offset[node]) + position)
                    pair_siblings.append(sibling)
        pair_nodes_arr = np.asarray(pair_nodes, dtype=np.int64)
        pair_anc_rel_arr = np.asarray(pair_anc_rel, dtype=np.int64)
        pair_siblings_arr = np.asarray(pair_siblings, dtype=np.int64)
        pair_desc = (
            desc[pair_siblings_arr]
            if pair_siblings_arr.size
            else np.zeros((0, n), dtype=bool)
        )

        node_ids = np.arange(n, dtype=np.int64)
        values = samples.values

        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        vals_parts: list[np.ndarray] = []
        row_cursor = 0
        c = np.zeros(num_edges + num_samples * p_per_sample)
        for j in range(num_samples):
            p_base = num_edges + j * p_per_sample
            # chain block
            rows_parts.append(row_cursor + chain_rows_rel)
            cols_parts.append(p_base + above_rel)
            vals_parts.append(np.ones(num_chain))
            rows_parts.append(row_cursor + chain_rows_rel)
            cols_parts.append(p_base + below_rel)
            vals_parts.append(-np.ones(num_chain))
            # bandwidth block
            rows_parts.append(row_cursor + bw_rows_rel)
            cols_parts.append(p_base + bw_p_rel)
            vals_parts.append(np.ones(bw_p_rel.size))
            rows_parts.append(row_cursor + bw_b_rows_rel)
            cols_parts.append(np.arange(num_edges, dtype=np.int64))
            vals_parts.append(-np.ones(num_edges))
            row_cursor += num_chain + num_edges
            # support block: smaller(i, j) under the (value, id) order
            row = values[j]
            smaller = (row[None, :] < row[:, None]) | (
                (row[None, :] == row[:, None])
                & (node_ids[None, :] < node_ids[:, None])
            )
            support = pair_desc & smaller[pair_nodes_arr]
            has_support = np.flatnonzero(support.any(axis=1))
            if has_support.size:
                rows_parts.append(
                    row_cursor + np.arange(has_support.size, dtype=np.int64)
                )
                cols_parts.append(p_base + pair_anc_rel_arr[has_support])
                vals_parts.append(np.ones(has_support.size))
                sel_idx, support_nodes = np.nonzero(support[has_support])
                cols_parts.append(
                    p_base
                    + p_rel(
                        support_nodes,
                        depth[pair_siblings_arr[has_support][sel_idx]],
                    )
                )
                rows_parts.append(row_cursor + sel_idx)
                vals_parts.append(-np.ones(sel_idx.size))
                row_cursor += has_support.size
            # (10) objective: top-k values proven at the root
            ones_j = np.flatnonzero(samples.matrix[j])
            c[p_base + node_offset[ones_j] + depth[ones_j]] = 1.0

        # (11) budget row, constants folded exactly like Constraint.build
        constant = 0.0
        for edge in edges:
            constant += context.edge_cost(int(edge))
        budget_row = row_cursor
        rows_parts.append(np.full(num_edges, budget_row, dtype=np.int64))
        cols_parts.append(np.arange(num_edges, dtype=np.int64))
        vals_parts.append(np.full(num_edges, context.per_value, dtype=float))
        b_ub = np.zeros(budget_row + 1)
        b_ub[-1] = -(constant - budget_rhs)

        subtree = topology.subtree_size_array()[edges]
        bounds = [(1.0, float(s)) for s in subtree] + [(0.0, 1.0)] * (
            num_samples * p_per_sample
        )
        names = [f"b_{edge}" for edge in edges]
        for j in range(num_samples):
            for node in range(n):
                for anc in topology.ancestors(node):
                    names.append(f"p_{j}_{node}_{anc}")

        form = _assemble(
            c=c,
            constant=0.0,
            maximize=True,
            rows=np.concatenate(rows_parts),
            cols=np.concatenate(cols_parts),
            vals=np.concatenate(vals_parts),
            b_ub=b_ub,
            bounds=bounds,
        )
        return CompiledLP(
            name="prospector-proof",
            form=form,
            column_names=names,
            primary_columns={
                int(edge): position for position, edge in enumerate(edges)
            },
        )


# -- parametric entry points ------------------------------------------------


def _budget_slot(compiled: CompiledLP) -> int:
    return len(compiled.form.b_ub) - 1


def compile_lp_no_lf_parametric(
    context, cache: ReplanCache | None = None
) -> ParametricForm:
    """LP−LF with the budget row's RHS exposed as the parametric slot."""
    acquisition = context.energy.acquisition_mj
    compiled = compile_lp_no_lf(context, cache)
    return ParametricForm(
        compiled=compiled,
        row=_budget_slot(compiled),
        rhs_of=lambda budget: budget - acquisition,
        rhs_intercept=-acquisition,
    )


def compile_lp_lf_parametric(
    context, cache: ReplanCache | None = None
) -> ParametricForm:
    """LP+LF with the budget row's RHS exposed as the parametric slot."""
    acquisition = context.energy.acquisition_mj
    compiled = compile_lp_lf(context, cache)
    return ParametricForm(
        compiled=compiled,
        row=_budget_slot(compiled),
        rhs_of=lambda budget: budget - acquisition,
        rhs_intercept=-acquisition,
    )


def compile_proof_parametric(
    context, *, budget_rhs_of: Callable[[float], float]
) -> ParametricForm:
    """Proof with the budget row's RHS exposed as the parametric slot.

    ``budget_rhs_of`` maps a budget to the planner-level ``budget_rhs``
    (budget minus reserve minus total acquisition), keeping the reserve
    policy in :class:`~repro.planners.proof.ProofPlanner`.  The slot
    value then folds the constant per-message costs with the same
    left-associated float arithmetic as :func:`compile_proof`.
    """
    compiled = compile_proof(
        context, budget_rhs=budget_rhs_of(context.budget)
    )
    constant = 0.0
    for edge in context.topology.edges:
        constant += context.edge_cost(int(edge))
    return ParametricForm(
        compiled=compiled,
        row=_budget_slot(compiled),
        rhs_of=lambda budget: -(constant - budget_rhs_of(budget)),
    )
