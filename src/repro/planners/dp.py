"""Dynamic-programming alternative to PROSPECTOR LP−LF.

The paper's footnote 1: "P ROSPECTOR LP−LF with integrality constraints
might be solvable to an arbitrarily good approximation factor by
dynamic programming.  In particular, our NP-hardness proof for this
problem reduces from the KNAPSACK problem for which such a guarantee is
achievable."

This module implements that DP: a tree knapsack over a discretized
budget.  Using a subtree at all costs its edge's per-message price
(the "activation"); choosing a node additionally costs its root-path
value transport.  Costs are rounded *up* to the budget quantum, so the
returned plan is always strictly feasible; shrinking the quantum drives
the approximation arbitrarily close, exactly the FPTAS-style guarantee
the footnote refers to.

Unlike the LP, the DP needs no solver — and unlike the LP's rounding,
its solution is integral by construction.  Its weakness is the same one
the footnote concedes: it does not generalize to local filtering or
proofs, which is why the paper (and this library) use LP as the common
framework.
"""

from __future__ import annotations

import math

from repro.errors import BudgetError
from repro.plans.plan import QueryPlan
from repro.planners.base import PlanningContext, observed


class DPPlanner:
    """Tree-knapsack planner for the LP−LF problem.

    Parameters
    ----------
    buckets:
        Number of budget quanta.  More buckets = finer discretization =
        better plans and more work (time scales with ``buckets**2``).
    """

    name = "dp-no-lf"

    def __init__(self, buckets: int = 150) -> None:
        if buckets < 1:
            raise BudgetError("buckets must be >= 1")
        self.buckets = buckets

    @observed
    def plan(self, context: PlanningContext) -> QueryPlan:
        topology = context.topology
        counts = context.samples.column_counts()
        budget = context.budget
        if budget <= 0:
            return QueryPlan.from_chosen_nodes(topology, {topology.root})

        quantum = budget / self.buckets
        acquisition = context.energy.acquisition_mj

        def quantize(cost: float) -> int:
            return int(math.ceil(cost / quantum - 1e-12))

        # per-node choice cost: full-path value transport
        choice_cost = {
            node: quantize(topology.depth(node) * context.per_value)
            for node in topology.nodes
        }
        # per-edge activation: message cost (+ the child's acquisition)
        activation = {
            edge: quantize(context.edge_cost(edge) + acquisition)
            for edge in topology.edges
        }
        capacity = self.buckets

        # g[node] : list over budget 0..capacity of (count, traceback)
        # where the budget covers everything inside the subtree
        # INCLUDING the node's own edge activation.
        best: dict[int, list[int]] = {}
        picks: dict[int, list[tuple[bool, dict[int, int]]]] = {}

        for node in topology.post_order():
            if node == topology.root:
                continue
            best[node], picks[node] = self._solve_subtree(
                node, topology, counts, choice_cost, activation, best,
                picks, capacity,
            )

        # the root: knapsack over its children, no activation of its own
        root = topology.root
        table, trace = self._combine_children(
            topology.children(root), best, capacity
        )
        chosen = {root}
        budget_index = max(range(capacity + 1), key=lambda b: table[b])
        self._traceback(
            root, budget_index, trace, picks, topology, chosen, is_root=True
        )
        return QueryPlan.from_chosen_nodes(topology, chosen)

    # -- DP internals ----------------------------------------------------
    def _solve_subtree(
        self, node, topology, counts, choice_cost, activation, best, picks,
        capacity,
    ):
        """Best (count, traceback) per budget for one activated subtree."""
        children_table, children_trace = self._combine_children(
            topology.children(node), best, capacity
        )
        table = [0] * (capacity + 1)
        trace: list[tuple[bool, dict[int, int]]] = [
            (False, {}) for __ in range(capacity + 1)
        ]
        act = activation[node]
        own = choice_cost[node]
        for b in range(capacity + 1):
            remaining = b - act
            if remaining < 0:
                continue  # cannot even activate the edge
            # without choosing the node's own value
            value = children_table[remaining]
            choice = (False, children_trace[remaining])
            # with the node's own value
            if counts[node] > 0 and remaining - own >= 0:
                with_own = children_table[remaining - own] + counts[node]
                if with_own > value:
                    value = with_own
                    choice = (True, children_trace[remaining - own])
            table[b] = value
            trace[b] = choice
        # budgets are monotone: more budget never hurts
        for b in range(1, capacity + 1):
            if table[b] < table[b - 1]:
                table[b] = table[b - 1]
                trace[b] = trace[b - 1]
        return table, trace

    @staticmethod
    def _combine_children(children, best, capacity):
        """Knapsack-combine child subtree tables."""
        table = [0] * (capacity + 1)
        trace: list[dict[int, int]] = [{} for __ in range(capacity + 1)]
        for child in children:
            child_table = best[child]
            new_table = list(table)
            new_trace = [dict(t) for t in trace]
            for b in range(capacity + 1):
                for spend in range(1, b + 1):
                    if child_table[spend] == 0:
                        continue
                    candidate = table[b - spend] + child_table[spend]
                    if candidate > new_table[b]:
                        new_table[b] = candidate
                        allocation = dict(trace[b - spend])
                        allocation[child] = spend
                        new_trace[b] = allocation
            table = new_table
            trace = new_trace
        return table, trace

    def _traceback(
        self, node, budget_index, trace, picks, topology, chosen, is_root,
    ):
        """Recover the chosen node set from the DP tables."""
        if is_root:
            allocation = trace[budget_index]
        else:
            took_own, allocation = picks[node][budget_index]
            if took_own:
                chosen.add(node)
        for child, spend in allocation.items():
            self._traceback(
                child, spend, None, picks, topology, chosen, is_root=False
            )
