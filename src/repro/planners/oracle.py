"""The implausible oracle baselines of the evaluation (paper §5).

ORACLE knows exactly where the top-k values sit and fetches precisely
those nodes; its cost lower-bounds every approximate algorithm at 100%
accuracy (and, run for the top ``j < k``, at accuracy ``j/k``).

ORACLE-PROOF also knows the locations but must still *prove* the
result, so it touches every node; it lower-bounds the exact
algorithms.  Its bandwidths give each subtree one slot per top-k value
it holds plus one "witness" slot, so that every ancestor can certify
the top-k values against the subtree (condition c.2 needs a proven
smaller value from each sibling subtree).
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.network.topology import Topology
from repro.plans.plan import QueryPlan, top_k_set


class OraclePlanner:
    """ORACLE: fetch exactly the true top-``j`` nodes (j defaults to k)."""

    name = "oracle"

    def plan_for_readings(
        self, topology: Topology, readings, j: int
    ) -> QueryPlan:
        if j < 1:
            raise PlanError("oracle needs j >= 1")
        chosen = top_k_set(readings, j) | {topology.root}
        return QueryPlan.from_chosen_nodes(topology, chosen)


class OracleProofPlanner:
    """ORACLE-PROOF: prove the true top-k while touching every node."""

    name = "oracle-proof"

    def plan_for_readings(
        self, topology: Topology, readings, k: int
    ) -> QueryPlan:
        if k < 1:
            raise PlanError("oracle-proof needs k >= 1")
        topk = top_k_set(readings, k)
        descendant_sets = topology.descendant_sets()
        bandwidths = {
            edge: min(
                topology.subtree_size(edge),
                len(topk & descendant_sets[edge]) + 1,
            )
            for edge in topology.edges
        }
        return QueryPlan(topology, bandwidths, requires_all_edges=True)
