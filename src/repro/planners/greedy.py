"""PROSPECTOR Greedy (paper §3).

Builds a plan incrementally: as long as the plan's cost stays within
the budget, it picks the unvisited node whose sample column count
(how often the node held a top-k value) is largest, and extends the
plan to fetch that node's value all the way to the root.

Greedy is deliberately topology-blind — it never reasons about sharing
per-message costs between clustered picks — which is exactly the
deficiency LP−LF fixes in the evaluation.
"""

from __future__ import annotations

from repro.plans.plan import QueryPlan
from repro.planners.base import PlanningContext, observed


class GreedyPlanner:
    """The greedy PROSPECTOR.

    Parameters
    ----------
    skip_unaffordable:
        The paper's description stops as soon as the next-best node
        would exceed the budget.  With this flag set, the planner keeps
        scanning for cheaper lower-count nodes instead — a slightly
        stronger variant used by the rounding ablation.
    """

    name = "greedy"

    def __init__(self, skip_unaffordable: bool = False) -> None:
        self.skip_unaffordable = skip_unaffordable

    @observed
    def plan(self, context: PlanningContext) -> QueryPlan:
        topology = context.topology
        counts = context.samples.column_counts()
        # highest count first; prefer shallower nodes on ties (cheaper),
        # then lower ids for determinism
        order = sorted(
            (node for node in topology.nodes if node != topology.root),
            key=lambda node: (-counts[node], topology.depth(node), node),
        )

        chosen: set[int] = {topology.root}
        plan = QueryPlan.from_chosen_nodes(topology, chosen)
        for node in order:
            if counts[node] == 0:
                break  # nodes that never appeared in the top k add nothing
            trial = QueryPlan.from_chosen_nodes(topology, chosen | {node})
            if context.plan_cost(trial) <= context.budget:
                chosen.add(node)
                plan = trial
            elif not self.skip_unaffordable:
                break
        return plan
