"""Weighted-majority planner selection (paper's citation [9]).

The paper borrows its exploration/exploitation framing from Littlestone
& Warmuth's weighted majority algorithm.  This module applies the
algorithm itself one level up: *which PROSPECTOR should be planning?*
The right answer depends on the workload (Figure 9's predictable data
favours LP−LF's simplicity; contention zones demand LP+LF; tiny
networks do fine with Greedy), and it can drift.

:class:`WeightedMajorityPlanner` keeps one weight per expert planner,
plans with the current best expert, and multiplies down the weights of
experts whose plans would have performed worse on observed epochs —
the standard multiplicative update, giving the usual regret guarantee
against the best fixed expert in hindsight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.plans.execution import count_topk_hits
from repro.plans.plan import QueryPlan, top_k_set
from repro.planners.base import Planner, PlanningContext


@dataclass
class ExpertState:
    """One expert planner and its standing."""

    planner: Planner
    weight: float = 1.0
    last_plan: QueryPlan | None = None
    cumulative_hits: int = 0
    epochs_scored: int = 0


class WeightedMajorityPlanner:
    """Multiplicative-weights selection over expert planners.

    Parameters
    ----------
    experts:
        The candidate planners (at least one).
    beta:
        Weight multiplier applied to under-performing experts per
        feedback epoch; the classic algorithm's ``beta`` in (0, 1).
    """

    name = "weighted-majority"

    def __init__(self, experts: list[Planner], beta: float = 0.8) -> None:
        if not experts:
            raise PlanError("at least one expert planner is required")
        if not 0.0 < beta < 1.0:
            raise PlanError("beta must be in (0, 1)")
        self.beta = beta
        self.experts = [ExpertState(planner=p) for p in experts]

    # -- selection ----------------------------------------------------------
    @property
    def weights(self) -> dict[str, float]:
        return {e.planner.name: e.weight for e in self.experts}

    def leader(self) -> ExpertState:
        """The currently heaviest expert (ties: earliest registered)."""
        return max(self.experts, key=lambda e: e.weight)

    def plan(self, context: PlanningContext) -> QueryPlan:
        """Plan with every expert (caching each plan for scoring) and
        return the leader's plan."""
        for expert in self.experts:
            expert.last_plan = expert.planner.plan(context)
        chosen = self.leader().last_plan
        assert chosen is not None
        return chosen

    # -- feedback -------------------------------------------------------------
    def observe(self, readings, k: int) -> None:
        """Score each expert's cached plan on an observed epoch and
        apply the multiplicative update to the laggards.

        Experts matching the epoch's best hit count keep their weight;
        everyone else is multiplied by ``beta`` once per hit of
        shortfall (the standard loss-scaled update).
        """
        scored = [e for e in self.experts if e.last_plan is not None]
        if not scored:
            raise PlanError("observe() called before plan()")
        truth = top_k_set(readings, k)
        hits = {
            id(expert): count_topk_hits(expert.last_plan, truth)
            for expert in scored
        }
        best = max(hits.values())
        for expert in scored:
            expert.epochs_scored += 1
            expert.cumulative_hits += hits[id(expert)]
            shortfall = best - hits[id(expert)]
            if shortfall > 0:
                expert.weight *= self.beta**shortfall
        self._renormalize()

    def _renormalize(self) -> None:
        total = sum(e.weight for e in self.experts)
        if total <= 0:  # pragma: no cover - beta in (0,1) keeps weights > 0
            raise PlanError("expert weights collapsed")
        for expert in self.experts:
            expert.weight /= total

    def standings(self) -> list[dict]:
        """Leaderboard rows for reporting."""
        return sorted(
            (
                {
                    "expert": e.planner.name,
                    "weight": e.weight,
                    "mean_hits": (
                        e.cumulative_hits / e.epochs_scored
                        if e.epochs_scored
                        else 0.0
                    ),
                    "epochs": e.epochs_scored,
                }
                for e in self.experts
            ),
            key=lambda row: -row["weight"],
        )
