"""PROSPECTOR-Exact: the two-phase exact top-k algorithm (paper §4.3).

Phase 1 runs a PROSPECTOR-Proof plan under a chosen energy budget.  If
the root proves at least ``k`` values, the answer is exact and we are
done.  Otherwise a "mop-up" phase retrieves the missing values, using
what every node remembers from phase 1 (its ``retrieved`` and
``proven`` sets) to prune the search: requests are triples
``(t, l, h)`` asking for the top ``t`` subtree values strictly inside
the open range ``(l, h)``.

The pruning logic at each node receiving ``(t, l, h)``:
- proven values already inside the range can be served from memory, so
  only ``t' = t - |proven ∩ (l, h)|`` are requested from below;
- any new value must beat the ``t``-th best in-range value already
  retrieved (raising ``l``);
- no subtree value above ``min(proven)`` can exist outside ``proven``
  (they are the true top values, Lemma 1), so ``h`` drops to it.

Correctness of the answer is independent of the samples' accuracy —
they only affect how much energy the mop-up needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.network.topology import Topology
from repro.plans.plan import Message, QueryPlan, Reading
from repro.plans.proof_execution import NodeState, ProofResult, execute_proof_plan
from repro.planners.base import PlanningContext
from repro.planners.proof import ProofPlanner

_LOW: Reading = (float("-inf"), -1)
_HIGH: Reading = (float("inf"), 1 << 60)
_REQUEST_BYTES = 12  # t (4 bytes) + two range endpoints (4 bytes each)


@dataclass
class ExactOutcome:
    """Result and per-phase accounting of one PROSPECTOR-Exact run."""

    answer: list[Reading]
    proven_in_phase1: int
    phase1_messages: list[Message]
    phase2_messages: list[Message] = field(default_factory=list)
    plan: QueryPlan | None = None

    @property
    def used_mop_up(self) -> bool:
        return bool(self.phase2_messages)

    def answer_nodes(self) -> set[int]:
        return {node for __, node in self.answer}


def mop_up(
    topology: Topology,
    states: dict[int, NodeState],
    k: int,
    skip_known_subtrees: bool = True,
) -> tuple[list[Reading], list[Message]]:
    """Run the mop-up phase over the phase-1 node states.

    Mutates the states (merging fetched values into ``retrieved``) the
    way real nodes would, and returns the exact top-k plus the message
    log for energy accounting.

    ``skip_known_subtrees`` implements the refinement the paper alludes
    to ("sending to children requests with different bounds ... further
    improve"): a child that already delivered its *entire* subtree in
    phase 1 has nothing new to offer, so it is exempted from the
    request (its values are all in the parent's ``retrieved``).
    """
    messages: list[Message] = []

    def serve(node: int, t: int, low: Reading, high: Reading) -> list[Reading]:
        state = states[node]
        proven_in_range = [r for r in state.proven if low < r < high]
        t_children = t - len(proven_in_range)

        in_range = [r for r in state.retrieved if low < r < high]
        new_low = max(low, in_range[t - 1]) if len(in_range) >= t else low
        new_high = min(high, min(state.proven)) if state.proven else high

        children = list(topology.children(node))
        if skip_known_subtrees:
            children = [
                child
                for child in children
                if state.received_from.get(child, 0)
                < topology.subtree_size(child)
            ]
        if t_children > 0 and new_low < new_high and children:
            messages.append(
                Message(node, 0, extra_bytes=_REQUEST_BYTES, kind="broadcast")
            )
            merged = set(state.retrieved)
            for child in children:
                response = serve(child, t_children, new_low, new_high)
                messages.append(Message(child, len(response)))
                merged.update(response)
            state.retrieved = sorted(merged, reverse=True)

        return [r for r in state.retrieved if low < r < high][:t]

    # The root's initiation (paper: broadcast (k - |proven(root)|, l, h))
    # is exactly the generic node procedure applied to an unbounded
    # request for the top k, so we reuse it.
    answer = serve(topology.root, k, _LOW, _HIGH)
    return answer, messages


class ExactTopK:
    """Two-phase exact top-k: PROSPECTOR-Proof + mop-up.

    Parameters
    ----------
    proof_planner:
        The phase-1 planner (budget comes from the planning context
        handed to :meth:`run`; the paper's Figure 8 sweeps it).
    skip_known_subtrees:
        Mop-up refinement: do not re-query subtrees fully delivered in
        phase 1 (see :func:`mop_up`).
    """

    name = "prospector-exact"

    def __init__(
        self,
        proof_planner: ProofPlanner | None = None,
        skip_known_subtrees: bool = True,
    ) -> None:
        self.proof_planner = proof_planner or ProofPlanner()
        self.skip_known_subtrees = skip_known_subtrees

    def run(self, context: PlanningContext, readings) -> ExactOutcome:
        """Answer the top-k query exactly on ``readings``."""
        plan = self.proof_planner.plan(context)
        return self.run_with_plan(plan, context.k, readings)

    def run_with_plan(
        self, plan: QueryPlan, k: int, readings
    ) -> ExactOutcome:
        """Run both phases with a pre-computed phase-1 proof plan."""
        if k < 1:
            raise PlanError("k must be >= 1")
        phase1: ProofResult = execute_proof_plan(plan, readings)
        if phase1.proven_count >= k:
            return ExactOutcome(
                answer=phase1.returned[:k],
                proven_in_phase1=phase1.proven_count,
                phase1_messages=phase1.messages,
                plan=plan,
            )
        answer, phase2_messages = mop_up(
            plan.topology,
            phase1.states,
            k,
            skip_known_subtrees=self.skip_known_subtrees,
        )
        return ExactOutcome(
            answer=answer,
            proven_in_phase1=phase1.proven_count,
            phase1_messages=phase1.messages,
            phase2_messages=phase2_messages,
            plan=plan,
        )
