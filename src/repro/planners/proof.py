"""PROSPECTOR-Proof: optimizing proof-carrying plans (paper §4.3).

A proof-carrying plan must use *every* edge (an unvisited node could
hold the maximum), so the decision is purely how much bandwidth each
edge gets.  The LP uses one variable ``p_{j,i,a}`` per sample and
descendant-ancestor pair, meaning "node i's value is proven at ancestor
a when the plan runs on sample j", and maximizes the expected number of
top-k values proven at the root.

Constraints (paper line numbers):
- (13) a value proven at ``a`` is proven at every node between its
  owner and ``a`` (chain monotonicity);
- (12) values from a subtree proven at its parent are capped by the
  subtree edge's bandwidth;
- (14) proving ``i``'s value at ``a`` requires every sibling child
  subtree ``c`` to prove some smaller value; when ``c``'s subtree holds
  no smaller value in the sample the paper generates no constraint
  (runtime condition c.3 covers that case — a documented optimism of
  the formulation);
- (11) cost bounds per-message plus bandwidth costs, with a reserved
  allowance on each non-leaf edge for the proven-count control field.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import BudgetError
from repro.lp import LinExpr, Model
from repro.lp.backend import resolve_backend
from repro.lp.fastbuild import CompiledLP, compile_proof, compile_proof_parametric
from repro.obs.spans import maybe_span
from repro.plans.plan import QueryPlan
from repro.planners.base import (
    PlannerConfig,
    PlanningContext,
    observed,
    resolve_planner_config,
    sweep_solutions,
)
from repro.planners.rounding import repair_bandwidths, round_bandwidth

_PROVEN_COUNT_BYTES = 2


class ProofPlanner:
    """PROSPECTOR-Proof bandwidth optimizer.

    Parameters
    ----------
    strict_budget:
        Repair the rounded plan back under the budget (default).
    fill_budget:
        After optimizing, spend any leftover allocation on extra
        bandwidth (prioritizing subtrees that held top-k values in the
        samples).  The paper's Figure 8 phase-1 costs grow with the
        allocated energy — "the first phase acquires more values than
        needed" — which is this behaviour; the extra margin also
        hedges against model error.  Off by default.
    compiler:
        ``"fast"`` (default) lowers the formulation straight to
        standard-form arrays (:mod:`repro.lp.fastbuild`);
        ``"algebraic"`` builds the reference :class:`~repro.lp.Model`
        object graph.
    """

    name = "prospector-proof"
    _defaults = PlannerConfig(fill_budget=False)

    def __init__(self, *args, config: PlannerConfig | None = None,
                 **overrides) -> None:
        resolved = resolve_planner_config(
            type(self).__name__, self._defaults, args, config, overrides
        )
        self.strict_budget = resolved.strict_budget
        self.fill_budget = resolved.fill_budget
        self.backend = resolved.backend
        self.compiler = resolved.compiler

    def minimum_cost(self, context: PlanningContext) -> float:
        """Cost of the cheapest legal proof plan (bandwidth 1 everywhere),
        including the control-field reserve and the acquisition total
        (a proof plan visits, and hence measures at, every node)."""
        return (
            self._reserve(context)
            + self._acquisition_total(context)
            + sum(
                context.edge_cost(edge) + context.per_value
                for edge in context.topology.edges
            )
        )

    def _reserve(self, context: PlanningContext) -> float:
        topology = context.topology
        non_leaf_edges = sum(
            1 for edge in topology.edges if not topology.is_leaf(edge)
        )
        return non_leaf_edges * context.energy.per_byte_mj * _PROVEN_COUNT_BYTES

    @staticmethod
    def _acquisition_total(context: PlanningContext) -> float:
        """Constant §4.4 acquisition cost: every node measures."""
        return context.energy.acquisition_mj * context.topology.n

    def build_model(self, context: PlanningContext) -> tuple[Model, dict, dict]:
        topology = context.topology
        samples = context.samples
        model = Model("prospector-proof")

        b = {
            edge: model.add_variable(
                f"b_{edge}", lb=1.0, ub=float(topology.subtree_size(edge))
            )
            for edge in topology.edges
        }

        p: dict[tuple[int, int, int], object] = {}
        for j in range(samples.num_samples):
            for node in topology.nodes:
                for anc in topology.ancestors(node):
                    p[j, node, anc] = model.add_variable(
                        f"p_{j}_{node}_{anc}", lb=0.0, ub=1.0
                    )

        descendant_sets = topology.descendant_sets()
        for j in range(samples.num_samples):
            # (13) chain monotonicity along each node's ancestor path
            for node in topology.nodes:
                chain = topology.ancestors(node)
                for below, above in zip(chain, chain[1:]):
                    model.add_constraint(
                        p[j, node, above] <= p[j, node, below],
                        name=f"chain_{j}_{node}_{above}",
                    )

            # (12) bandwidth caps proven flow through each edge
            for edge in topology.edges:
                parent = topology.parent(edge)
                flow = LinExpr.sum_of(
                    p[j, node, parent] for node in descendant_sets[edge]
                )
                model.add_constraint(flow <= b[edge], name=f"bw_{j}_{edge}")

            # (14) sibling subtrees must prove smaller values
            for node in topology.nodes:
                smaller = samples.smaller_than(node, j)
                for anc in topology.ancestors(node):
                    for sibling in topology.sibling_children(node, anc):
                        support = descendant_sets[sibling] & smaller
                        if not support:
                            continue  # paper's exception: no constraint
                        model.add_constraint(
                            p[j, node, anc]
                            <= LinExpr.sum_of(p[j, s, sibling] for s in support),
                            name=f"sup_{j}_{node}_{anc}_{sibling}",
                        )

        # (11) budget with the proven-count reserve
        cost = LinExpr.sum_of(
            [
                context.edge_cost(edge) + context.per_value * b[edge]
                for edge in topology.edges
            ]
        )
        model.add_constraint(
            cost
            <= context.budget
            - self._reserve(context)
            - self._acquisition_total(context),
            name="budget",
        )

        # (10) expected number of top-k values proven at the root
        root = topology.root
        model.maximize(
            LinExpr.sum_of(
                p[j, node, root]
                for j in range(samples.num_samples)
                for node in samples.ones(j)
            )
        )
        return model, b, p

    def compile_fast(self, context: PlanningContext) -> CompiledLP:
        """Lower the formulation straight to standard-form arrays.

        The reserve/acquisition policy stays here: the compiler only
        sees the net budget right-hand side, exactly as ``build_model``
        passes it to the budget constraint.
        """
        budget_rhs = (
            context.budget
            - self._reserve(context)
            - self._acquisition_total(context)
        )
        return compile_proof(context, budget_rhs=budget_rhs)

    @observed
    def plan(self, context: PlanningContext) -> QueryPlan:
        minimum = self.minimum_cost(context)
        if context.budget < minimum:
            raise BudgetError(
                f"budget {context.budget:.1f} mJ below the minimum proof plan"
                f" cost {minimum:.1f} mJ (every edge must carry a value)"
            )
        topology = context.topology
        backend = resolve_backend(self.backend, context.instrumentation)
        if self.compiler == "fast" and hasattr(backend, "solve_form"):
            compiled = self.compile_fast(context)
            solution = backend.solve_form(compiled.form, compiled.name)
            columns = compiled.primary_columns
            bandwidths = {
                edge: max(1, round_bandwidth(float(solution.values[columns[edge]])))
                for edge in topology.edges
            }
        else:
            model, b, __ = self.build_model(context)
            solution = model.solve(backend)
            bandwidths = {
                edge: max(1, round_bandwidth(solution.value(b[edge])))
                for edge in topology.edges
            }
        return self._repair_and_fill(context, bandwidths)

    def plan_for_budgets(
        self, context: PlanningContext, budgets
    ) -> list[QueryPlan]:
        """One proof plan per budget from a single compiled formulation.

        Mirrors :meth:`plan` member for member (including the
        :class:`~repro.errors.BudgetError` below :meth:`minimum_cost`,
        raised for the first offending budget); with a sweep-capable
        backend the LP compiles once and each member patches the budget
        row's RHS.
        """
        budgets = [float(b) for b in budgets]
        minimum = self.minimum_cost(context)
        for budget in budgets:
            if budget < minimum:
                raise BudgetError(
                    f"budget {budget:.1f} mJ below the minimum proof plan"
                    f" cost {minimum:.1f} mJ (every edge must carry a value)"
                )
        backend = resolve_backend(self.backend, context.instrumentation)
        if self.compiler != "fast" or not hasattr(backend, "solve_sweep"):
            return [self.plan(replace(context, budget=b)) for b in budgets]
        reserve = self._reserve(context)
        acquisition_total = self._acquisition_total(context)
        parametric = compile_proof_parametric(
            context,
            budget_rhs_of=lambda budget: budget - reserve - acquisition_total,
        )
        solutions = sweep_solutions(
            backend, parametric, parametric.rhs_values(budgets)
        )
        columns = parametric.primary_columns
        topology = context.topology
        plans = []
        for budget, solution in zip(budgets, solutions):
            bandwidths = {
                edge: max(
                    1, round_bandwidth(float(solution.values[columns[edge]]))
                )
                for edge in topology.edges
            }
            plans.append(
                self._repair_and_fill(
                    replace(context, budget=budget), bandwidths
                )
            )
        return plans

    def _repair_and_fill(
        self, context: PlanningContext, bandwidths: dict[int, int]
    ) -> QueryPlan:
        """Shared post-solve path: repair and fill one rounded solution."""
        with maybe_span(
            context.instrumentation, "round", planner=self.name
        ):
            plan = QueryPlan(
                context.topology, bandwidths, requires_all_edges=True
            )
            effective_budget = context.budget - self._reserve(context)
            if self.strict_budget:
                # static_cost excludes the proven-count reserve, so repair
                # against the budget net of it
                plan = repair_bandwidths(
                    plan,
                    context.samples.ones_list(),
                    cost_of=context.plan_cost,
                    budget=effective_budget,
                    min_bandwidth=1,
                )
            if self.fill_budget:
                plan = self._fill(plan, context, effective_budget)
            return plan

    def _fill(
        self, plan: QueryPlan, context: PlanningContext, budget: float
    ) -> QueryPlan:
        """Spend leftover budget on extra bandwidth, hottest subtrees first."""
        topology = context.topology
        descendant_sets = topology.descendant_sets()
        ones = context.samples.ones_list()
        heat = {
            edge: max(len(o & descendant_sets[edge]) for o in ones)
            for edge in topology.edges
        }
        # deterministic priority: hot, deep subtrees first
        order = sorted(
            topology.edges,
            key=lambda e: (-heat[e], -topology.depth(e), e),
        )
        grew = True
        while grew:
            grew = False
            for edge in order:
                if plan.bandwidths[edge] >= topology.subtree_size(edge):
                    continue
                trial = plan.with_bandwidth(edge, plan.bandwidths[edge] + 1)
                if context.plan_cost(trial) <= budget:
                    plan = trial
                    grew = True
        return plan
