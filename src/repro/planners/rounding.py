"""Converting fractional LP solutions into integral plans.

The paper rounds indicator variables at threshold ½, which provably
loses at most a factor of 2 in the objective and costs at most ``2E``
(§4.1).  Because our experiment harness charges plans their *actual*
cost against the budget, we additionally offer deterministic repair
passes that restore strict budget feasibility; the repair is an
implementation extension the paper leaves implicit, and it is ablated
in ``benchmarks/bench_ablation_rounding.py``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.plans.execution import (
    bandwidth_vector,
    batch_count_topk_hits,
    ones_to_matrix,
)
from repro.plans.plan import QueryPlan

ROUND_THRESHOLD = 0.5


def round_indicator(value: float, threshold: float = ROUND_THRESHOLD) -> int:
    """The paper's ½-threshold rounding for 0/1-intended variables."""
    return 1 if value >= threshold else 0


def round_bandwidth(value: float) -> int:
    """Round a fractional bandwidth to the nearest integer (half up)."""
    return max(0, int(value + 0.5))


def repair_chosen_nodes(
    chosen: Sequence[int],
    scores: Sequence[float],
    build_plan: Callable[[set[int]], QueryPlan],
    cost_of: Callable[[QueryPlan], float],
    budget: float,
    protected: frozenset[int] = frozenset(),
) -> tuple[QueryPlan, set[int]]:
    """Drop the least valuable chosen nodes until the plan fits budget.

    ``scores`` gives each node's value (e.g., its sample column count);
    nodes in ``protected`` (the root) are never dropped.  Returns the
    repaired plan together with the surviving node set.
    """
    keep = set(chosen)
    plan = build_plan(keep)
    droppable = sorted(
        (node for node in keep if node not in protected),
        key=lambda node: scores[node],
    )
    index = 0
    while cost_of(plan) > budget and index < len(droppable):
        keep.discard(droppable[index])
        index += 1
        plan = build_plan(keep)
    return plan, keep


def fill_chosen_nodes(
    chosen: set[int],
    priorities: Sequence[float],
    build_plan: Callable[[set[int]], QueryPlan],
    cost_of: Callable[[QueryPlan], float],
    budget: float,
) -> QueryPlan:
    """Spend leftover budget on additional nodes by gain per millijoule.

    ``priorities`` measure each node's expected contribution (sample
    column counts, optionally LP-fraction-weighted); at each step the
    affordable candidate with the best priority-to-marginal-cost ratio
    is added — marginal, because a node sharing its path with already
    chosen nodes is much cheaper than a fresh subtree.
    """
    plan = build_plan(chosen)
    current_cost = cost_of(plan)
    candidates = {
        node
        for node in range(len(priorities))
        if node not in chosen and priorities[node] > 0
    }
    while candidates:
        best = None  # (ratio, priority, -node, node, trial, trial_cost)
        for node in candidates:
            trial = build_plan(chosen | {node})
            trial_cost = cost_of(trial)
            if trial_cost > budget:
                continue
            marginal = max(trial_cost - current_cost, 1e-9)
            key = (priorities[node] / marginal, priorities[node], -node)
            if best is None or key > best[0]:
                best = (key, node, trial, trial_cost)
        if best is None:
            return plan
        __, node, plan, current_cost = best
        chosen.add(node)
        candidates.discard(node)
    return plan


def fill_bandwidths(
    plan: QueryPlan,
    ones_per_sample: list[frozenset[int]] | list[set[int]],
    cost_of: Callable[[QueryPlan], float],
    budget: float,
) -> QueryPlan:
    """Spend leftover budget on extra bandwidth by exact marginal gain.

    Candidate moves are single-edge increments and whole-path
    increments (one unit on every edge from a node to the root — needed
    to open up a not-yet-reachable subtree); the move with the best
    expected-hit gain per extra millijoule is applied until no move
    gains anything or fits the budget.

    The move set is constructed once (from the topology's cached path
    arrays) and every surviving candidate's hit count is evaluated in
    one :func:`~repro.plans.execution.batch_count_topk_hits` call per
    round.  A move whose trial cost exceeds the budget is dropped for
    good: bandwidths only grow during filling and the static cost is
    nondecreasing in them, so such a move can never fit later.
    """
    topology = plan.topology
    subtree = topology.subtree_size_array()
    ones_matrix = ones_to_matrix(topology.n, ones_per_sample)

    # hoisted move set: single-edge bumps first, then whole-path bumps
    # (same order as the scalar implementation, so ties resolve alike)
    indptr, path_flat = topology.path_edge_arrays()
    moves: list[np.ndarray] = [
        np.array([edge], dtype=np.int64) for edge in topology.edges
    ]
    moves.extend(
        path_flat[indptr[node] : indptr[node + 1]]
        for node in topology.nodes
        if node != topology.root
    )
    alive = np.ones(len(moves), dtype=bool)

    bw = bandwidth_vector(plan)
    current_hits = int(batch_count_topk_hits(topology, bw, ones_matrix).sum())
    current_cost = cost_of(plan)
    while True:
        trials: list[tuple[QueryPlan, float]] = []
        trial_rows: list[np.ndarray] = []
        for index, move in enumerate(moves):
            if not alive[index]:
                continue
            trial_bw = bw.copy()
            trial_bw[move] = np.minimum(trial_bw[move] + 1, subtree[move])
            if np.array_equal(trial_bw, bw):
                continue  # every edge of the move is already at capacity
            bandwidths = dict(plan.bandwidths)
            for edge in move:
                bandwidths[int(edge)] = int(trial_bw[edge])
            trial = QueryPlan(
                topology, bandwidths, requires_all_edges=plan.requires_all_edges
            )
            trial_cost = cost_of(trial)
            if trial_cost > budget:
                alive[index] = False  # can never fit again; see docstring
                continue
            trials.append((trial, trial_cost))
            trial_rows.append(trial_bw)
        if not trials:
            return plan
        totals = batch_count_topk_hits(
            topology, np.stack(trial_rows), ones_matrix
        ).sum(axis=1)
        best = None  # (gain_per_mj, gain, trial, trial_cost)
        for (trial, trial_cost), total in zip(trials, totals):
            gain = int(total) - current_hits
            if gain <= 0:
                continue
            extra = max(trial_cost - current_cost, 1e-9)
            key = (gain / extra, gain)
            if best is None or key > best[0]:
                best = (key, gain, trial, trial_cost)
        if best is None:
            return plan
        __, gain, plan, current_cost = best
        bw = bandwidth_vector(plan)
        current_hits += gain


def repair_bandwidths(
    plan: QueryPlan,
    ones_per_sample: list[frozenset[int]] | list[set[int]],
    cost_of: Callable[[QueryPlan], float],
    budget: float,
    min_bandwidth: int = 0,
) -> QueryPlan:
    """Greedily decrement bandwidths until the plan fits budget.

    Each step removes one unit from the edge whose decrement loses the
    fewest expected top-k hits over the samples; all candidate
    decrements of a step are evaluated together with the vectorized
    tree recursion (:func:`~repro.plans.execution.batch_count_topk_hits`).
    ``min_bandwidth=1`` keeps proof-carrying plans valid.
    """
    topology = plan.topology
    ones_matrix = ones_to_matrix(topology.n, ones_per_sample)

    # clip pointless over-allocation first: bandwidth beyond the subtree
    # size can never be used and only inflates the budgeted cost
    clipped = dict(plan.bandwidths)
    for edge in topology.edges:
        clipped[edge] = min(clipped[edge], topology.subtree_size(edge))
    plan = QueryPlan(topology, clipped, requires_all_edges=plan.requires_all_edges)

    while cost_of(plan) > budget:
        candidates = [e for e in topology.edges if plan.bandwidths[e] > min_bandwidth]
        if not candidates:
            break  # nothing left to shed; caller decides what to do
        bw = bandwidth_vector(plan)
        current = int(batch_count_topk_hits(topology, bw, ones_matrix).sum())
        trial_bw = np.repeat(bw[None, :], len(candidates), axis=0)
        trial_bw[np.arange(len(candidates)), candidates] -= 1
        totals = batch_count_topk_hits(topology, trial_bw, ones_matrix).sum(axis=1)
        best_edge = None
        best_loss = None
        for edge, total in zip(candidates, totals):
            loss = current - int(total)
            if best_loss is None or loss < best_loss:
                best_loss = loss
                best_edge = edge
                if loss == 0:
                    break  # free decrement: take it immediately
        assert best_edge is not None
        plan = plan.with_bandwidth(best_edge, plan.bandwidths[best_edge] - 1)
    return plan
