"""PROSPECTOR LP−LF: topology-aware planning without local filtering
(paper §4.1).

One 0/1 variable ``x_i`` per node ("fetch i's value to the root") and
one 0/1 variable ``y_e`` per edge ("the plan communicates over e").
Choosing a node forces every edge above it on (line 2), the budget
bounds per-message plus per-value costs (line 3), and the objective
maximizes the total sample column count of the chosen nodes — i.e.,
minimizes the expected number of missed top-k values (line 1).

The only input the formulation needs from the sample matrix is its
vector of column sums, the observation at the end of §4.1.
"""

from __future__ import annotations

from dataclasses import replace

from repro.lp import LinExpr, Model
from repro.lp.backend import resolve_backend
from repro.lp.fastbuild import (
    CompiledLP,
    ReplanCache,
    compile_lp_no_lf,
    compile_lp_no_lf_parametric,
)
from repro.obs.spans import maybe_span
from repro.plans.plan import QueryPlan
from repro.planners.base import (
    PlannerConfig,
    PlanningContext,
    observed,
    resolve_planner_config,
    sweep_solutions,
)
from repro.planners.rounding import (
    ROUND_THRESHOLD,
    fill_chosen_nodes,
    repair_chosen_nodes,
)


class LPNoLFPlanner:
    """PROSPECTOR LP−LF.

    Constructed from keywords or a shared
    :class:`~repro.planners.base.PlannerConfig` (positional arguments
    are deprecated):

    Parameters
    ----------
    config:
        A :class:`~repro.planners.base.PlannerConfig`; explicit
        keywords below override its fields.
    strict_budget:
        When True (default), the rounded plan is repaired to fit the
        budget exactly by dropping the lowest-count chosen nodes; when
        False the paper's raw ½-rounding (cost <= 2E guarantee) is
        returned as-is.
    fill_budget:
        After rounding/repair, spend leftover budget on additional
        nodes in order of their LP fractional value (then sample
        count).  The ½-threshold alone strands budget whenever the LP
        optimum is fractional; filling keeps the plan LP-guided while
        using the full allocation.  On by default; the rounding
        ablation benchmark compares.
    backend:
        LP solver backend instance or registered name (see
        :func:`repro.lp.backend.available_backends`); defaults to
        HiGHS.
    compiler:
        ``"fast"`` (default) lowers the formulation straight to
        standard-form arrays (:mod:`repro.lp.fastbuild`) with a replan
        cache for the sample-independent blocks; ``"algebraic"`` builds
        the reference :class:`~repro.lp.Model` object graph.
    """

    name = "lp-no-lf"
    _defaults = PlannerConfig()

    def __init__(self, *args, config: PlannerConfig | None = None,
                 **overrides) -> None:
        resolved = resolve_planner_config(
            type(self).__name__, self._defaults, args, config, overrides
        )
        self.strict_budget = resolved.strict_budget
        self.fill_budget = resolved.fill_budget
        self.backend = resolved.backend
        self.compiler = resolved.compiler
        # explicit None-check: an empty shared ReplanCache is falsy
        self.replan_cache = (
            resolved.replan_cache
            if resolved.replan_cache is not None
            else ReplanCache()
        )
        self.form_cache = resolved.form_cache

    def build_model(self, context: PlanningContext) -> tuple[Model, dict, dict]:
        """Construct the LP; exposed separately for tests and timing."""
        topology = context.topology
        counts = context.samples.column_counts()
        model = Model("prospector-lp-no-lf")

        x = {
            node: model.add_variable(f"x_{node}", lb=0.0, ub=1.0)
            for node in topology.nodes
        }
        y = {
            edge: model.add_variable(f"y_{edge}", lb=0.0, ub=1.0)
            for edge in topology.edges
        }

        # (2) fetching node i uses every edge above it
        for node in topology.nodes:
            if node == topology.root:
                continue
            for edge in topology.path_edges(node):
                model.add_constraint(x[node] <= y[edge], name=f"path_{node}_{edge}")

        # (3) energy budget: per-message on used edges + per-value along
        # paths. Per-node acquisition (§4.4 "Modeling Other Costs")
        # attaches to each edge's child endpoint — every node on an
        # active path measures, since execution merges its own reading;
        # the root always measures, so its share is constant.
        acquisition = context.energy.acquisition_mj
        cost = LinExpr.sum_of(
            [
                (context.edge_cost(edge) + acquisition) * y[edge]
                for edge in topology.edges
            ]
            + [
                (topology.depth(node) * context.per_value) * x[node]
                for node in topology.nodes
                if node != topology.root
            ]
        )
        model.add_constraint(
            cost <= context.budget - acquisition, name="budget"
        )

        # (1) maximize covered top-k appearances == minimize misses
        model.maximize(
            LinExpr.sum_of(
                int(counts[node]) * x[node] for node in topology.nodes
            )
        )
        return model, x, y

    def _parametric(self, context: PlanningContext):
        """The compiled parametric form, via the cross-session cache
        when one is installed (content-fingerprint keyed)."""
        if self.form_cache is not None:
            return self.form_cache.parametric(
                "lp-no-lf",
                context,
                lambda: compile_lp_no_lf_parametric(
                    context, cache=self.replan_cache
                ),
            )
        return compile_lp_no_lf_parametric(context, cache=self.replan_cache)

    def compile_fast(self, context: PlanningContext) -> CompiledLP:
        """Lower the formulation straight to standard-form arrays.

        Bit-compatible with ``compile_model(build_model(context))``;
        sample-independent blocks come from ``self.replan_cache``.
        With a cross-session ``form_cache`` installed, a hit returns
        the cached arrays with only the budget RHS patched.
        """
        if self.form_cache is not None:
            parametric = self._parametric(context)
            return replace(
                parametric.compiled,
                form=parametric.form_for(context.budget),
            )
        return compile_lp_no_lf(context, cache=self.replan_cache)

    @observed
    def plan(self, context: PlanningContext) -> QueryPlan:
        backend = resolve_backend(self.backend, context.instrumentation)
        if self.compiler == "fast" and hasattr(backend, "solve_form"):
            compiled = self.compile_fast(context)
            solution = backend.solve_form(compiled.form, compiled.name)
            columns = compiled.primary_columns

            def x_value(node: int) -> float:
                return float(solution.values[columns[node]])

        else:
            model, x, __ = self.build_model(context)
            solution = model.solve(backend)

            def x_value(node: int) -> float:
                return solution.value(x[node])

        return self._round_and_fill(context, x_value)

    def plan_for_budgets(
        self, context: PlanningContext, budgets
    ) -> list[QueryPlan]:
        """One plan per budget, sharing a single compiled formulation.

        With a sweep-capable backend the formulation compiles once
        (through the replan cache) and each member patches the budget
        row's RHS — warm-started where the backend supports it.  The
        results are element-wise identical to calling :meth:`plan` once
        per budget; backends without ``solve_sweep`` (or the algebraic
        compiler) fall back to exactly that loop.
        """
        budgets = [float(b) for b in budgets]
        backend = resolve_backend(self.backend, context.instrumentation)
        if self.compiler != "fast" or not hasattr(backend, "solve_sweep"):
            return [self.plan(replace(context, budget=b)) for b in budgets]
        parametric = self._parametric(context)
        solutions = sweep_solutions(
            backend, parametric, parametric.rhs_values(budgets),
            form_cache=self.form_cache, formulation="lp-no-lf",
            context=context,
        )
        columns = parametric.primary_columns
        plans = []
        for budget, solution in zip(budgets, solutions):
            values = solution.values
            plans.append(
                self._round_and_fill(
                    replace(context, budget=budget),
                    lambda node, values=values: float(values[columns[node]]),
                )
            )
        return plans

    def _round_and_fill(self, context: PlanningContext, x_value) -> QueryPlan:
        """Shared post-solve path: round, repair, and fill one solution."""
        with maybe_span(
            context.instrumentation, "round", planner=self.name
        ):
            topology = context.topology
            chosen = {
                node
                for node in topology.nodes
                if x_value(node) >= ROUND_THRESHOLD
            }
            chosen.add(topology.root)

            def build(keep: set[int]) -> QueryPlan:
                return QueryPlan.from_chosen_nodes(topology, keep)

            if not self.strict_budget:
                return build(chosen)

            counts = context.samples.column_counts()
            plan, kept = repair_chosen_nodes(
                chosen=sorted(chosen),
                scores=counts,
                build_plan=build,
                cost_of=context.plan_cost,
                budget=context.budget,
                protected=frozenset({topology.root}),
            )
            if not self.fill_budget:
                return plan

            # expected contribution = sample count, with the LP's
            # fractional preference as a mild tie-break
            priorities = [
                float(counts[node]) + 0.5 * x_value(node)
                if counts[node] > 0
                else 0.0
                for node in topology.nodes
            ]
            return fill_chosen_nodes(
                kept, priorities, build, context.plan_cost, context.budget
            )
