"""PROSPECTOR LP+LF: planning *with* local filtering (paper §4.2).

The plan is a bandwidth assignment ``b_e`` per edge.  The formulation
uses one variable ``z_{j,i}`` per 1-entry of the sample matrix ("the
plan returns node i's value when run on sample j"), which is what lets
the optimizer express run-time filtering decisions: a subtree can be
granted fewer slots than the values it will examine.

Constraints (paper line numbers):
- (7) returning i's value in any sample uses every edge above i;
- (8) the top-k values of sample j crossing edge e are capped by b_e;
- (6) cost: per-message on used edges + per-value times bandwidth.

For integral bandwidths the per-sample LP optimum coincides with the
sort-and-forward execution outcome (tree max-flow; tested property), so
the objective really is the expected number of returned top-k values.
"""

from __future__ import annotations

from dataclasses import replace

from repro.lp import LinExpr, Model
from repro.lp.backend import resolve_backend
from repro.lp.fastbuild import (
    CompiledLP,
    ReplanCache,
    compile_lp_lf,
    compile_lp_lf_parametric,
)
from repro.obs.spans import maybe_span
from repro.plans.plan import QueryPlan
from repro.planners.base import (
    PlannerConfig,
    PlanningContext,
    observed,
    resolve_planner_config,
    sweep_solutions,
)
from repro.planners.rounding import (
    fill_bandwidths,
    repair_bandwidths,
    round_bandwidth,
)


class LPLFPlanner:
    """PROSPECTOR LP+LF.

    Constructed from keywords or a shared
    :class:`~repro.planners.base.PlannerConfig` (positional arguments
    are deprecated):

    Parameters
    ----------
    config:
        A :class:`~repro.planners.base.PlannerConfig`; explicit
        keywords below override its fields.
    strict_budget:
        Repair the rounded bandwidths back under the budget (default);
        otherwise return the raw rounding (factor-2 cost guarantee).
    fill_budget:
        Spend leftover budget (stranded by downward rounding of
        fractional bandwidths) on the increments with the best expected
        hit gain per millijoule.  On by default; ablated in the
        rounding benchmark.
    backend:
        LP solver backend instance or registered name (see
        :func:`repro.lp.backend.available_backends`); defaults to
        HiGHS.
    compiler:
        ``"fast"`` (default) lowers the formulation straight to
        standard-form arrays (:mod:`repro.lp.fastbuild`) with a replan
        cache for the sample-independent blocks; ``"algebraic"`` builds
        the reference :class:`~repro.lp.Model` object graph.  The two
        produce identical arrays (property-tested), so this only trades
        build time.
    replan_cache / form_cache:
        Optional shared caches (see :class:`PlannerConfig`); the
        service layer installs one pool across all sessions.
    """

    name = "lp-lf"
    _defaults = PlannerConfig()

    def __init__(self, *args, config: PlannerConfig | None = None,
                 **overrides) -> None:
        resolved = resolve_planner_config(
            type(self).__name__, self._defaults, args, config, overrides
        )
        self.strict_budget = resolved.strict_budget
        self.fill_budget = resolved.fill_budget
        self.backend = resolved.backend
        self.compiler = resolved.compiler
        # explicit None-check: an empty shared ReplanCache is falsy
        self.replan_cache = (
            resolved.replan_cache
            if resolved.replan_cache is not None
            else ReplanCache()
        )
        self.form_cache = resolved.form_cache

    def build_model(self, context: PlanningContext) -> tuple[Model, dict, dict, dict]:
        topology = context.topology
        samples = context.samples
        model = Model("prospector-lp-lf")

        subtree = topology.subtree_size
        b = {
            edge: model.add_variable(f"b_{edge}", lb=0.0, ub=float(subtree(edge)))
            for edge in topology.edges
        }
        y = {
            edge: model.add_variable(f"y_{edge}", lb=0.0, ub=1.0)
            for edge in topology.edges
        }
        z: dict[tuple[int, int], object] = {}
        for j in range(samples.num_samples):
            # sorted so the column order is deterministic and matches
            # the fast-path compiler (frozenset order is not)
            for node in sorted(samples.ones(j)):
                z[j, node] = model.add_variable(f"z_{j}_{node}", lb=0.0, ub=1.0)

        # an unused edge carries no bandwidth (ties b to y so the
        # per-message cost is paid whenever bandwidth is allocated)
        for edge in topology.edges:
            model.add_constraint(
                b[edge] <= float(subtree(edge)) * y[edge], name=f"use_{edge}"
            )

        # (7) returning i's value for sample j needs every edge above i
        for (j, node), var in z.items():
            for edge in topology.path_edges(node):
                model.add_constraint(var <= y[edge], name=f"path_{j}_{node}_{edge}")

        # (8) bandwidth caps the sample's top-k flow through each edge
        descendant_sets = topology.descendant_sets()
        for j in range(samples.num_samples):
            ones = samples.ones(j)
            for edge in topology.edges:
                members = ones & descendant_sets[edge]
                if not members:
                    continue
                flow = LinExpr.sum_of(z[j, node] for node in members)
                model.add_constraint(flow <= b[edge], name=f"bw_{j}_{edge}")

        # (6) energy budget; acquisition (§4.4) attaches to each used
        # edge's child endpoint, with the root's share constant
        acquisition = context.energy.acquisition_mj
        cost = LinExpr.sum_of(
            [
                (context.edge_cost(edge) + acquisition) * y[edge]
                for edge in topology.edges
            ]
            + [context.per_value * b[edge] for edge in topology.edges]
        )
        model.add_constraint(
            cost <= context.budget - acquisition, name="budget"
        )

        # (5) minimize misses == maximize returned top-k entries
        model.maximize(LinExpr.sum_of(z.values()))
        return model, b, y, z

    def _parametric(self, context: PlanningContext):
        """The compiled parametric form, via the cross-session cache
        when one is installed (content-fingerprint keyed, so two
        sessions over equal topologies/windows compile exactly once)."""
        if self.form_cache is not None:
            return self.form_cache.parametric(
                "lp-lf",
                context,
                lambda: compile_lp_lf_parametric(
                    context, cache=self.replan_cache
                ),
            )
        return compile_lp_lf_parametric(context, cache=self.replan_cache)

    def compile_fast(self, context: PlanningContext) -> CompiledLP:
        """Lower the formulation straight to standard-form arrays.

        Bit-compatible with ``compile_model(build_model(context))``;
        sample-independent blocks come from ``self.replan_cache``.
        With a cross-session ``form_cache`` installed, a hit returns
        the cached arrays with only the budget RHS patched — no
        compile at all.
        """
        if self.form_cache is not None:
            parametric = self._parametric(context)
            return replace(
                parametric.compiled,
                form=parametric.form_for(context.budget),
            )
        return compile_lp_lf(context, cache=self.replan_cache)

    @observed
    def plan(self, context: PlanningContext) -> QueryPlan:
        topology = context.topology
        backend = resolve_backend(self.backend, context.instrumentation)
        if self.compiler == "fast" and hasattr(backend, "solve_form"):
            compiled = self.compile_fast(context)
            solution = backend.solve_form(compiled.form, compiled.name)
            bandwidth_of = compiled.primary_columns
            bandwidths = {
                edge: round_bandwidth(float(solution.values[bandwidth_of[edge]]))
                for edge in topology.edges
            }
        else:
            model, b, __, __ = self.build_model(context)
            solution = model.solve(backend)
            bandwidths = {
                edge: round_bandwidth(solution.value(b[edge]))
                for edge in topology.edges
            }
        return self._repair_and_fill(context, bandwidths)

    def plan_for_budgets(
        self, context: PlanningContext, budgets
    ) -> list[QueryPlan]:
        """One plan per budget, sharing a single compiled formulation.

        With a sweep-capable backend the formulation compiles once
        (through the replan cache) and each member patches the budget
        row's RHS — warm-started where the backend supports it.  The
        results are element-wise identical to calling :meth:`plan` once
        per budget; backends without ``solve_sweep`` (or the algebraic
        compiler) fall back to exactly that loop.
        """
        budgets = [float(b) for b in budgets]
        backend = resolve_backend(self.backend, context.instrumentation)
        if self.compiler != "fast" or not hasattr(backend, "solve_sweep"):
            return [self.plan(replace(context, budget=b)) for b in budgets]
        parametric = self._parametric(context)
        solutions = sweep_solutions(
            backend, parametric, parametric.rhs_values(budgets),
            form_cache=self.form_cache, formulation="lp-lf",
            context=context,
        )
        bandwidth_of = parametric.primary_columns
        topology = context.topology
        plans = []
        for budget, solution in zip(budgets, solutions):
            bandwidths = {
                edge: round_bandwidth(
                    float(solution.values[bandwidth_of[edge]])
                )
                for edge in topology.edges
            }
            plans.append(
                self._repair_and_fill(
                    replace(context, budget=budget), bandwidths
                )
            )
        return plans

    def _repair_and_fill(
        self, context: PlanningContext, bandwidths: dict[int, int]
    ) -> QueryPlan:
        """Shared post-solve path: repair and fill one rounded solution."""
        with maybe_span(
            context.instrumentation, "round", planner=self.name
        ):
            plan = QueryPlan(context.topology, bandwidths)
            if not self.strict_budget:
                return plan
            plan = repair_bandwidths(
                plan,
                context.samples.ones_list(),
                cost_of=context.plan_cost,
                budget=context.budget,
            )
            if not self.fill_budget:
                return plan
            return fill_bandwidths(
                plan,
                context.samples.ones_list(),
                cost_of=context.plan_cost,
                budget=context.budget,
            )
