"""The PROSPECTOR query-planning algorithms (paper §3-§4).

All planners consume a :class:`~repro.planners.base.PlanningContext`
(topology + energy model + sample matrix + k + budget) and emit a
:class:`~repro.plans.plan.QueryPlan`:

- :class:`~repro.planners.greedy.GreedyPlanner` — PROSPECTOR Greedy (§3)
- :class:`~repro.planners.lp_no_lf.LPNoLFPlanner` — PROSPECTOR LP−LF (§4.1)
- :class:`~repro.planners.lp_lf.LPLFPlanner` — PROSPECTOR LP+LF (§4.2)
- :class:`~repro.planners.proof.ProofPlanner` — PROSPECTOR-Proof (§4.3)
- :class:`~repro.planners.exact.ExactTopK` — PROSPECTOR-Exact two-phase (§4.3)
- :class:`~repro.planners.oracle.OraclePlanner` /
  :class:`~repro.planners.oracle.OracleProofPlanner` — the implausible
  baselines of §5.
"""

from repro.planners.base import Planner, PlannerConfig, PlanningContext
from repro.planners.dp import DPPlanner
from repro.planners.ensemble import WeightedMajorityPlanner
from repro.planners.exact import ExactOutcome, ExactTopK, mop_up
from repro.planners.greedy import GreedyPlanner
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.planners.oracle import OraclePlanner, OracleProofPlanner
from repro.planners.proof import ProofPlanner

__all__ = [
    "DPPlanner",
    "ExactOutcome",
    "ExactTopK",
    "GreedyPlanner",
    "LPLFPlanner",
    "LPNoLFPlanner",
    "OraclePlanner",
    "OracleProofPlanner",
    "Planner",
    "PlannerConfig",
    "PlanningContext",
    "ProofPlanner",
    "WeightedMajorityPlanner",
    "mop_up",
]
