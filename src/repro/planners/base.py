"""Shared planner interfaces and the planning context.

A :class:`PlanningContext` bundles everything the PROSPECTOR
formulations need: the tree, the energy model (optionally inflated for
flaky links, paper §4.4), the sample matrix, ``k`` and the energy
budget ``E``.
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass, fields, replace
from typing import Protocol

from repro.errors import BudgetError, SamplingError
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.network.topology import Topology
from repro.obs import Instrumentation
from repro.plans.plan import QueryPlan
from repro.sampling.matrix import SampleMatrix


@dataclass
class PlanningContext:
    """Inputs common to every PROSPECTOR planner."""

    topology: Topology
    energy: EnergyModel
    samples: SampleMatrix
    k: int
    budget: float
    failures: LinkFailureModel | None = None
    instrumentation: Instrumentation | None = None
    """Optional observability sink: planners decorated with
    :func:`observed` record build timers and ``plan_built`` events
    here, and LP-based planners hand it to their solver backend."""

    def __post_init__(self) -> None:
        if self.samples.num_nodes != self.topology.n:
            raise SamplingError(
                f"sample matrix covers {self.samples.num_nodes} nodes,"
                f" topology has {self.topology.n}"
            )
        if self.k < 1:
            raise BudgetError("k must be >= 1")
        if self.budget < 0:
            raise BudgetError("energy budget must be non-negative")

    def edge_cost(self, edge: int) -> float:
        """Per-message cost of one edge, inflated by expected failure
        re-routing cost when a failure model is attached (§4.4)."""
        base = self.energy.per_message_mj
        if self.failures is not None:
            base += self.failures.expected_penalty(edge)
        return base

    @property
    def per_value(self) -> float:
        """Cost of moving one value across one edge."""
        return self.energy.per_value_mj

    def plan_cost(self, plan: QueryPlan) -> float:
        """Static (budgeted) cost of a plan under this context's costs.

        Includes per-node acquisition energy for every visited node
        when the energy model charges it (§4.4 "Modeling Other Costs").
        """
        cost = plan.static_cost(self.energy, self.failures)
        if self.energy.acquisition_mj:
            cost += self.energy.acquisition_mj * len(plan.visited_nodes)
        return cost


@dataclass(frozen=True)
class PlannerConfig:
    """Construction knobs shared by the LP-based planners.

    The counterpart of :class:`~repro.query.engine.EngineConfig` for
    planner construction: one keyword-friendly object instead of a
    positional tail, so ``LPLFPlanner(config=PlannerConfig(...))``,
    ``LPLFPlanner(strict_budget=False)`` and the service layer's
    per-session planner factories all spell options the same way.
    Explicit keyword arguments override the config's fields.
    """

    strict_budget: bool = True
    """Repair the rounded bandwidths back under the budget."""

    fill_budget: bool = True
    """Spend leftover budget on the best expected-hit increments."""

    backend: object = None
    """LP solver backend instance or registered name (default HiGHS)."""

    compiler: str = "fast"
    """``"fast"`` (direct array lowering) or ``"algebraic"``."""

    replan_cache: object = None
    """Optional :class:`~repro.lp.fastbuild.ReplanCache` to share
    across planners (the service installs one per shared-cache pool);
    ``None`` gives the planner a private cache."""

    form_cache: object = None
    """Optional cross-session compiled-form cache (duck-typed; see
    :class:`repro.service.cache.SharedPlanCache`).  When set, LP
    planners fetch whole compiled formulations from it by content
    fingerprint instead of recompiling per planner instance."""


def resolve_planner_config(
    planner_name: str,
    defaults: PlannerConfig,
    args: tuple,
    config: PlannerConfig | None,
    overrides: dict,
) -> PlannerConfig:
    """Merge deprecated positional args, a config object, and keywords.

    Precedence (highest first): explicit keyword overrides, deprecated
    positional arguments, ``config``, the planner's own ``defaults``.
    A non-empty positional tail fires exactly one
    :class:`DeprecationWarning` — the shim kept for pre-1.1 signatures
    like ``LPLFPlanner(True, False, backend)``.
    """
    merged = config if config is not None else defaults
    if args:
        warnings.warn(
            f"positional arguments to {planner_name} are deprecated;"
            " pass keywords or a PlannerConfig",
            DeprecationWarning,
            stacklevel=3,
        )
        positional_fields = ("strict_budget", "fill_budget", "backend",
                             "compiler")
        if len(args) > len(positional_fields):
            raise TypeError(
                f"{planner_name} takes at most"
                f" {len(positional_fields)} positional arguments"
            )
        merged = replace(merged, **dict(zip(positional_fields, args)))
    known = {f.name for f in fields(PlannerConfig)}
    unknown = set(overrides) - known
    if unknown:
        raise TypeError(
            f"{planner_name} got unexpected keyword arguments"
            f" {sorted(unknown)}"
        )
    supplied = {k: v for k, v in overrides.items() if v is not None}
    if supplied:
        merged = replace(merged, **supplied)
    if merged.compiler not in ("fast", "algebraic"):
        raise ValueError(f"unknown compiler {merged.compiler!r}")
    return merged


def sweep_solutions(
    backend,
    parametric,
    rhs_values,
    *,
    form_cache=None,
    formulation: str | None = None,
    context: "PlanningContext | None" = None,
):
    """Route a budget ladder to the best available batch entry point.

    Preference order: the cross-session form cache's solution cache
    (:meth:`repro.service.cache.SharedPlanCache.sweep_solutions` —
    equal-content tenants pay one batch solve), then the backend's
    ``solve_batch`` (vectorized lockstep on the pure simplex, hoisted
    ``linprog`` loop on scipy), then plain ``solve_sweep``.  All three
    return element-wise identical solutions.
    """
    if (
        form_cache is not None
        and formulation is not None
        and hasattr(form_cache, "sweep_solutions")
    ):
        return form_cache.sweep_solutions(
            formulation, context, parametric, rhs_values, backend
        )
    if hasattr(backend, "solve_batch"):
        return backend.solve_batch(parametric, rhs_values)
    return backend.solve_sweep(parametric, rhs_values)


class Planner(Protocol):
    """Anything that turns a planning context into a query plan."""

    name: str

    def plan(self, context: PlanningContext) -> QueryPlan:
        """Produce a plan whose static cost respects the budget."""
        ...  # pragma: no cover - protocol definition


def observed(plan_method):
    """Wrap a planner's ``plan`` so instrumented contexts measure it.

    With ``context.instrumentation`` unset the original method runs
    bare (no timers, no allocations); otherwise the build is timed
    into ``plan.build_seconds.<planner>`` and summarized as a
    ``plan_built`` event.
    """

    @functools.wraps(plan_method)
    def wrapper(self, context: PlanningContext) -> QueryPlan:
        obs = context.instrumentation
        if obs is None:
            return plan_method(self, context)
        with obs.span("plan", planner=self.name):
            with obs.timer(f"plan.build_seconds.{self.name}") as timer:
                plan = plan_method(self, context)
        obs.record_plan_built(
            self.name,
            edges_used=len(plan.used_edges),
            static_cost_mj=context.plan_cost(plan),
            budget_mj=context.budget,
            seconds=timer.elapsed,
        )
        return plan

    return wrapper
