"""The :class:`Instrumentation` facade and its no-op helpers.

One ``Instrumentation`` object bundles a metrics registry with an
event trace and is threaded — always optionally — through the layers
that do measurable work: LP backends, planners (via
``PlanningContext``), the simulator, and the query engine.  Call
sites never branch on feature flags; they either hold an
``Instrumentation`` or ``None``, and the module-level helpers
(:func:`maybe_timer`, :func:`record_event`) collapse to no-ops for
``None`` so the disabled path allocates nothing.
"""

from __future__ import annotations

import functools
import time

from repro.obs.events import EventTrace
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer


class Instrumentation:
    """Metrics registry, event trace, and span tracer with domain helpers.

    Parameters
    ----------
    trace_capacity:
        Ring-buffer size of the event trace; old events are evicted
        (and counted as dropped) beyond this.
    span_capacity:
        Maximum retained spans in the latency tree (further spans are
        counted as dropped).
    clock:
        Monotonic seconds source shared by timers, event timestamps,
        and spans (default ``time.perf_counter``); injectable so tests
        assert exact durations.
    span_mode:
        ``"block"`` (default) or ``"ring"``; ring keeps the newest
        span trees when the tracer fills up, which long-running
        services want (see :class:`~repro.obs.spans.SpanTracer`).
    """

    def __init__(
        self,
        trace_capacity: int = 1024,
        span_capacity: int = 8192,
        clock=None,
        span_mode: str = "block",
    ) -> None:
        self.clock = clock or time.perf_counter
        self.metrics = MetricsRegistry(clock=self.clock)
        self.trace = EventTrace(capacity=trace_capacity, clock=self.clock)
        self.spans = SpanTracer(
            clock=self.clock, capacity=span_capacity, mode=span_mode
        )

    # -- primitive API --------------------------------------------------
    def counter(self, name: str):
        return self.metrics.counter(name)

    def gauge(self, name: str):
        return self.metrics.gauge(name)

    def histogram(self, name: str):
        return self.metrics.histogram(name)

    def timer(self, name: str):
        """A fresh, nestable timing context over ``histogram(name)``."""
        return self.metrics.timer(name)

    def span(self, name: str, **attributes):
        """A fresh span; nests under the currently open span on enter."""
        return self.spans.span(name, **attributes)

    def event(self, kind: str, **data):
        """Record a typed event and bump its ``events.<kind>`` counter."""
        self.metrics.counter(f"events.{kind}").inc()
        return self.trace.record(kind, **data)

    # -- domain helpers (one per cross-cutting record shape) -----------
    def record_lp_solve(self, model_name: str, stats) -> None:
        """One LP solve: per-formulation latency histogram + event.

        ``stats`` is a :class:`~repro.lp.result.SolveStats` (duck-typed
        so :mod:`repro.obs` stays dependency-free).
        """
        warm_started = bool(getattr(stats, "warm_started", False))
        pivots = int(getattr(stats, "pivots", 0))
        self.metrics.counter("lp.solves").inc()
        self.metrics.counter("lp.iterations").inc(stats.iterations)
        if warm_started:
            self.metrics.counter("lp.warm_starts").inc()
        if pivots:
            self.metrics.counter("lp.pivots").inc(pivots)
        self.metrics.histogram(f"lp.solve_seconds.{model_name}").observe(
            stats.wall_seconds
        )
        self.metrics.histogram("lp.variables").observe(stats.num_variables)
        self.metrics.histogram("lp.constraints").observe(stats.num_constraints)
        self.event(
            "lp_solve",
            model=model_name,
            backend=stats.backend,
            variables=stats.num_variables,
            constraints=stats.num_constraints,
            iterations=stats.iterations,
            wall_seconds=stats.wall_seconds,
            warm_started=warm_started,
            pivots=pivots,
        )

    def record_lp_sweep(
        self, model_name: str, *, members: int, warm_hits: int,
        pivots_saved: int, seconds: float, bland_activations: int = 0,
        cold_fallbacks: int = 0,
    ) -> None:
        """One parametric budget sweep solved through ``solve_sweep``.

        ``warm_hits`` counts members restarted from the previous
        optimal basis; ``pivots_saved`` is the pivot count a cold solve
        would have needed minus what the warm restarts actually spent
        (zero for backends without warm starts).  ``bland_activations``
        and ``cold_fallbacks`` are degeneracy telemetry: how often
        Bland's anti-cycling rule engaged and how many warm restarts
        had to be abandoned for cold re-solves.
        """
        self.metrics.counter("lp.sweep.solves").inc()
        self.metrics.counter("lp.sweep.members").inc(members)
        self.metrics.counter("lp.sweep.warm_hits").inc(warm_hits)
        self.metrics.counter("lp.sweep.pivots_saved").inc(pivots_saved)
        self.metrics.counter("lp.sweep.bland_activations").inc(
            bland_activations
        )
        self.metrics.counter("lp.sweep.cold_fallbacks").inc(cold_fallbacks)
        self.metrics.histogram(f"lp.sweep.seconds.{model_name}").observe(
            seconds
        )
        self.event(
            "lp_sweep",
            model=model_name,
            members=members,
            warm_hits=warm_hits,
            pivots_saved=pivots_saved,
            bland_activations=bland_activations,
            cold_fallbacks=cold_fallbacks,
            seconds=seconds,
        )

    def record_lp_batch(
        self, model_name: str, *, members: int, lockstep_iterations: int,
        cold_fallbacks: int, bland_activations: int, seconds: float,
    ) -> None:
        """One batched solve through ``solve_batch``: many same-structure
        LPs advanced in lockstep over a stacked basis factorization.

        ``lockstep_iterations`` is the number of vectorized pivot
        rounds the batch needed (zero for backends that loop compiled
        arrays instead of truly vectorizing); ``cold_fallbacks`` counts
        members that left the lockstep for an exact scalar re-solve.
        """
        self.metrics.counter("lp.batch.solves").inc()
        self.metrics.counter("lp.batch.members").inc(members)
        self.metrics.counter("lp.batch.lockstep_iterations").inc(
            lockstep_iterations
        )
        self.metrics.counter("lp.batch.cold_fallbacks").inc(cold_fallbacks)
        self.metrics.counter("lp.batch.bland_activations").inc(
            bland_activations
        )
        self.metrics.histogram(f"lp.batch.seconds.{model_name}").observe(
            seconds
        )
        self.event(
            "lp_batch",
            model=model_name,
            members=members,
            lockstep_iterations=lockstep_iterations,
            cold_fallbacks=cold_fallbacks,
            bland_activations=bland_activations,
            seconds=seconds,
        )

    def record_fleet_run(
        self, *, cells: int, groups: int, blocks: int, epochs: int,
        shards: int, seconds: float,
    ) -> None:
        """One fleet-simulator run: a topology × plan × trace grid
        evaluated in blocked vectorized passes.

        ``groups`` counts distinct (topology, plan) execution groups,
        ``blocks`` the vectorized tree recursions actually run, and
        ``shards`` the process-pool partitions (1 for a serial run).
        """
        self.metrics.counter("fleet.runs").inc()
        self.metrics.counter("fleet.cells").inc(cells)
        self.metrics.counter("fleet.groups").inc(groups)
        self.metrics.counter("fleet.blocks").inc(blocks)
        self.metrics.counter("fleet.epochs").inc(epochs)
        self.metrics.counter("fleet.shards").inc(shards)
        self.metrics.histogram("fleet.run_seconds").observe(seconds)
        self.event(
            "fleet_run",
            cells=cells,
            groups=groups,
            blocks=blocks,
            epochs=epochs,
            shards=shards,
            seconds=seconds,
        )

    def record_plan_built(
        self, planner: str, *, edges_used: int, static_cost_mj: float,
        budget_mj: float, seconds: float,
    ) -> None:
        """One planner invocation (LP-based or combinatorial).

        The build-time histogram is fed by the caller's timer (see
        ``repro.planners.base.observed``); this records the rest.
        """
        self.metrics.counter("plan.builds").inc()
        self.metrics.counter(f"plan.builds.{planner}").inc()
        self.metrics.gauge(f"plan.static_cost_mj.{planner}").set(static_cost_mj)
        self.event(
            "plan_built",
            planner=planner,
            edges_used=edges_used,
            static_cost_mj=static_cost_mj,
            budget_mj=budget_mj,
            seconds=seconds,
        )

    def record_collection(
        self, label: str, *, messages: int, values: int, retries: int,
        energy_mj: float, by_depth: dict | None = None,
    ) -> None:
        """One simulated collection phase, with per-edge-depth detail."""
        self.metrics.counter("sim.collections").inc()
        self.metrics.counter(f"sim.collections.{label}").inc()
        self.metrics.counter("sim.messages").inc(messages)
        self.metrics.counter("sim.values_sent").inc(values)
        self.metrics.counter("sim.retries").inc(retries)
        self.metrics.counter("sim.energy_mj").inc(energy_mj)
        if by_depth:
            for depth, detail in by_depth.items():
                self.metrics.counter(f"sim.messages.depth{depth}").inc(
                    detail["messages"]
                )
                self.metrics.counter(f"sim.bytes.depth{depth}").inc(
                    detail["bytes"]
                )
                self.metrics.counter(f"sim.energy_mj.depth{depth}").inc(
                    detail["energy_mj"]
                )
        self.event(
            "collection_run",
            label=label,
            messages=messages,
            values=values,
            retries=retries,
            energy_mj=energy_mj,
            by_depth={str(d): dict(v) for d, v in (by_depth or {}).items()},
        )

    def record_batch_collection(
        self, label: str, *, epochs: int, messages: int, values: int,
        retries: int, energy_mj: float, seconds: float,
    ) -> None:
        """One batched collection phase: an entire trace evaluated in a
        single vectorized tree recursion.

        ``messages``/``values``/``retries``/``energy_mj`` are totals
        over the whole batch; the batch-size histogram plus the
        per-label timer are what the speedup benchmarks read back.
        """
        self.metrics.counter("sim.batch.collections").inc()
        self.metrics.counter(f"sim.batch.collections.{label}").inc()
        self.metrics.counter("sim.batch.epochs").inc(epochs)
        self.metrics.counter("sim.batch.messages").inc(messages)
        self.metrics.counter("sim.batch.values_sent").inc(values)
        self.metrics.counter("sim.batch.retries").inc(retries)
        self.metrics.counter("sim.batch.energy_mj").inc(energy_mj)
        self.metrics.histogram("sim.batch.size").observe(epochs)
        self.metrics.histogram(f"sim.batch.seconds.{label}").observe(seconds)
        self.event(
            "batch_collection_run",
            label=label,
            epochs=epochs,
            messages=messages,
            values=values,
            retries=retries,
            energy_mj=energy_mj,
            seconds=seconds,
        )

    def record_runner_trial(self, *, cached: bool, seconds: float = 0.0) -> None:
        """One experiment-runner trial: either served from the
        content-keyed result cache or actually executed."""
        self.metrics.counter("runner.trials").inc()
        if cached:
            self.metrics.counter("runner.cache.hits").inc()
        else:
            self.metrics.counter("runner.cache.misses").inc()
            self.metrics.histogram("runner.trial_seconds").observe(seconds)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "metrics": self.metrics.to_dict(),
            "trace": self.trace.to_dict(),
            "spans": self.spans.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Instrumentation":
        obs = cls()
        obs.metrics = MetricsRegistry.from_dict(data.get("metrics", {}))
        obs.trace = EventTrace.from_dict(
            data.get("trace", {"capacity": 1024, "next_seq": 0, "events": []})
        )
        obs.spans = SpanTracer.from_dict(data.get("spans", {}))
        return obs


class _NullTimer:
    """Shared do-nothing context for the disabled-instrumentation path."""

    __slots__ = ()
    elapsed = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_TIMER = _NullTimer()
"""The singleton no-op timer; proof that the disabled path allocates
nothing (tests assert identity against this object)."""


def maybe_timer(instrumentation: Instrumentation | None, name: str):
    """``instrumentation.timer(name)``, or the shared no-op context."""
    if instrumentation is None:
        return NULL_TIMER
    return instrumentation.timer(name)


def record_event(instrumentation: Instrumentation | None, kind: str, **data):
    """``instrumentation.event(kind, ...)``, or nothing at all."""
    if instrumentation is None:
        return None
    return instrumentation.event(kind, **data)


def timed(name: str, attr: str = "instrumentation"):
    """Decorate a method so its wall time lands in ``histogram(name)``.

    The owning object's ``attr`` attribute supplies the
    :class:`Instrumentation`; when it is ``None`` the method runs bare.
    """

    def decorate(method):
        @functools.wraps(method)
        def wrapper(self, *args, **kwargs):
            instrumentation = getattr(self, attr, None)
            if instrumentation is None:
                return method(self, *args, **kwargs)
            with instrumentation.timer(name):
                return method(self, *args, **kwargs)

        return wrapper

    return decorate
