"""Distributed observability: trace contexts, shard telemetry, live surfaces.

Three layers, all optional and all built on the in-process toolkit:

- :class:`TraceContext` — a compact (trace id, parent span id) pair
  that rides the wire with a request (v2 header block, v1 envelope
  field) so a client span, the router's dispatch span, and the worker's
  ``service.request`` → plan → compile → solve subtree stitch into one
  cross-process trace.  Trace ids are minted at the outermost client
  span and inherited by anything nested inside it (:func:`adopt_trace`).
- :class:`TelemetryAggregator` — merges per-shard snapshots (metrics
  registry dumps, span trees, slow-request exemplars) polled over the
  shard Pipe channel into fleet-level views: mergeable log-linear
  histogram quantiles (p50/p95/p99 that survive merging, unlike
  reservoirs), per-shard qps from successive snapshot deltas, and a
  single merged Chrome-trace document with one ``pid`` lane per shard.
- :class:`TelemetryServer` — an opt-in stdlib ``http.server`` thread
  serving Prometheus exposition (``/metrics``), the merged trace
  (``/trace``), slow-request exemplars (``/exemplars``), and the
  dashboard snapshot (``/json``) that ``repro top`` renders.

Nothing here imports :mod:`repro.service`; the service layer depends on
this module, not the other way around.
"""

from __future__ import annotations

import heapq
import json
import random
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ObservabilityError
from repro.obs.export import _format_value, _metric_name
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import Histogram
from repro.obs.spans import NULL_SPAN

__all__ = [
    "LocalTelemetrySource",
    "REQUEST_LATENCY_METRIC",
    "SlowRequestLog",
    "TelemetryAggregator",
    "TelemetryServer",
    "TraceContext",
    "adopt_trace",
    "inherited_trace_id",
    "new_trace_id",
    "render_top",
]

MAX_TRACE_ID = (1 << 64) - 1

REQUEST_LATENCY_METRIC = "service.request_seconds"
"""Histogram name every service feeds its request wall time into; the
aggregator's per-shard and fleet p50/p95/p99 read this metric."""


# -- trace context -----------------------------------------------------------


@dataclass(frozen=True)
class TraceContext:
    """The cross-process trace coordinates carried with one request.

    ``trace_id`` names the whole distributed trace; ``parent_span_id``
    is the sender-side span the receiver's work nests under.  Both are
    unsigned 64-bit so the pair packs into a fixed 16-byte v2 header
    block (and a two-int JSON envelope field on v1).
    """

    trace_id: int
    parent_span_id: int = 0

    def __post_init__(self) -> None:
        for field in ("trace_id", "parent_span_id"):
            value = getattr(self, field)
            if not isinstance(value, int) or not (0 <= value <= MAX_TRACE_ID):
                raise ObservabilityError(
                    f"trace context {field} must be a u64 (got {value!r})"
                )
        if self.trace_id == 0:
            raise ObservabilityError("trace id 0 is reserved (no trace)")

    def to_jsonable(self) -> list[int]:
        return [self.trace_id, self.parent_span_id]

    @classmethod
    def from_jsonable(cls, value) -> "TraceContext":
        if (
            not isinstance(value, (list, tuple))
            or len(value) != 2
            or not all(isinstance(v, int) for v in value)
        ):
            raise ObservabilityError(
                f"malformed trace context {value!r}; expected"
                " [trace_id, parent_span_id]"
            )
        return cls(trace_id=value[0], parent_span_id=value[1])


_TRACE_RNG = random.Random()


def new_trace_id(rng: random.Random | None = None) -> int:
    """A fresh nonzero 64-bit trace id."""
    return (rng or _TRACE_RNG).getrandbits(63) | 1


def inherited_trace_id(obs: Instrumentation | None) -> int | None:
    """The trace id of the innermost open span that carries one.

    This is how nesting propagates a trace without threading arguments:
    a ``service.shard.request`` span annotated with ``trace_id`` makes
    every client span opened inside it join the same trace.
    """
    if obs is None:
        return None
    for span in reversed(obs.spans.open_spans):
        trace_id = span.attributes.get("trace_id")
        if trace_id:
            return int(trace_id)
    return None


def adopt_trace(obs: Instrumentation | None, span) -> TraceContext | None:
    """Annotate an *entered* span with its trace id; return the context
    a downstream hop should carry.

    The span inherits the enclosing open span's trace id when there is
    one, otherwise a fresh id is minted — so the outermost client span
    starts the trace and everything nested (including across processes)
    joins it.  Returns ``None`` on the disabled path.
    """
    if obs is None or span is NULL_SPAN:
        return None
    trace_id = span.attributes.get("trace_id")
    if not trace_id:
        trace_id = inherited_trace_id(obs) or new_trace_id()
        span.annotate(trace_id=trace_id)
    return TraceContext(trace_id=int(trace_id), parent_span_id=span.span_id)


# -- slow-request exemplars --------------------------------------------------


class SlowRequestLog:
    """The top-N slowest requests, kept as full span-tree dumps.

    A bounded min-heap on duration: offering a finished request span
    either fits (under capacity), beats the current fastest exemplar
    (replace), or is ignored — O(log N) per slow request, O(1) for the
    common fast request.  Dumps (not live spans) are stored so the
    exemplars survive span-tracer ring eviction and pickle cleanly over
    the shard telemetry Pipe.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ObservabilityError("slow-request log capacity must be >= 1")
        self.capacity = capacity
        self._heap: list[tuple[float, int, dict]] = []
        self._seq = 0
        self._lock = threading.Lock()

    def offer(self, span) -> None:
        """Consider one finished request span for the exemplar set."""
        if span is NULL_SPAN or not span.finished:
            return
        duration = span.duration_s
        with self._lock:
            if len(self._heap) < self.capacity:
                self._seq += 1
                heapq.heappush(
                    self._heap, (duration, self._seq, span.to_dict())
                )
            elif duration > self._heap[0][0]:
                self._seq += 1
                heapq.heapreplace(
                    self._heap, (duration, self._seq, span.to_dict())
                )

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def to_dicts(self) -> list[dict]:
        """Exemplars slowest-first: ``{"duration_s", "span"}`` rows."""
        with self._lock:
            entries = sorted(self._heap, key=lambda e: -e[0])
        return [
            {"duration_s": duration, "span": dump}
            for duration, __, dump in entries
        ]


# -- fleet aggregation -------------------------------------------------------


def _span_dump_events(
    dump: dict, origin_s: float, pid: int, trace_id, out: list[dict]
) -> None:
    """Emit Chrome ``X`` events for one span-dump subtree.

    ``trace_id`` is the inherited trace id from the nearest annotated
    ancestor; a span carrying its own ``trace_id`` attribute switches
    the subtree to it.  That is what stitches a worker's plan/compile/
    solve spans (annotated only at the ``service.request`` root) into
    the client's trace in the merged document.
    """
    args = dict(dump.get("attributes", {}))
    own = args.get("trace_id")
    trace_id = own if own else trace_id
    if trace_id:
        args["trace_id"] = trace_id
    span_id = dump.get("span_id", 0)
    if span_id:
        args["span_id"] = span_id
    start = float(dump.get("start_s", 0.0))
    end = dump.get("end_s")
    out.append(
        {
            "name": dump.get("name", "?"),
            "cat": "repro",
            "ph": "X",
            "ts": (start - origin_s) * 1e6,
            "dur": ((end - start) if end is not None else 0.0) * 1e6,
            "pid": pid,
            "tid": 1,
            "args": args,
        }
    )
    for child in dump.get("children", []):
        _span_dump_events(child, origin_s, pid, trace_id, out)


def _walk_dump_starts(dump: dict, out: list[float]) -> None:
    out.append(float(dump.get("start_s", 0.0)))
    for child in dump.get("children", []):
        _walk_dump_starts(child, out)


class TelemetryAggregator:
    """Fleet-level view over per-shard telemetry snapshots.

    Feed it the dicts produced by
    ``TopKService.telemetry_snapshot()`` (tagged with a ``"shard"``
    key); it keeps the latest snapshot per shard, derives qps from
    successive snapshot deltas, merges the shards' log-linear
    histograms into fleet quantiles, and renders the live surfaces
    (Prometheus text, merged Chrome trace, dashboard rows).
    Thread-safe: the HTTP server polls while the owner ingests.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshots: dict[str, dict] = {}
        self._rates: dict[str, float] = {}
        self._prev: dict[str, tuple[float, float]] = {}

    # -- ingestion ------------------------------------------------------
    def ingest(self, snapshot: dict) -> None:
        """Fold in one shard snapshot (latest wins; qps from deltas)."""
        shard = str(snapshot.get("shard", "0"))
        ts = float(snapshot.get("ts", 0.0))
        requests = float(snapshot.get("requests_handled", 0.0))
        with self._lock:
            previous = self._prev.get(shard)
            if previous is not None and ts > previous[0]:
                self._rates[shard] = max(
                    0.0, (requests - previous[1]) / (ts - previous[0])
                )
            else:
                uptime = float(snapshot.get("uptime_s", 0.0) or 0.0)
                self._rates[shard] = requests / uptime if uptime > 0 else 0.0
            self._prev[shard] = (ts, requests)
            self._snapshots[shard] = snapshot

    # -- accessors ------------------------------------------------------
    @property
    def shards(self) -> list[str]:
        with self._lock:
            return sorted(self._snapshots, key=lambda s: (len(s), s))

    def snapshot(self, shard: str) -> dict:
        with self._lock:
            return self._snapshots[str(shard)]

    def qps(self, shard: str) -> float:
        with self._lock:
            return self._rates.get(str(shard), 0.0)

    def fleet_qps(self) -> float:
        with self._lock:
            return sum(self._rates.values())

    def shard_histogram(self, shard: str, name: str) -> Histogram | None:
        """One shard's histogram, rebuilt mergeable from its dump."""
        with self._lock:
            snapshot = self._snapshots.get(str(shard))
        if snapshot is None:
            return None
        dump = (
            snapshot.get("metrics", {}).get("histograms", {}).get(name)
        )
        if dump is None:
            return None
        return Histogram.from_merge_dict(name, dump)

    def fleet_histogram(self, name: str) -> Histogram | None:
        """The named histogram merged across every shard."""
        merged: Histogram | None = None
        for shard in self.shards:
            hist = self.shard_histogram(shard, name)
            if hist is None:
                continue
            if merged is None:
                merged = hist
            else:
                merged.merge(hist)
        return merged

    # -- dashboard rows -------------------------------------------------
    def _shard_row_locked(self, shard: str) -> dict:
        snapshot = self._snapshots[shard]
        cache = snapshot.get("cache", {})
        hits = float(cache.get("hits", 0))
        misses = float(cache.get("misses", 0))
        lookups = hits + misses
        dump = (
            snapshot.get("metrics", {})
            .get("histograms", {})
            .get(REQUEST_LATENCY_METRIC)
        )
        latency = (
            Histogram.from_merge_dict(REQUEST_LATENCY_METRIC, dump)
            if dump
            else None
        )
        return {
            "shard": shard,
            "qps": round(self._rates.get(shard, 0.0), 2),
            "p50_ms": round(latency.quantile(50) * 1e3, 3) if latency else None,
            "p99_ms": round(latency.quantile(99) * 1e3, 3) if latency else None,
            "requests": int(snapshot.get("requests_handled", 0)),
            "sessions": int(snapshot.get("sessions_open", 0)),
            "cache_hit_pct": (
                round(100.0 * hits / lookups, 1) if lookups else None
            ),
            "energy_mj": round(float(snapshot.get("energy_mj", 0.0)), 3),
            "dropped_spans": int(
                snapshot.get("spans", {}).get("dropped", 0)
            ),
            "uptime_s": round(float(snapshot.get("uptime_s", 0.0)), 1),
        }

    def top_rows(self) -> list[dict]:
        """One dashboard row per shard plus a trailing fleet row."""
        with self._lock:
            shards = sorted(self._snapshots, key=lambda s: (len(s), s))
            rows = [self._shard_row_locked(shard) for shard in shards]
        fleet_latency = self.fleet_histogram(REQUEST_LATENCY_METRIC)
        cache_hits = cache_lookups = 0.0
        with self._lock:
            for shard in shards:
                cache = self._snapshots[shard].get("cache", {})
                cache_hits += float(cache.get("hits", 0))
                cache_lookups += float(cache.get("hits", 0)) + float(
                    cache.get("misses", 0)
                )
        rows.append(
            {
                "shard": "fleet",
                "qps": round(self.fleet_qps(), 2),
                "p50_ms": (
                    round(fleet_latency.quantile(50) * 1e3, 3)
                    if fleet_latency
                    else None
                ),
                "p99_ms": (
                    round(fleet_latency.quantile(99) * 1e3, 3)
                    if fleet_latency
                    else None
                ),
                "requests": sum(r["requests"] for r in rows),
                "sessions": sum(r["sessions"] for r in rows),
                "cache_hit_pct": (
                    round(100.0 * cache_hits / cache_lookups, 1)
                    if cache_lookups
                    else None
                ),
                "energy_mj": round(sum(r["energy_mj"] for r in rows), 3),
                "dropped_spans": sum(r["dropped_spans"] for r in rows),
                "uptime_s": max(
                    (r["uptime_s"] for r in rows), default=0.0
                ),
            }
        )
        return rows

    def to_json_dict(self) -> dict:
        """The ``/json`` payload ``repro top`` renders."""
        return {"rows": self.top_rows(), "shards": self.shards}

    # -- exemplars ------------------------------------------------------
    def exemplars(self, limit: int = 8) -> list[dict]:
        """The fleet's slowest requests (tagged by shard), slowest first."""
        merged: list[dict] = []
        with self._lock:
            for shard, snapshot in self._snapshots.items():
                for entry in snapshot.get("exemplars", []):
                    merged.append({**entry, "shard": shard})
        merged.sort(key=lambda e: -float(e.get("duration_s", 0.0)))
        return merged[:limit]

    # -- Prometheus exposition ------------------------------------------
    def prometheus(self, prefix: str = "repro") -> str:
        """Per-shard qps/p99/requests/cache/energy gauges plus fleet
        request-latency quantiles, in text exposition format."""
        lines: list[str] = []

        def gauge(metric: str, samples: list[tuple[str, float]]) -> None:
            name = _metric_name(metric, prefix)
            lines.append(f"# TYPE {name} gauge")
            for labels, value in samples:
                lines.append(f"{name}{labels} {_format_value(value)}")

        rows = self.top_rows()
        shard_rows = [r for r in rows if r["shard"] != "fleet"]
        gauge(
            "shard_qps",
            [(f'{{shard="{r["shard"]}"}}', r["qps"]) for r in shard_rows],
        )
        gauge(
            "shard_p99_seconds",
            [
                (f'{{shard="{r["shard"]}"}}', (r["p99_ms"] or 0.0) / 1e3)
                for r in shard_rows
            ],
        )
        gauge(
            "shard_requests",
            [
                (f'{{shard="{r["shard"]}"}}', float(r["requests"]))
                for r in shard_rows
            ],
        )
        gauge(
            "shard_sessions_open",
            [
                (f'{{shard="{r["shard"]}"}}', float(r["sessions"]))
                for r in shard_rows
            ],
        )
        gauge(
            "shard_energy_mj",
            [
                (f'{{shard="{r["shard"]}"}}', r["energy_mj"])
                for r in shard_rows
            ],
        )
        fleet = rows[-1]
        gauge("fleet_qps", [("", fleet["qps"])])
        latency = self.fleet_histogram(REQUEST_LATENCY_METRIC)
        if latency is not None and latency.count:
            metric = _metric_name(REQUEST_LATENCY_METRIC, prefix)
            lines.append(f"# TYPE {metric} summary")
            for quantile in (0.5, 0.95, 0.99):
                value = latency.quantile(quantile * 100.0)
                lines.append(
                    f'{metric}{{quantile="{quantile}"}}'
                    f" {_format_value(value)}"
                )
            lines.append(f"{metric}_sum {_format_value(latency.total)}")
            lines.append(f"{metric}_count {latency.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- merged Chrome trace --------------------------------------------
    def chrome_trace(self, client: Instrumentation | None = None) -> dict:
        """One Chrome trace-event document across the whole fleet.

        Each shard's span forest becomes its own ``pid`` lane (named
        ``shard <i>``); a client-side :class:`Instrumentation` adds a
        ``client`` lane.  Spans inherit the ``trace_id`` of their
        nearest annotated ancestor, so filtering on one trace id in
        perfetto shows the full client → dispatch → worker story.
        Timestamps align because every process reads the same
        system-wide monotonic clock.
        """
        lanes: list[tuple[str, list[dict]]] = []
        if client is not None:
            lanes.append(
                ("client", [r.to_dict() for r in client.spans.roots])
            )
        with self._lock:
            shards = sorted(self._snapshots, key=lambda s: (len(s), s))
            for shard in shards:
                roots = self._snapshots[shard].get("spans", {}).get(
                    "roots", []
                )
                lanes.append((f"shard {shard}", list(roots)))
        starts: list[float] = []
        for __, roots in lanes:
            for root in roots:
                _walk_dump_starts(root, starts)
        origin = min(starts) if starts else 0.0
        events: list[dict] = []
        for pid, (name, roots) in enumerate(lanes, start=1):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 1,
                    "args": {"name": name},
                }
            )
            for root in roots:
                _span_dump_events(root, origin, pid, None, events)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def chrome_trace_json(
        self, client: Instrumentation | None = None,
        indent: int | None = None,
    ) -> str:
        return json.dumps(self.chrome_trace(client), indent=indent)


# -- dashboard rendering -----------------------------------------------------

_TOP_COLUMNS = (
    ("shard", 6), ("qps", 8), ("p50_ms", 8), ("p99_ms", 8),
    ("requests", 9), ("sessions", 9), ("cache_hit_pct", 7),
    ("energy_mj", 10), ("dropped_spans", 6),
)

_TOP_HEADERS = {
    "cache_hit_pct": "cache%", "dropped_spans": "drops",
    "energy_mj": "energy_mj", "p50_ms": "p50(ms)", "p99_ms": "p99(ms)",
}


def render_top(rows: list[dict]) -> str:
    """The ``repro top`` dashboard: one aligned line per shard + fleet."""
    header = "  ".join(
        _TOP_HEADERS.get(field, field).rjust(width)
        for field, width in _TOP_COLUMNS
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for field, width in _TOP_COLUMNS:
            value = row.get(field)
            cells.append(("-" if value is None else str(value)).rjust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)


# -- the opt-in HTTP surface -------------------------------------------------


class TelemetryServer:
    """A live-telemetry HTTP endpoint on a stdlib server thread.

    ``collect`` is called per request and must return a (refreshed)
    :class:`TelemetryAggregator` — for a sharded service that is
    ``ShardedService.poll_telemetry``; for a single process it is a
    :class:`LocalTelemetrySource`.  Routes:

    - ``/metrics``   Prometheus text exposition
    - ``/trace``     merged Chrome-trace JSON (perfetto-loadable)
    - ``/exemplars`` slowest-request span trees (JSON)
    - ``/json``      dashboard snapshot (what ``repro top`` polls)
    """

    def __init__(
        self, collect, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.collect = collect
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # quiet by design
                return

            def _send(self, status: int, body: bytes, ctype: str) -> None:
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - stdlib contract
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = outer.collect().prometheus().encode()
                        self._send(200, body, "text/plain; version=0.0.4")
                    elif path == "/trace":
                        body = outer.collect().chrome_trace_json().encode()
                        self._send(200, body, "application/json")
                    elif path == "/exemplars":
                        body = json.dumps(
                            outer.collect().exemplars()
                        ).encode()
                        self._send(200, body, "application/json")
                    elif path == "/json":
                        body = json.dumps(
                            outer.collect().to_json_dict()
                        ).encode()
                        self._send(200, body, "application/json")
                    else:
                        self._send(404, b"not found\n", "text/plain")
                except Exception as err:  # surface, never crash the thread
                    self._send(
                        500, f"telemetry error: {err}\n".encode(),
                        "text/plain",
                    )

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        self.port = self._httpd.server_address[1]
        self._thread: threading.Thread | None = None

    def start(self) -> "TelemetryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-telemetry",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def url(self, path: str = "/json") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class LocalTelemetrySource:
    """Adapts one in-process service to the ``collect`` contract.

    Each call snapshots the service as shard ``"0"`` and returns the
    aggregator — the single-process twin of
    ``ShardedService.poll_telemetry``.
    """

    def __init__(self, service, shard: str = "0") -> None:
        self.service = service
        self.shard = shard
        self.aggregator = TelemetryAggregator()

    def __call__(self) -> TelemetryAggregator:
        snapshot = self.service.telemetry_snapshot()
        snapshot["shard"] = self.shard
        self.aggregator.ingest(snapshot)
        return self.aggregator
