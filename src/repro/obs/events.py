"""The structured event trace: a ring buffer of typed events.

Every cross-cutting layer appends events of a known kind (an LP was
solved, a plan was built/installed, a collection ran, ...) with a flat
payload of numbers and strings.  The trace is a bounded deque: old
events are evicted once ``capacity`` is exceeded, while ``dropped``
reports how many were lost, so a long engine run never grows without
bound but the reporter can still say so.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import ObservabilityError

EVENT_KINDS = (
    "lp_solve",
    "lp_sweep",
    "lp_batch",
    "fleet_run",
    "plan_built",
    "plan_installed",
    "collection_run",
    "batch_collection_run",
    "sample_collected",
    "replan_skipped",
    "failure_observed",
    "audit_run",
    "shard_lifecycle",
)
"""The typed event vocabulary; ``record`` rejects anything else."""

_KIND_SET = frozenset(EVENT_KINDS)


@dataclass(frozen=True)
class Event:
    """One recorded occurrence."""

    seq: int
    """Global sequence number (monotonic, survives eviction)."""

    kind: str
    data: dict = field(default_factory=dict)

    ts: float = 0.0
    """Clock reading at record time (tracer clock; perf-counter
    seconds by default, so only differences are meaningful)."""

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "data": dict(self.data),
            "ts": self.ts,
        }


class EventTrace:
    """Bounded, ordered log of :class:`Event` records.

    The clock is injectable (default ``time.perf_counter``) and stamps
    each event's ``ts``, which the Chrome-trace exporter uses to place
    instant events on the span timeline.
    """

    def __init__(
        self,
        capacity: int = 1024,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if capacity < 1:
            raise ObservabilityError("event trace capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock or time.perf_counter
        self._events: deque[Event] = deque(maxlen=capacity)
        self._next_seq = 0

    def record(self, kind: str, **data) -> Event:
        """Append one event; returns it for convenience."""
        if kind not in _KIND_SET:
            raise ObservabilityError(
                f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}"
            )
        event = Event(self._next_seq, kind, data, ts=self.clock())
        self._next_seq += 1
        self._events.append(event)
        return event

    # -- inspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def total_recorded(self) -> int:
        return self._next_seq

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer so far."""
        return self._next_seq - len(self._events)

    def events(self, kind: str | None = None) -> list[Event]:
        """Retained events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def kinds(self) -> list[str]:
        """The kind of each retained event, in order."""
        return [event.kind for event in self._events]

    def counts(self) -> dict[str, int]:
        """Retained events per kind (insertion-ordered by vocabulary)."""
        totals = {kind: 0 for kind in EVENT_KINDS}
        for event in self._events:
            totals[event.kind] += 1
        return {kind: n for kind, n in totals.items() if n}

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "next_seq": self._next_seq,
            "events": [event.to_dict() for event in self._events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EventTrace":
        try:
            trace = cls(capacity=int(data["capacity"]))
            for dump in data["events"]:
                trace._events.append(
                    Event(
                        int(dump["seq"]),
                        dump["kind"],
                        dict(dump["data"]),
                        ts=float(dump.get("ts", 0.0)),
                    )
                )
            trace._next_seq = int(data["next_seq"])
            return trace
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed event trace dump: {exc}") from exc
