"""Exporters: turn an instrumented run into standard tool formats.

Three writers over one :class:`~repro.obs.instrument.Instrumentation`:

- :func:`chrome_trace` / :func:`chrome_trace_json` — Chrome
  trace-event JSON (the ``traceEvents`` array format), loadable in
  perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Spans
  become complete ("X") events, typed trace events become instants
  ("i") on the same timeline.
- :func:`prometheus_text` — the Prometheus text exposition format for
  the metrics registry (counters, gauges, histograms-as-summaries).
- :func:`render_flame` — a flame-style ASCII tree of the span
  hierarchy for the terminal (``python -m repro trace``).

All three are pure functions of the instrumentation object, so dumps
restored with :func:`~repro.obs.report.from_json` export identically.
"""

from __future__ import annotations

import json

from repro.obs.instrument import Instrumentation
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "chrome_trace",
    "chrome_trace_json",
    "prometheus_text",
    "render_flame",
]


# -- Chrome trace-event JSON -------------------------------------------------


def _span_events(span: Span, origin_s: float, pid: int, tid: int) -> list[dict]:
    events = [
        {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": (span.start_s - origin_s) * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": pid,
            "tid": tid,
            "args": dict(span.attributes),
        }
    ]
    for child in span.children:
        events.extend(_span_events(child, origin_s, pid, tid))
    return events


def chrome_trace(obs: Instrumentation) -> dict:
    """The run as a Chrome trace-event document (JSON-ready dict).

    Timestamps are microseconds relative to the earliest span (or
    event) so the perfetto timeline starts at zero.  Span attributes
    travel in ``args``; typed events appear as instant markers.
    """
    starts = [root.start_s for root in obs.spans.roots]
    starts.extend(e.ts for e in obs.trace if e.ts)
    origin = min(starts) if starts else 0.0

    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "repro"},
        }
    ]
    for root in obs.spans.roots:
        events.extend(_span_events(root, origin, pid=1, tid=1))
    for event in obs.trace:
        if not event.ts:
            continue  # restored from a pre-timestamp dump
        events.append(
            {
                "name": event.kind,
                "cat": "events",
                "ph": "i",
                "s": "t",
                "ts": (event.ts - origin) * 1e6,
                "pid": 1,
                "tid": 1,
                "args": {k: v for k, v in event.data.items()
                         if isinstance(v, (int, float, str, bool))},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(obs: Instrumentation, indent: int | None = None) -> str:
    """:func:`chrome_trace` serialized to a JSON string."""
    return json.dumps(chrome_trace(obs), indent=indent)


# -- Prometheus text exposition ----------------------------------------------


def _metric_name(name: str, prefix: str) -> str:
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(obs: Instrumentation, prefix: str = "repro") -> str:
    """The metrics registry in Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix; histograms are
    exposed as summaries (reservoir quantiles plus exact ``_sum`` and
    ``_count``).  Output is sorted for diff-stable scrapes.
    """
    lines: list[str] = []
    for name, counter in sorted(obs.metrics.counters.items()):
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counter.value)}")
    for name, gauge in sorted(obs.metrics.gauges.items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge.value)}")
    for name, hist in sorted(obs.metrics.histograms.items()):
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for quantile in (0.5, 0.95, 0.99):
            value = hist.percentile(quantile * 100.0)
            lines.append(
                f'{metric}{{quantile="{quantile}"}} {_format_value(value)}'
            )
        lines.append(f"{metric}_sum {_format_value(hist.total)}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- flame-style ASCII tree --------------------------------------------------


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _format_attrs(attributes: dict, limit: int = 3) -> str:
    if not attributes:
        return ""
    parts = [f"{k}={v}" for k, v in list(attributes.items())[:limit]]
    if len(attributes) > limit:
        parts.append("...")
    return " (" + ", ".join(parts) + ")"


def _render_span(
    span: Span,
    root_s: float,
    prefix: str,
    is_last: bool,
    lines: list[str],
    bar_width: int,
) -> None:
    connector = "" if not prefix and is_last is None else (
        "`- " if is_last else "|- "
    )
    share = span.duration_s / root_s if root_s > 0 else 0.0
    bar = "#" * max(1, round(share * bar_width)) if root_s > 0 else ""
    label = f"{prefix}{connector}{span.name}{_format_attrs(span.attributes)}"
    lines.append(
        f"{label.ljust(48)} {_format_duration(span.duration_s).rjust(9)}"
        f" {share * 100:5.1f}%  {bar}"
    )
    child_prefix = prefix + ("" if is_last is None else
                             ("   " if is_last else "|  "))
    for position, child in enumerate(span.children):
        _render_span(
            child, root_s, child_prefix,
            position == len(span.children) - 1, lines, bar_width,
        )


def render_flame(
    source: Instrumentation | SpanTracer, bar_width: int = 20
) -> str:
    """The span tree as an indented ASCII flame view.

    Each line shows the span (with up to three attributes), its wall
    time, its share of the enclosing root span, and a proportional
    bar.  Unfinished spans report their elapsed-so-far.
    """
    tracer = source.spans if isinstance(source, Instrumentation) else source
    if not tracer.roots:
        return "(no spans recorded)"
    lines: list[str] = []
    for root in tracer.roots:
        _render_span(root, root.duration_s, "", None, lines, bar_width)
    if tracer.dropped:
        lines.append(
            f"(span tracer dropped {tracer.dropped} of"
            f" {tracer.total_recorded} spans)"
        )
    return "\n".join(lines)
