"""Hierarchical span tracing: a latency tree instead of flat timers.

A :class:`Span` is one timed region of work with a name, wall-clock
start/end, a flat attribute payload, and child spans.  The
:class:`SpanTracer` hands out spans as context managers and maintains
the enter/exit stack, so nesting follows lexical structure: whatever
span is open when a new one starts becomes its parent, across module
boundaries (a ``plan`` span opened by a planner adopts the ``solve``
span opened later by the LP backend, because both hang off the same
:class:`~repro.obs.instrument.Instrumentation`).

The same None-collapses-to-no-op discipline as
:func:`~repro.obs.instrument.maybe_timer` applies:
:func:`maybe_span` returns the shared :data:`NULL_SPAN` singleton when
instrumentation is disabled, so the disabled path allocates nothing.

The clock is injectable (default ``time.perf_counter``) so tests can
assert exact durations instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

from repro.errors import ObservabilityError


class Span:
    """One timed region: name, wall time, attributes, children.

    Spans are context managers; entering starts the clock and attaches
    the span to the tracer's currently open span (or the root list),
    exiting stops it.  ``duration_s`` is valid once exited (and is the
    elapsed-so-far for a still-open span).
    """

    __slots__ = ("name", "attributes", "start_s", "end_s", "children",
                 "span_id", "_tracer")

    def __init__(
        self, name: str, attributes: dict | None = None, tracer=None
    ) -> None:
        self.name = name
        self.attributes: dict = dict(attributes or {})
        self.start_s = 0.0
        self.end_s: float | None = None
        self.children: list[Span] = []
        self.span_id = 0  # assigned by the tracer on first enter
        self._tracer = tracer

    # -- timing ---------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Wall seconds covered (elapsed-so-far while still open)."""
        if self.end_s is not None:
            return self.end_s - self.start_s
        if self._tracer is not None:
            return self._tracer.clock() - self.start_s
        return 0.0

    def self_s(self) -> float:
        """Duration not covered by direct children (own work)."""
        return self.duration_s - sum(c.duration_s for c in self.children)

    # -- attributes -----------------------------------------------------
    def annotate(self, **attributes) -> "Span":
        """Attach (or overwrite) attribute values; returns the span."""
        self.attributes.update(attributes)
        return self

    # -- context management --------------------------------------------
    def __enter__(self) -> "Span":
        if self._tracer is None:
            raise ObservabilityError(
                f"span {self.name!r} is detached (restored from a dump?)"
                " and cannot be re-entered"
            )
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._exit(self)

    # -- traversal ------------------------------------------------------
    def walk(self, depth: int = 0) -> Iterator[tuple["Span", int]]:
        """Depth-first (self, depth) pairs over the subtree."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        try:
            span = cls(data["name"], dict(data.get("attributes", {})))
            span.span_id = int(data.get("span_id", 0))
            span.start_s = float(data["start_s"])
            end = data.get("end_s")
            span.end_s = None if end is None else float(end)
            span.children = [
                cls.from_dict(child) for child in data.get("children", [])
            ]
            return span
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed span dump: {exc}") from exc

    def __repr__(self) -> str:
        state = f"{self.duration_s * 1e3:.3f}ms" if self.finished else "open"
        return (
            f"Span({self.name!r}, {state}, children={len(self.children)})"
        )


class SpanTracer:
    """Hands out spans and maintains the open-span stack.

    Parameters
    ----------
    clock:
        Monotonic seconds source (default ``time.perf_counter``);
        injectable so tests assert exact durations.
    capacity:
        Maximum retained spans across all trees.  Beyond it, new spans
        still time their region (so control flow never changes) but are
        not attached to the tree; ``dropped`` reports how many.
    mode:
        ``"block"`` (default) stops attaching once full — the original
        behaviour, right for bounded runs where the warm-up matters.
        ``"ring"`` keeps the *newest* spans instead: when full, the
        oldest finished root trees are evicted (and counted in
        ``dropped``) to make room, which is what a long-running service
        wants for slow-request forensics.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        capacity: int = 8192,
        mode: str = "block",
    ) -> None:
        if capacity < 1:
            raise ObservabilityError("span tracer capacity must be >= 1")
        if mode not in ("block", "ring"):
            raise ObservabilityError(
                f"span tracer mode must be 'block' or 'ring' (got {mode!r})"
            )
        self.clock = clock or time.perf_counter
        self.capacity = capacity
        self.mode = mode
        self.roots: list[Span] = []
        self.retained = 0
        self.dropped = 0
        self._stack: list[Span] = []
        self._next_span_id = 1

    def span(self, name: str, **attributes) -> Span:
        """A fresh span, attached to the current open span on enter."""
        return Span(name, attributes, tracer=self)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def open_spans(self) -> tuple[Span, ...]:
        """The open-span stack, outermost first (read-only view)."""
        return tuple(self._stack)

    # -- stack mechanics (driven by Span.__enter__/__exit__) -----------
    def _enter(self, span: Span) -> None:
        span.start_s = self.clock()
        span.end_s = None
        if span.span_id == 0:
            span.span_id = self._next_span_id
            self._next_span_id += 1
        if self.retained >= self.capacity and self.mode == "ring":
            self._evict(1)
        if self.retained < self.capacity:
            self.retained += 1
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)
        else:
            self.dropped += 1
        self._stack.append(span)

    def _evict(self, needed: int) -> None:
        """Drop the oldest finished root trees until ``needed`` fit.

        Open trees (anything still on the stack, or simply unfinished)
        are never evicted — if only open trees remain, the new span is
        dropped instead, same as block mode.
        """
        index = 0
        while self.retained + needed > self.capacity and index < len(self.roots):
            root = self.roots[index]
            if not root.finished or root in self._stack:
                index += 1
                continue
            size = sum(1 for __ in root.walk())
            del self.roots[index]
            self.retained -= size
            self.dropped += size

    def _exit(self, span: Span) -> None:
        span.end_s = self.clock()
        # tolerate out-of-order exits (generators, manual use): pop
        # through to the span if it is on the stack at all
        if span in self._stack:
            while self._stack:
                if self._stack.pop() is span:
                    break

    # -- inspection -----------------------------------------------------
    @property
    def total_recorded(self) -> int:
        return self.retained + self.dropped

    def walk(self) -> Iterator[tuple[Span, int]]:
        """Depth-first (span, depth) pairs over every retained tree."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """All retained spans with the given name, in tree order."""
        return [span for span, __ in self.walk() if span.name == name]

    def __len__(self) -> int:
        return self.retained

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "mode": self.mode,
            "dropped": self.dropped,
            "roots": [root.to_dict() for root in self.roots],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanTracer":
        try:
            tracer = cls(
                capacity=int(data.get("capacity", 8192)),
                mode=str(data.get("mode", "block")),
            )
            tracer.roots = [
                Span.from_dict(root) for root in data.get("roots", [])
            ]
            tracer.retained = sum(
                1 for root in tracer.roots for __ in root.walk()
            )
            tracer.dropped = int(data.get("dropped", 0))
            tracer._next_span_id = 1 + max(
                (span.span_id for root in tracer.roots
                 for span, __ in root.walk()),
                default=0,
            )
            return tracer
        except (TypeError, ValueError) as exc:
            raise ObservabilityError(
                f"malformed span tracer dump: {exc}"
            ) from exc


class _NullSpan:
    """Shared do-nothing span for the disabled-instrumentation path."""

    __slots__ = ()
    name = ""
    attributes: dict = {}
    children: tuple = ()
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0
    finished = True
    span_id = 0

    def annotate(self, **attributes) -> "_NullSpan":
        return self

    def self_s(self) -> float:
        return 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = _NullSpan()
"""The singleton no-op span; the disabled path allocates nothing
(tests assert identity against this object)."""


def maybe_span(instrumentation, name: str, **attributes):
    """``instrumentation.span(name, ...)``, or the shared no-op span."""
    if instrumentation is None:
        return NULL_SPAN
    return instrumentation.span(name, **attributes)
