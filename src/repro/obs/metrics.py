"""Counters, gauges, and histogram timers.

The registry is dependency-free and deliberately small: metrics are
plain Python objects keyed by name, created on first touch, with a
JSON-serializable dump/restore so a run's measurements can be written
to disk and re-rendered later (``python -m repro stats``).

Histograms keep exact ``count``/``total``/``min``/``max`` plus a
bounded reservoir of observations for percentile estimates; with the
default limit the reservoir holds every observation the planning and
simulation layers produce in a realistic run.
"""

from __future__ import annotations

import time

from repro.errors import ObservabilityError


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount

    def to_dict(self) -> dict:
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value:g})"


class Gauge:
    """A last-write-wins level (e.g. installed plan cost)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict:
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value:g})"


class Histogram:
    """A distribution summary with a bounded sample reservoir."""

    __slots__ = ("name", "count", "total", "min", "max", "sample",
                 "sample_limit")

    def __init__(self, name: str, sample_limit: int = 4096) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.sample: list[float] = []
        self.sample_limit = sample_limit

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.sample) < self.sample_limit:
            self.sample.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (0..100) from the reservoir."""
        if not self.sample:
            return 0.0
        ordered = sorted(self.sample)
        index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    def summary(self) -> dict:
        """The row rendered by the ASCII reporter."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.max if self.count else 0.0,
            "total": self.total,
        }

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "sample": list(self.sample),
            "sample_limit": self.sample_limit,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:g})"


class _Timer:
    """Context manager recording elapsed wall time into a histogram.

    Each ``registry.timer(name)`` call returns a fresh instance, so
    timers nest freely (an outer timer keeps running while an inner
    one, on the same or another histogram, starts and stops).
    """

    __slots__ = ("histogram", "_start", "elapsed")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        self.histogram.observe(self.elapsed)


class MetricsRegistry:
    """Named metrics, created on first touch."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- access (get-or-create) ---------------------------------------
    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            metric = self.counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            metric = self.gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            metric = self.histograms[name] = Histogram(name)
            return metric

    def timer(self, name: str) -> _Timer:
        """A fresh (nestable) timing context over ``histogram(name)``."""
        return _Timer(self.histogram(name))

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "counters": {n: c.to_dict() for n, c in self.counters.items()},
            "gauges": {n: g.to_dict() for n, g in self.gauges.items()},
            "histograms": {n: h.to_dict() for n, h in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        try:
            registry = cls()
            for name, dump in data.get("counters", {}).items():
                registry.counter(name).value = float(dump["value"])
            for name, dump in data.get("gauges", {}).items():
                registry.gauge(name).set(dump["value"])
            for name, dump in data.get("histograms", {}).items():
                hist = registry.histogram(name)
                hist.count = int(dump["count"])
                hist.total = float(dump["total"])
                hist.min = float("inf") if dump["min"] is None else float(dump["min"])
                hist.max = float("-inf") if dump["max"] is None else float(dump["max"])
                hist.sample = [float(v) for v in dump.get("sample", [])]
                hist.sample_limit = int(dump.get("sample_limit", 4096))
            return registry
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed metrics dump: {exc}") from exc
