"""Counters, gauges, and histogram timers.

The registry is dependency-free and deliberately small: metrics are
plain Python objects keyed by name, created on first touch, with a
JSON-serializable dump/restore so a run's measurements can be written
to disk and re-rendered later (``python -m repro stats``).

Histograms keep exact ``count``/``total``/``min``/``max`` plus a
bounded reservoir of observations for percentile estimates.  Beyond
the limit the reservoir is maintained with Algorithm R (Vitter 1985):
every observation — not just the first ``sample_limit`` — has equal
probability of being retained, so p50/p95 of a long run reflect the
whole run rather than its warm-up.  The replacement draws come from a
private generator seeded deterministically from the histogram name, so
two identical runs produce identical dumps.

Timers read an injectable clock (default ``time.perf_counter``) so
tests can assert exact durations instead of sleeping.
"""

from __future__ import annotations

import math
import random
import time
import zlib
from typing import Callable

from repro.errors import ObservabilityError

# -- log-linear bucket grid ---------------------------------------------------
# Histograms additionally count observations into a fixed log-linear
# grid: 9 linear steps per decade across decades 1e-9 .. 1e9, plus an
# underflow bucket (values <= 0) and an overflow bucket.  The grid is
# identical for every histogram, so histograms from different processes
# merge by elementwise addition and quantiles of the merged distribution
# come from the bucket counts rather than any one process's reservoir.
_MIN_DECADE = -9
_MAX_DECADE = 8
_STEPS_PER_DECADE = 9
_UNDERFLOW = 0
_OVERFLOW = 1 + (_MAX_DECADE - _MIN_DECADE + 1) * _STEPS_PER_DECADE
BUCKET_COUNT = _OVERFLOW + 1


def bucket_index(value: float) -> int:
    """Index of ``value`` in the shared log-linear grid."""
    if value <= 0.0 or value != value:  # non-positive or NaN
        return _UNDERFLOW
    if math.isinf(value):
        return _OVERFLOW
    decade = math.floor(math.log10(value))
    scaled = value / 10.0 ** decade
    # guard float drift at decade boundaries (log10(1000) == 2.9999..)
    if scaled >= 10.0:
        decade += 1
        scaled /= 10.0
    elif scaled < 1.0:
        decade -= 1
        scaled *= 10.0
    if decade < _MIN_DECADE:
        return _UNDERFLOW + 1  # smallest finite bucket
    step = max(1, math.ceil(scaled - 1e-12))
    if step > _STEPS_PER_DECADE:  # (9, 10] rolls into the next decade
        decade += 1
        step = 1
    if decade > _MAX_DECADE:
        return _OVERFLOW
    return 1 + (decade - _MIN_DECADE) * _STEPS_PER_DECADE + (step - 1)


def bucket_upper_bound(index: int) -> float:
    """Inclusive upper bound of bucket ``index`` (inf for overflow)."""
    if index <= _UNDERFLOW:
        return 0.0
    if index >= _OVERFLOW:
        return float("inf")
    decade, step = divmod(index - 1, _STEPS_PER_DECADE)
    return (step + 1) * 10.0 ** (decade + _MIN_DECADE)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount

    def to_dict(self) -> dict:
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value:g})"


class Gauge:
    """A last-write-wins level (e.g. installed plan cost)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict:
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value:g})"


class Histogram:
    """A distribution summary with a bounded uniform sample reservoir.

    The reservoir is filled with Algorithm R: the first ``sample_limit``
    observations are kept verbatim; afterwards observation ``i`` (from
    1) replaces a uniformly chosen slot with probability
    ``sample_limit / i``, leaving every observation equally likely to
    be in the reservoir.  ``seed`` defaults to a CRC of the name, so
    reservoirs — and therefore dumps — are reproducible run to run.
    """

    __slots__ = ("name", "count", "total", "min", "max", "sample",
                 "sample_limit", "seed", "buckets", "_rng")

    def __init__(
        self, name: str, sample_limit: int = 4096, seed: int | None = None
    ) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.sample: list[float] = []
        self.sample_limit = sample_limit
        self.seed = zlib.crc32(name.encode()) if seed is None else seed
        self.buckets: dict[int, int] = {}
        self._rng = random.Random(self.seed)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        if len(self.sample) < self.sample_limit:
            self.sample.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.sample_limit:
                self.sample[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (0..100) from the reservoir."""
        if not self.sample:
            return 0.0
        ordered = sorted(self.sample)
        index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    def quantile(self, q: float) -> float:
        """Estimate the q-th percentile (0..100) from the bucket counts.

        Unlike :meth:`percentile` this works on the shared log-linear
        grid, so it stays meaningful after :meth:`merge` combines
        histograms from several processes.  The answer is the upper
        bound of the bucket holding the target rank, clamped to the
        exact observed ``[min, max]`` range.  Falls back to the
        reservoir when no bucket counts exist (legacy dumps).
        """
        if not self.count:
            return 0.0
        if not self.buckets:
            return self.percentile(q)
        rank = q / 100.0 * (self.count - 1)
        cumulative = 0
        bound = 0.0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative > rank:
                bound = bucket_upper_bound(index)
                break
        return min(max(bound, self.min), self.max)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Counts, totals, extrema, and bucket grids combine exactly; the
        reservoirs concatenate and, past ``sample_limit``, are thinned
        by a deterministic draw so merged dumps are reproducible.
        """
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + int(n)
        combined = self.sample + list(other.sample)
        if len(combined) > self.sample_limit:
            rng = random.Random((self.seed * 1000003) ^ other.seed)
            combined = rng.sample(combined, self.sample_limit)
        self.sample = combined

    def summary(self) -> dict:
        """The row rendered by the ASCII reporter."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.max if self.count else 0.0,
            "total": self.total,
        }

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "sample": list(self.sample),
            "sample_limit": self.sample_limit,
            "seed": self.seed,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
        }

    def to_merge_dict(self) -> dict:
        """A compact wire form: exact stats + buckets, no reservoir.

        Small enough to ride a JSON stats reply per shard, yet enough
        to rebuild fleet-level p50/p95/p99 via :meth:`from_merge_dict`
        and :meth:`merge`.
        """
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_merge_dict(cls, name: str, dump: dict) -> "Histogram":
        """Rebuild a (reservoir-less) histogram from a merge dict."""
        try:
            hist = cls(name)
            hist.count = int(dump["count"])
            hist.total = float(dump["total"])
            hist.min = float("inf") if dump.get("min") is None else float(dump["min"])
            hist.max = float("-inf") if dump.get("max") is None else float(dump["max"])
            hist.buckets = {
                int(i): int(n) for i, n in (dump.get("buckets") or {}).items()
            }
            return hist
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(
                f"malformed histogram merge dump for {name!r}: {exc}"
            ) from exc

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:g})"


class _Timer:
    """Context manager recording elapsed wall time into a histogram.

    Each ``registry.timer(name)`` call returns a fresh instance, so
    timers nest freely (an outer timer keeps running while an inner
    one, on the same or another histogram, starts and stops).  The
    clock is injectable for deterministic tests.
    """

    __slots__ = ("histogram", "clock", "_start", "elapsed")

    def __init__(
        self,
        histogram: Histogram,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.histogram = histogram
        self.clock = clock or time.perf_counter
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self.clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = self.clock() - self._start
        self.histogram.observe(self.elapsed)


class MetricsRegistry:
    """Named metrics, created on first touch."""

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self.clock = clock or time.perf_counter
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- access (get-or-create) ---------------------------------------
    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            metric = self.counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            metric = self.gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            metric = self.histograms[name] = Histogram(name)
            return metric

    def timer(self, name: str) -> _Timer:
        """A fresh (nestable) timing context over ``histogram(name)``."""
        return _Timer(self.histogram(name), clock=self.clock)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "counters": {n: c.to_dict() for n, c in self.counters.items()},
            "gauges": {n: g.to_dict() for n, g in self.gauges.items()},
            "histograms": {n: h.to_dict() for n, h in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        try:
            registry = cls()
            for name, dump in data.get("counters", {}).items():
                registry.counter(name).value = float(dump["value"])
            for name, dump in data.get("gauges", {}).items():
                registry.gauge(name).set(dump["value"])
            for name, dump in data.get("histograms", {}).items():
                hist = registry.histogram(name)
                hist.count = int(dump["count"])
                hist.total = float(dump["total"])
                hist.min = float("inf") if dump["min"] is None else float(dump["min"])
                hist.max = float("-inf") if dump["max"] is None else float(dump["max"])
                hist.sample = [float(v) for v in dump.get("sample", [])]
                hist.sample_limit = int(dump.get("sample_limit", 4096))
                hist.buckets = {
                    int(i): int(n)
                    for i, n in (dump.get("buckets") or {}).items()
                }
                if dump.get("seed") is not None:
                    hist.seed = int(dump["seed"])
                # replay determinism: a restored histogram draws its
                # reservoir replacements from the same seeded stream a
                # fresh one would (dumps are for offline rendering, not
                # for resuming a half-finished stream)
                hist._rng = random.Random(hist.seed)
            return registry
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed metrics dump: {exc}") from exc
