"""Per-node energy telemetry: who is spending the battery, and when.

The :class:`~repro.network.energy.EnergyModel` prices messages; the
simulators sum those prices into per-collection totals.  What neither
answers is the paper's real deployment question (§4.4): *which node*
dies first, and after how many epochs.  :class:`EnergyLedger`
accumulates radio cost per sending node — energy, messages, bytes —
from both the scalar :class:`~repro.simulation.runtime.Simulator` and
the vectorized :class:`~repro.simulation.batch.BatchSimulator` (the
two charge paths agree to float round-off; the equivalence suite pins
1e-9 relative tolerance), and derives:

- budget burn-down curves (worst-node remaining fraction per epoch),
- projected network lifetime (the epoch the first node exhausts its
  capacity),
- the top-N hottest nodes.

Scope: the ledger attributes the *collection* radio costs (including
failure retries) to the sending node of each message.  Trigger
broadcasts and acquisition energy are whole-phase extras with no
single owner and stay in the report-level ``energy_mj`` totals only.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ObservabilityError

__all__ = ["EnergyLedger"]


class EnergyLedger:
    """Per-node accumulation of radio spend, with epoch snapshots.

    Parameters
    ----------
    num_nodes:
        Size of the network; node ids index the accumulation arrays.
    capacity_mj:
        Optional battery capacity per node (scalar, or an array of
        per-node capacities).  Required for burn-down curves and
        lifetime projection; without it the ledger only accumulates.
    """

    def __init__(
        self, num_nodes: int, capacity_mj: float | np.ndarray | None = None
    ) -> None:
        if num_nodes < 1:
            raise ObservabilityError("energy ledger needs >= 1 node")
        self.num_nodes = int(num_nodes)
        self.energy_mj = np.zeros(self.num_nodes, dtype=np.float64)
        self.messages = np.zeros(self.num_nodes, dtype=np.int64)
        self.bytes = np.zeros(self.num_nodes, dtype=np.int64)
        if capacity_mj is None:
            self.capacity_mj = None
        else:
            capacity = np.broadcast_to(
                np.asarray(capacity_mj, dtype=np.float64), (self.num_nodes,)
            ).copy()
            if (capacity <= 0).any():
                raise ObservabilityError("node capacity must be positive")
            self.capacity_mj = capacity
        self.epoch_energy: list[np.ndarray] = []
        self._epoch_start = np.zeros(self.num_nodes, dtype=np.float64)

    # -- charging (scalar path) -----------------------------------------
    def charge(
        self, node: int, energy_mj: float, messages: int = 0, nbytes: int = 0
    ) -> None:
        """Attribute one message's (or retry's) cost to ``node``."""
        self.energy_mj[node] += energy_mj
        self.messages[node] += messages
        self.bytes[node] += nbytes

    def end_epoch(self) -> int:
        """Close the current epoch; returns its index (0-based).

        The per-epoch delta since the previous boundary becomes one
        point of the burn-down curve.
        """
        delta = self.energy_mj - self._epoch_start
        self.epoch_energy.append(delta)
        self._epoch_start = self.energy_mj.copy()
        return len(self.epoch_energy) - 1

    # -- charging (batch path) ------------------------------------------
    def charge_epochs(
        self,
        energy_mj: np.ndarray,
        messages: np.ndarray | None = None,
        nbytes: np.ndarray | None = None,
    ) -> None:
        """Attribute a whole ``(E, n)`` block of per-epoch, per-node
        energies at once, recording each epoch boundary.

        ``messages``/``nbytes`` may be ``(E, n)`` or ``(n,)`` (the
        value-independent per-epoch counts, applied to every epoch).
        """
        energy_mj = np.asarray(energy_mj, dtype=np.float64)
        if energy_mj.ndim != 2 or energy_mj.shape[1] != self.num_nodes:
            raise ObservabilityError(
                f"charge_epochs wants (E, {self.num_nodes}) energies,"
                f" got {energy_mj.shape}"
            )
        num_epochs = energy_mj.shape[0]
        for name, counts, target in (
            ("messages", messages, self.messages),
            ("nbytes", nbytes, self.bytes),
        ):
            if counts is None:
                continue
            counts = np.asarray(counts)
            if counts.ndim == 1:
                target += counts.astype(np.int64) * num_epochs
            elif counts.shape == energy_mj.shape:
                target += counts.sum(axis=0).astype(np.int64)
            else:
                raise ObservabilityError(
                    f"charge_epochs {name} shape {counts.shape} matches"
                    f" neither ({self.num_nodes},) nor {energy_mj.shape}"
                )
        for epoch in range(num_epochs):
            self.energy_mj += energy_mj[epoch]
            self.end_epoch()

    # -- derived views ---------------------------------------------------
    @property
    def num_epochs(self) -> int:
        return len(self.epoch_energy)

    @property
    def total_mj(self) -> float:
        return float(self.energy_mj.sum())

    def cumulative_energy(self) -> np.ndarray:
        """``(E, n)`` cumulative per-node spend after each epoch."""
        if not self.epoch_energy:
            return np.zeros((0, self.num_nodes), dtype=np.float64)
        return np.cumsum(np.stack(self.epoch_energy), axis=0)

    def remaining_fraction(self) -> np.ndarray:
        """``(E, n)`` battery fraction left after each epoch."""
        if self.capacity_mj is None:
            raise ObservabilityError(
                "remaining_fraction needs a ledger capacity_mj"
            )
        fraction = 1.0 - self.cumulative_energy() / self.capacity_mj
        return np.clip(fraction, 0.0, 1.0)

    def burn_down(self) -> np.ndarray:
        """``(E,)`` worst-node remaining fraction after each epoch —
        the curve whose zero crossing is the network lifetime."""
        remaining = self.remaining_fraction()
        if remaining.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        return remaining.min(axis=1)

    def lifetime_epoch(self) -> int | None:
        """Index of the epoch during which the first node exhausted its
        capacity, or ``None`` if every node survived the run so far."""
        if self.capacity_mj is None:
            raise ObservabilityError(
                "lifetime_epoch needs a ledger capacity_mj"
            )
        dead = (self.cumulative_energy() >= self.capacity_mj).any(axis=1)
        indices = np.nonzero(dead)[0]
        return int(indices[0]) if indices.size else None

    def projected_lifetime(self) -> float | None:
        """Epochs until first node death at the observed average burn
        rate (``None`` without capacity data or recorded epochs)."""
        if self.capacity_mj is None or not self.epoch_energy:
            return None
        rate = self.energy_mj / self.num_epochs
        with np.errstate(divide="ignore"):
            horizon = np.where(rate > 0, self.capacity_mj / rate, np.inf)
        first = float(horizon.min())
        return None if first == float("inf") else first

    def hottest(self, n: int = 5) -> list[dict]:
        """The ``n`` highest-spend nodes, hottest first."""
        order = np.argsort(self.energy_mj)[::-1][: max(0, n)]
        return [
            {
                "node": int(node),
                "energy_mj": float(self.energy_mj[node]),
                "messages": int(self.messages[node]),
                "bytes": int(self.bytes[node]),
            }
            for node in order
        ]

    def publish(self, instrumentation) -> None:
        """Push the ledger's headline numbers into a metrics registry
        (so Prometheus scrapes see them without a custom collector)."""
        gauge = instrumentation.gauge
        gauge("energy.ledger.total_mj").set(self.total_mj)
        gauge("energy.ledger.epochs").set(self.num_epochs)
        hottest = self.hottest(1)
        if hottest:
            gauge("energy.ledger.hottest_node").set(hottest[0]["node"])
            gauge("energy.ledger.hottest_mj").set(hottest[0]["energy_mj"])
        if self.capacity_mj is not None and self.num_epochs:
            burn = self.burn_down()
            gauge("energy.ledger.min_remaining_fraction").set(
                float(burn[-1])
            )
            lifetime = self.projected_lifetime()
            if lifetime is not None:
                gauge("energy.ledger.projected_lifetime_epochs").set(lifetime)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "num_nodes": self.num_nodes,
            "capacity_mj": (
                None if self.capacity_mj is None else self.capacity_mj.tolist()
            ),
            "energy_mj": self.energy_mj.tolist(),
            "messages": self.messages.tolist(),
            "bytes": self.bytes.tolist(),
            "epoch_energy": [epoch.tolist() for epoch in self.epoch_energy],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyLedger":
        try:
            ledger = cls(
                int(data["num_nodes"]), capacity_mj=data.get("capacity_mj")
            )
            ledger.energy_mj = np.asarray(data["energy_mj"], dtype=np.float64)
            ledger.messages = np.asarray(data["messages"], dtype=np.int64)
            ledger.bytes = np.asarray(data["bytes"], dtype=np.int64)
            ledger.epoch_energy = [
                np.asarray(epoch, dtype=np.float64)
                for epoch in data.get("epoch_energy", [])
            ]
            ledger._epoch_start = ledger.energy_mj.copy()
            return ledger
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(
                f"malformed energy ledger dump: {exc}"
            ) from exc

    def __repr__(self) -> str:
        return (
            f"EnergyLedger(nodes={self.num_nodes}, epochs={self.num_epochs},"
            f" total_mj={self.total_mj:g})"
        )
