"""Observability: metrics, events, hierarchical spans, and exporters.

The library's cross-cutting layers (LP backends, planners, simulator,
query engine) all accept one optional :class:`Instrumentation` object.
When present, every LP solve records variables/constraints/iterations/
wall-time, every collection records messages/bytes/mJ per edge depth,
every engine epoch records its explore/exploit/replan decision path,
and the whole pipeline builds a hierarchical span tree (plan → compile
→ solve → round; epoch → collect → replan); when absent (the default),
the hot paths do no observability work at all.

Quick tour::

    from repro.obs import Instrumentation, render_report, render_flame

    obs = Instrumentation()
    engine = TopKEngine(..., instrumentation=obs)
    ...
    print(render_report(obs))          # ASCII tables
    print(render_flame(obs))           # span tree with wall times
    chrome_trace_json(obs)             # load in ui.perfetto.dev
    prometheus_text(obs)               # text exposition for scrapes
    obs.trace.events("lp_solve")       # structured event log

Per-node battery telemetry lives in :class:`EnergyLedger`; attach one
to a simulator (``Simulator(..., ledger=ledger)``) and read back
burn-down curves, projected lifetime, and the hottest nodes.
"""

from repro.obs.distributed import (
    LocalTelemetrySource,
    SlowRequestLog,
    TelemetryAggregator,
    TelemetryServer,
    TraceContext,
    adopt_trace,
    inherited_trace_id,
    new_trace_id,
    render_top,
)
from repro.obs.energy import EnergyLedger
from repro.obs.events import EVENT_KINDS, Event, EventTrace
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    prometheus_text,
    render_flame,
)
from repro.obs.instrument import (
    NULL_TIMER,
    Instrumentation,
    maybe_timer,
    record_event,
    timed,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    counter_rows,
    event_rows,
    from_json,
    gauge_rows,
    histogram_rows,
    render_report,
    span_rows,
    to_json,
)
from repro.obs.spans import NULL_SPAN, Span, SpanTracer, maybe_span

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "EnergyLedger",
    "Event",
    "EventTrace",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "LocalTelemetrySource",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TIMER",
    "SlowRequestLog",
    "Span",
    "SpanTracer",
    "TelemetryAggregator",
    "TelemetryServer",
    "TraceContext",
    "adopt_trace",
    "chrome_trace",
    "chrome_trace_json",
    "counter_rows",
    "event_rows",
    "from_json",
    "gauge_rows",
    "histogram_rows",
    "inherited_trace_id",
    "maybe_span",
    "maybe_timer",
    "new_trace_id",
    "prometheus_text",
    "record_event",
    "render_flame",
    "render_report",
    "render_top",
    "span_rows",
    "timed",
    "to_json",
]
