"""Observability: metrics, typed event traces, and reporters.

The library's cross-cutting layers (LP backends, planners, simulator,
query engine) all accept one optional :class:`Instrumentation` object.
When present, every LP solve records variables/constraints/iterations/
wall-time, every collection records messages/bytes/mJ per edge depth,
and every engine epoch records its explore/exploit/replan decision
path; when absent (the default), the hot paths do no observability
work at all.

Quick tour::

    from repro.obs import Instrumentation, render_report

    obs = Instrumentation()
    engine = TopKEngine(..., instrumentation=obs)
    ...
    print(render_report(obs))          # ASCII tables
    obs.trace.events("lp_solve")       # structured event log
    obs.metrics.histogram("lp.solve_seconds.prospector-lp-lf").summary()
"""

from repro.obs.events import EVENT_KINDS, Event, EventTrace
from repro.obs.instrument import (
    NULL_TIMER,
    Instrumentation,
    maybe_timer,
    record_event,
    timed,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    counter_rows,
    event_rows,
    from_json,
    gauge_rows,
    histogram_rows,
    render_report,
    to_json,
)

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "Event",
    "EventTrace",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NULL_TIMER",
    "counter_rows",
    "event_rows",
    "from_json",
    "gauge_rows",
    "histogram_rows",
    "maybe_timer",
    "record_event",
    "render_report",
    "timed",
    "to_json",
]
