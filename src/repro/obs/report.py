"""Reporters: render an :class:`~repro.obs.instrument.Instrumentation`.

Three output shapes:

- :func:`render_report` — the ASCII tables used by ``python -m repro
  stats`` (counters, gauges, histogram timers, event tallies), built
  on :func:`repro.experiments.reporting.format_table`;
- :func:`to_json` / :func:`from_json` — a lossless dump of metrics and
  trace for offline rendering;
- the row helpers (:func:`counter_rows` etc.) for callers that want to
  table the numbers themselves.
"""

from __future__ import annotations

import json

from repro.obs.instrument import Instrumentation


def counter_rows(obs: Instrumentation) -> list[dict]:
    return [
        {"counter": name, "value": metric.value}
        for name, metric in sorted(obs.metrics.counters.items())
    ]


def gauge_rows(obs: Instrumentation) -> list[dict]:
    return [
        {"gauge": name, "value": metric.value}
        for name, metric in sorted(obs.metrics.gauges.items())
    ]


def histogram_rows(obs: Instrumentation) -> list[dict]:
    rows = []
    for name, metric in sorted(obs.metrics.histograms.items()):
        row = {"histogram": name}
        row.update(metric.summary())
        rows.append(row)
    return rows


def event_rows(obs: Instrumentation) -> list[dict]:
    return [
        {"event": kind, "count": count}
        for kind, count in obs.trace.counts().items()
    ]


def span_rows(obs: Instrumentation) -> list[dict]:
    """Per-span-name aggregates over every retained tree."""
    totals: dict[str, dict] = {}
    for span, __ in obs.spans.walk():
        row = totals.setdefault(
            span.name, {"span": span.name, "count": 0, "total_s": 0.0,
                        "self_s": 0.0}
        )
        row["count"] += 1
        row["total_s"] += span.duration_s
        row["self_s"] += span.self_s()
    return sorted(totals.values(), key=lambda row: -row["total_s"])


def render_report(obs: Instrumentation, title: str = "observability report") -> str:
    """All four sections as one ASCII document."""
    # imported lazily: repro.experiments pulls in the figure modules,
    # which import the planners that themselves import repro.obs
    from repro.experiments.reporting import format_table

    sections = [title, "=" * len(title)]
    for heading, rows in (
        ("counters", counter_rows(obs)),
        ("gauges", gauge_rows(obs)),
        ("timers / histograms", histogram_rows(obs)),
        ("events", event_rows(obs)),
        ("spans", span_rows(obs)),
    ):
        if rows:
            sections.append(format_table(rows, title=heading))
    if obs.trace.dropped:
        sections.append(
            f"(event trace dropped {obs.trace.dropped} of"
            f" {obs.trace.total_recorded} events)"
        )
    if obs.spans.dropped:
        sections.append(
            f"(span tracer dropped {obs.spans.dropped} of"
            f" {obs.spans.total_recorded} spans)"
        )
    if len(sections) == 2:
        sections.append("(no metrics recorded)")
    return "\n\n".join(sections)


def to_json(obs: Instrumentation, indent: int | None = 2) -> str:
    """Lossless JSON dump of metrics and event trace."""
    return json.dumps(obs.to_dict(), indent=indent, sort_keys=True)


def from_json(text: str) -> Instrumentation:
    """Rebuild an instrumentation object from :func:`to_json` output."""
    return Instrumentation.from_dict(json.loads(text))
