"""Energy costs of the distribution phases (paper §2).

Initial distribution installs the plan: each node unicasts a subplan to
each child that participates (how many values the child owes, and the
child's own subtree's assignments travel onward).  Subsequent
executions are triggered by an empty "re-execute" broadcast that
recursively reaches only subtrees from which values are expected.
"""

from __future__ import annotations

from repro.network.energy import EnergyModel
from repro.plans.plan import QueryPlan

_BANDWIDTH_FIELD_BYTES = 2  # one bandwidth assignment entry in a subplan


def initial_distribution_cost(plan: QueryPlan, energy: EnergyModel) -> float:
    """Cost of installing ``plan`` into the network.

    Each participating node receives one unicast from its parent whose
    payload encodes the bandwidth assignments for its entire subtree
    (one small field per participating subtree edge).  The paper notes
    this is on the order of one collection phase; our
    ``bench_distribution_cost`` benchmark confirms the same ratio.
    """
    topology = plan.topology
    active = plan.visited_nodes
    total = 0.0
    for node in active:
        if node == topology.root:
            continue
        subtree_edges = sum(
            1 for d in topology.descendants(node) if d in active and d != topology.root
        )
        payload = subtree_edges * _BANDWIDTH_FIELD_BYTES
        total += energy.per_message_mj + energy.per_byte_mj * payload
    return total


def trigger_cost(plan: QueryPlan, energy: EnergyModel) -> float:
    """Cost of one re-execute trigger for an already-installed plan.

    An empty message is broadcast recursively into every subtree that
    owes values; each non-leaf participating node broadcasts once.
    """
    topology = plan.topology
    active = plan.visited_nodes
    total = 0.0
    for node in active:
        has_active_child = any(
            child in active for child in topology.children(node)
        )
        if has_active_child:
            total += energy.broadcast_cost()
    return total
