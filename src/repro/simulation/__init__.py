"""Message-level network simulator.

The paper evaluates on "our own simulator of a network of Crossbow
MICA2 motes ... We model only communication costs" (§5).  This
subpackage is that simulator: it executes plans produced elsewhere in
the library, charges the energy model for every message (including the
distribution phases and failure retries), and reports measured costs.
"""

from repro.simulation.distribution import (
    initial_distribution_cost,
    trigger_cost,
)
from repro.simulation.lossy import (
    LossyCollectionResult,
    execute_plan_lossy,
    redundancy_plan,
)
from repro.simulation.runtime import SimulationReport, Simulator

# imported after runtime on purpose: batch pulls in repro.query.accuracy,
# whose package init imports Simulator back from repro.simulation.runtime
from repro.simulation.batch import (  # noqa: E402  (see comment above)
    BatchSimulationReport,
    BatchSimulator,
)
from repro.simulation.fleet import (  # noqa: E402  (imports batch)
    FleetCell,
    FleetSimulator,
    TraceStore,
    load_traces,
    save_traces,
)

__all__ = [
    "BatchSimulationReport",
    "BatchSimulator",
    "FleetCell",
    "FleetSimulator",
    "LossyCollectionResult",
    "SimulationReport",
    "Simulator",
    "TraceStore",
    "execute_plan_lossy",
    "initial_distribution_cost",
    "load_traces",
    "redundancy_plan",
    "save_traces",
    "trigger_cost",
]
