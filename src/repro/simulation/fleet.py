"""Fleet-scale simulation: topology × plan × trace grids in one pass.

:class:`~repro.simulation.batch.BatchSimulator` vectorizes one plan
over one trace; Monte-Carlo-scale studies (PAC bound validation,
fig 3/8 replication across failure regimes, lifetime sweeps) want
**thousands** of (topology, plan, trace) cells.  This module evaluates
such a grid in blocked numpy passes:

- cells that share a topology structure and plan bandwidths are
  *grouped*, their traces concatenated, and the whole group executed
  through one :func:`~repro.plans.execution.execute_plan_batch` tree
  recursion per block — plan execution is row-independent, so the
  per-cell row slices are exactly what per-cell runs would produce;
- energy accounting stays **per cell** (each cell keeps its own
  failure model and rng), via
  :meth:`~repro.simulation.batch.BatchSimulator.account_collection`,
  so every report is element-wise identical to a per-cell
  ``BatchSimulator.run_collection`` with the same seed;
- cell seeds come from one ``SeedSequence.spawn`` per run — cell ``i``
  always sees the stream ``default_rng(SeedSequence(seed).spawn(B)[i])``
  regardless of grouping, blocking, or process count;
- large grids shard across a ``ProcessPoolExecutor``; traces live in a
  memory-mapped :class:`TraceStore` that pickles **by path**, so
  workers reopen the mmap instead of inheriting pickled arrays
  (fork-safe: no copied trace bytes cross the process boundary).

``save_traces``/``load_traces`` round-trip named traces through an
uncompressed ``.npz`` whose members are memory-mapped on load.
"""

from __future__ import annotations

import ast
import os
import time
import zipfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.network.topology import Topology
from repro.obs import Instrumentation
from repro.obs.spans import maybe_span
from repro.plans.execution import BatchCollectionResult, execute_plan_batch
from repro.plans.plan import QueryPlan
from repro.simulation.batch import BatchSimulationReport, BatchSimulator
from repro.simulation.distribution import trigger_cost

__all__ = [
    "FleetCell",
    "FleetSimulator",
    "TraceStore",
    "load_traces",
    "save_traces",
]


# -- memory-mapped trace storage --------------------------------------------


def save_traces(path, traces) -> str:
    """Write named traces to an uncompressed ``.npz`` for mmap loading.

    ``traces`` maps name → :class:`~repro.datagen.trace.Trace` or
    ``(E, n)`` array.  Uncompressed storage is what makes the members
    memory-mappable; returns the actual file path (numpy appends
    ``.npz`` when missing).
    """
    arrays = {}
    for name, trace in traces.items():
        arrays[name] = np.ascontiguousarray(
            getattr(trace, "values", trace), dtype=np.float64
        )
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    np.savez(path, **arrays)
    return path


def load_traces(path) -> "TraceStore":
    """Open a :func:`save_traces` archive as a read-only mmap store."""
    return TraceStore(path)


class TraceStore:
    """Read-only, memory-mapped view of a ``save_traces`` archive.

    Each uncompressed ``.npy`` member is exposed as an ``np.memmap``
    into the archive file — no trace bytes are read until touched, and
    many processes mapping the same store share one page cache.  The
    store pickles **by path** (see ``__reduce__``): a process-pool
    worker receiving one reopens the mmap locally instead of
    deserializing array data, which is what keeps
    :class:`FleetSimulator`'s pooled path fork-safe.
    """

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._arrays: dict[str, np.ndarray] = {}
        with zipfile.ZipFile(self.path) as archive:
            for info in archive.infolist():
                name = info.filename
                if name.endswith(".npy"):
                    name = name[: -len(".npy")]
                self._arrays[name] = self._open_member(archive, info)

    def _open_member(self, archive, info) -> np.ndarray:
        if info.compress_type != zipfile.ZIP_STORED:
            # compressed members cannot be mapped; read them eagerly
            with archive.open(info) as handle:
                return np.lib.format.read_array(handle)
        with open(self.path, "rb") as handle:
            # the zip local file header is 30 bytes plus the variable
            # name/extra fields; the npy payload starts right after
            handle.seek(info.header_offset)
            local = handle.read(30)
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            handle.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(handle)
            header_len_bytes = 2 if version[0] == 1 else 4
            header_len = int.from_bytes(
                handle.read(header_len_bytes), "little"
            )
            header = ast.literal_eval(
                handle.read(header_len).decode("latin1")
            )
            offset = handle.tell()
        if header.get("fortran_order"):
            with zipfile.ZipFile(self.path) as again, \
                    again.open(info) as handle:
                return np.lib.format.read_array(handle)
        return np.memmap(
            self.path,
            dtype=np.dtype(header["descr"]),
            mode="r",
            offset=offset,
            shape=tuple(header["shape"]),
        )

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise TraceError(
                f"trace {name!r} not in store {self.path!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __len__(self) -> int:
        return len(self._arrays)

    def keys(self):
        return self._arrays.keys()

    def __reduce__(self):
        return (TraceStore, (self.path,))


# -- the fleet grid ---------------------------------------------------------


@dataclass(frozen=True, eq=False)
class FleetCell:
    """One (topology, plan, trace) evaluation of a fleet grid.

    ``trace`` is a :class:`~repro.datagen.trace.Trace`, an ``(E, n)``
    array, or a string key into the simulator's :class:`TraceStore`
    (the form to use with the process pool — workers resolve the key
    against their own reopened mmap).  ``failures`` and the spawned
    per-cell rng govern only this cell's accounting, exactly as they
    would on a dedicated :class:`BatchSimulator`.
    """

    topology: Topology
    plan: QueryPlan
    trace: object
    failures: LinkFailureModel | None = None
    include_trigger: bool = True
    label: str = "collection"


def _cell_values(cell: FleetCell, trace_store) -> np.ndarray:
    trace = cell.trace
    if isinstance(trace, str):
        if trace_store is None:
            raise TraceError(
                f"cell references trace {trace!r} but the simulator has"
                " no trace store"
            )
        return trace_store[trace]
    return np.asarray(getattr(trace, "values", trace), dtype=np.float64)


def _group_key(cell: FleetCell) -> tuple:
    """Cells with equal keys produce identical per-row executions."""
    return (
        cell.topology.cache_token(),
        tuple(sorted(cell.plan.bandwidths.items())),
    )


def _execute_block(energy, cells, seeds, pending, reports) -> None:
    """Run one concatenated block and account each cell's row slice."""
    representative = cells[pending[0][0]].plan
    if len(pending) == 1:
        stacked = pending[0][1]
    else:
        stacked = np.concatenate([values for _, values in pending], axis=0)
    result = execute_plan_batch(representative, stacked)
    # trigger/acquisition overheads and summed message costs depend
    # only on the plan, which is shared by every cell in the block —
    # hoist them out of the per-cell accounting loop
    acquisition = energy.acquisition_mj * len(representative.visited_nodes)
    trigger = trigger_cost(representative, energy)
    totals = (
        sum(m.cost(energy) for m in result.messages),
        sum(m.num_values for m in result.messages),
    )
    offset = 0
    for index, values in pending:
        rows = int(values.shape[0])
        sliced = BatchCollectionResult(
            returned_values=result.returned_values[offset:offset + rows],
            returned_nodes=result.returned_nodes[offset:offset + rows],
            messages=result.messages,
            transmitted=result.transmitted,
        )
        offset += rows
        cell = cells[index]
        simulator = BatchSimulator(
            cell.topology,
            energy,
            failures=cell.failures,
            rng=np.random.default_rng(seeds[index]),
        )
        reports[index] = simulator.account_collection(
            cell.plan, sliced,
            include_trigger=cell.include_trigger, label=cell.label,
            extra_energy=(
                (trigger if cell.include_trigger else 0.0) + acquisition
            ),
            message_totals=totals,
        )


def _run_shard(
    energy, cells, seeds, block_epochs, trace_store
) -> tuple[list, int, int, int]:
    """Evaluate one shard of cells; the process-pool worker entry.

    Module-level (not a method) so the pool pickles only the arguments
    — and ``trace_store`` arrives as a path-reopened mmap, never as
    array bytes.
    """
    groups: dict[tuple, list[int]] = {}
    for index, cell in enumerate(cells):
        groups.setdefault(_group_key(cell), []).append(index)
    reports: list = [None] * len(cells)
    num_blocks = 0
    total_epochs = 0
    for indices in groups.values():
        pending: list[tuple[int, np.ndarray]] = []
        pending_rows = 0
        for index in indices:
            values = _cell_values(cells[index], trace_store)
            pending.append((index, values))
            pending_rows += int(values.shape[0])
            if pending_rows >= block_epochs:
                _execute_block(energy, cells, seeds, pending, reports)
                num_blocks += 1
                total_epochs += pending_rows
                pending, pending_rows = [], 0
        if pending:
            _execute_block(energy, cells, seeds, pending, reports)
            num_blocks += 1
            total_epochs += pending_rows
    return reports, len(groups), num_blocks, total_epochs


class FleetSimulator:
    """Evaluate a grid of :class:`FleetCell` in blocked numpy passes.

    Parameters
    ----------
    energy:
        The :class:`~repro.network.energy.EnergyModel` shared by every
        cell (per-cell failure models ride on the cells themselves).
    trace_store:
        Optional :class:`TraceStore` resolving string ``trace`` keys;
        required when any cell names its trace.
    processes:
        Process-pool width.  ``None`` or ``1`` runs in-process;
        ``N > 1`` shards the cell list contiguously across ``N``
        workers (each worker reopens the trace store's mmap).
    block_epochs:
        Target rows per concatenated ``execute_plan_batch`` call.
        Larger blocks amortize the tree recursion further at the price
        of peak memory; results are identical at any setting.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; each run records
        a ``fleet_run`` event and ``fleet.*`` counters.

    :meth:`run` returns one
    :class:`~repro.simulation.batch.BatchSimulationReport` per cell, in
    input order, element-wise identical to running each cell on its own
    ``BatchSimulator`` seeded with the matching ``SeedSequence`` child.
    """

    def __init__(
        self,
        energy: EnergyModel,
        *,
        trace_store: TraceStore | None = None,
        processes: int | None = None,
        block_epochs: int = 65536,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if block_epochs < 1:
            raise ValueError("block_epochs must be >= 1")
        self.energy = energy
        self.trace_store = trace_store
        self.processes = processes
        self.block_epochs = block_epochs
        self.instrumentation = instrumentation

    def run(self, cells, *, seed=None) -> list[BatchSimulationReport]:
        """Evaluate every cell; ``seed`` roots the per-cell spawns."""
        cells = list(cells)
        if not cells:
            return []
        seeds = np.random.SeedSequence(seed).spawn(len(cells))
        return self.run_cells_seeded(cells, seeds)

    def run_cells_seeded(
        self, cells, seeds
    ) -> list[BatchSimulationReport]:
        """Evaluate cells with explicit per-cell seed-sequence children.

        The entry point for callers that manage spawning themselves
        (:meth:`repro.experiments.runner.ExperimentRunner.run_fleet`
        re-runs only cache-missed cells with their *original* spawn
        children, so results never depend on the hit/miss split).
        """
        cells = list(cells)
        seeds = list(seeds)
        if len(cells) != len(seeds):
            raise ValueError("one seed child required per cell")
        if not cells:
            return []
        start = time.perf_counter()
        processes = self.processes or 1
        shards = min(processes, len(cells)) if processes > 1 else 1
        with maybe_span(
            self.instrumentation, "fleet.run",
            cells=len(cells), shards=shards,
        ) as span:
            if shards > 1:
                reports, groups, blocks, epochs = self._run_pooled(
                    cells, seeds, shards
                )
            else:
                reports, groups, blocks, epochs = _run_shard(
                    self.energy, cells, seeds,
                    self.block_epochs, self.trace_store,
                )
            span.annotate(groups=groups, blocks=blocks, epochs=epochs)
        if self.instrumentation is not None:
            self.instrumentation.record_fleet_run(
                cells=len(cells),
                groups=groups,
                blocks=blocks,
                epochs=epochs,
                shards=shards,
                seconds=time.perf_counter() - start,
            )
        return reports

    def _run_pooled(self, cells, seeds, shards):
        bounds = np.linspace(0, len(cells), shards + 1).astype(int)
        reports: list = [None] * len(cells)
        groups = blocks = epochs = 0
        with ProcessPoolExecutor(max_workers=shards) as pool:
            futures = [
                pool.submit(
                    _run_shard,
                    self.energy,
                    cells[lo:hi],
                    seeds[lo:hi],
                    self.block_epochs,
                    self.trace_store,
                )
                for lo, hi in zip(bounds[:-1], bounds[1:])
                if hi > lo
            ]
            cursor = 0
            for future in futures:
                shard_reports, g, b, e = future.result()
                reports[cursor:cursor + len(shard_reports)] = shard_reports
                cursor += len(shard_reports)
                groups += g
                blocks += b
                epochs += e
        return reports, groups, blocks, epochs
