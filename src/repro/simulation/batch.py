"""Batched trace-level simulation (the "install once, run many" path).

The paper's evaluation installs a plan once and replays it over every
epoch of a trace (§5).  :class:`~repro.simulation.runtime.Simulator`
does that epoch-by-epoch in pure Python and stays as the reference
oracle; :class:`BatchSimulator` evaluates the whole ``(E, n)`` readings
matrix in one vectorized pass:

- plan execution is one numpy tree recursion
  (:func:`~repro.plans.execution.execute_plan_batch`) instead of ``E``
  interpreted walks;
- energy accounting exploits that per-epoch message counts are
  value-independent: the base collection cost is a single scalar, and
  only failure retries vary per epoch;
- link-failure draws are one ``rng.random((E, edges))`` matrix whose
  row-major order consumes the generator stream exactly as the scalar
  loop's per-message ``sample_failure`` calls would, so a shared seed
  yields *identical* retry patterns (equivalence-tested).

Both engines agree exactly on returned node sets and retry counts, and
on energies to float round-off (the equivalence suite pins 1e-9
relative tolerance).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PlanError
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.network.topology import Topology
from repro.obs import EnergyLedger, Instrumentation
from repro.obs.spans import maybe_span
from repro.plans.execution import (
    BatchCollectionResult,
    batch_transmitted_counts,
    execute_plan_batch,
)
from repro.plans.plan import Message, QueryPlan
from repro.query.accuracy import batch_accuracy
from repro.simulation.distribution import trigger_cost
from repro.simulation.runtime import _positional_shim

_EMPTY_BOOL = np.zeros((0, 0), dtype=bool)


@dataclass
class BatchSimulationReport:
    """Measured outcome of one plan replayed over a whole trace.

    Per-epoch quantities are arrays of length ``E``; per-epoch message
    counts are value-independent and therefore plain ints.
    """

    returned_values: np.ndarray
    """``(E, R)`` returned values, each row sorted descending."""

    returned_nodes: np.ndarray
    """``(E, R)`` owning node ids, aligned with ``returned_values``."""

    energy_mj: np.ndarray
    """``(E,)`` measured energy per epoch (trigger + acquisition +
    collection + failure retries)."""

    num_messages: int
    """Messages per epoch (identical across epochs)."""

    num_values_sent: int
    """Values sent per epoch (identical across epochs)."""

    num_retries: np.ndarray
    """``(E,)`` failure retries per epoch."""

    failure_edges: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    """``(M,)`` edge ids of the per-epoch unicast messages, in message
    order (empty without a failure model)."""

    failure_matrix: np.ndarray = field(default_factory=lambda: _EMPTY_BOOL)
    """``(E, M)`` per-unicast failure outcomes, aligned with
    ``failure_edges`` — the batch analogue of the scalar report's
    ``edge_outcomes`` list."""

    detail: BatchCollectionResult | None = None
    """The underlying batch collection result, for inspection."""

    @property
    def num_epochs(self) -> int:
        return int(self.energy_mj.shape[0])

    def top_k_nodes(self, k: int) -> np.ndarray:
        """``(E, min(k, R))`` node ids of each epoch's answer."""
        return self.returned_nodes[:, :k]

    def top_k_node_sets(self, k: int) -> list[set[int]]:
        return [set(map(int, row)) for row in self.returned_nodes[:, :k]]

    def edge_outcomes(self, epoch: int) -> list[tuple[int, bool]]:
        """The scalar report's ``edge_outcomes`` list for one epoch."""
        if self.failure_matrix.size == 0 and self.failure_edges.size == 0:
            return []
        return [
            (int(edge), bool(failed))
            for edge, failed in zip(self.failure_edges, self.failure_matrix[epoch])
        ]

    def edge_outcome_counts(self) -> dict[int, tuple[int, int]]:
        """Aggregate ``{edge: (attempts, failures)}`` over the batch —
        the raw material for §4.4 failure statistics."""
        counts: dict[int, tuple[int, int]] = {}
        if self.failure_edges.size == 0:
            return counts
        epochs = self.failure_matrix.shape[0]
        per_edge_failures = self.failure_matrix.sum(axis=0)
        for column, edge in enumerate(self.failure_edges):
            attempts, failures = counts.get(int(edge), (0, 0))
            counts[int(edge)] = (
                attempts + epochs,
                failures + int(per_edge_failures[column]),
            )
        return counts


class BatchSimulator:
    """Vectorized counterpart of :class:`~repro.simulation.runtime.Simulator`.

    Same construction shape and semantics (everything after
    ``(topology, energy)`` keyword-only, positional tail deprecated);
    the entry points take an ``(E, n)`` readings matrix (or a
    :class:`~repro.datagen.trace.Trace`) instead of a single epoch's
    vector.  Under a shared seed the failure draws match the scalar
    simulator's exactly (see
    :meth:`~repro.network.failures.LinkFailureModel.sample_failure_matrix`).

    The optional ``ledger`` is charged with the same per-node radio
    costs as the scalar simulator's (vectorized over epochs;
    equivalence-tested to 1e-9 rtol).  Not supported by
    :meth:`run_plan_sweep`, which never builds a message log.
    """

    def __init__(
        self,
        topology: Topology,
        energy: EnergyModel,
        *args,
        failures: LinkFailureModel | None = None,
        rng: np.random.Generator | None = None,
        instrumentation: Instrumentation | None = None,
        ledger: EnergyLedger | None = None,
    ) -> None:
        failures, rng, instrumentation, ledger = _positional_shim(
            type(self).__name__, args, failures, rng, instrumentation, ledger
        )
        self.topology = topology
        self.energy = energy
        self.failures = failures
        self.rng = rng if rng is not None else np.random.default_rng()
        self.instrumentation = instrumentation
        self.ledger = ledger

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _as_matrix(readings_matrix) -> np.ndarray:
        values = getattr(readings_matrix, "values", readings_matrix)
        return np.asarray(values, dtype=np.float64)

    def _charge_batch(
        self,
        messages: list[Message],
        num_epochs: int,
        totals: tuple[float, int] | None = None,
    ) -> tuple[float, int, np.ndarray, np.ndarray, np.ndarray]:
        """Base per-epoch energy plus vectorized failure accounting.

        Returns ``(base_mj, values, retry_mj, edges, fail_matrix)``:
        the deterministic per-epoch collection cost, the per-epoch
        value count, the ``(E,)`` retry energies, and the unicast edge
        ids with their ``(E, M)`` failure outcomes.  ``totals``
        optionally supplies a precomputed ``(base_mj, values)`` pair —
        both depend only on the message list, so the fleet simulator
        sums them once per block; the per-node ledger breakdown still
        needs the full scan, so the shortcut only applies without one.
        """
        base = 0.0
        values = 0
        ledger = self.ledger
        if ledger is None and totals is not None:
            base, values = totals
        else:
            if ledger is not None:
                node_energy = np.zeros(self.topology.n, dtype=np.float64)
                node_msgs = np.zeros(self.topology.n, dtype=np.int64)
                node_bytes = np.zeros(self.topology.n, dtype=np.int64)
            for message in messages:
                cost = message.cost(self.energy)
                base += cost
                values += message.num_values
                if ledger is not None:
                    node_energy[message.edge] += cost
                    node_msgs[message.edge] += 1
                    node_bytes[message.edge] += (
                        message.num_values * self.energy.value_bytes
                        + message.extra_bytes
                    )
        if self.failures is None:
            if ledger is not None:
                ledger.charge_epochs(
                    np.tile(node_energy, (num_epochs, 1)),
                    messages=node_msgs,
                    nbytes=node_bytes,
                )
            return (
                base,
                values,
                np.zeros(num_epochs, dtype=np.float64),
                np.zeros(0, dtype=np.int64),
                np.zeros((num_epochs, 0), dtype=bool),
            )
        unicast = [m for m in messages if m.kind == "unicast"]
        edges = np.array([m.edge for m in unicast], dtype=np.int64)
        fails = self.failures.sample_failure_matrix(edges, self.rng, num_epochs)
        retry_cost = np.array(
            [
                m.cost(self.energy) + self.failures.reroute_cost(m.edge)
                for m in unicast
            ],
            dtype=np.float64,
        )
        if ledger is not None:
            # mirror the scalar path: each retry charges its sending
            # node the message cost plus re-route penalty, +1 message,
            # and no bytes
            epoch_energy = np.tile(node_energy, (num_epochs, 1))
            epoch_msgs = np.tile(node_msgs, (num_epochs, 1))
            if edges.size:
                np.add.at(
                    epoch_energy.T, edges, (fails * retry_cost).T
                )
                np.add.at(
                    epoch_msgs.T, edges, fails.T.astype(np.int64)
                )
            ledger.charge_epochs(
                epoch_energy,
                messages=epoch_msgs,
                nbytes=node_bytes,
            )
        return base, values, fails @ retry_cost, edges, fails

    def _report(
        self,
        result: BatchCollectionResult,
        extra_energy: float,
        label: str,
        started: float,
        totals: tuple[float, int] | None = None,
    ) -> BatchSimulationReport:
        num_epochs = result.num_epochs
        with maybe_span(
            self.instrumentation, "collect", label=label, epochs=num_epochs
        ) as span:
            base, values, retry_mj, edges, fails = self._charge_batch(
                result.messages, num_epochs, totals
            )
            span.annotate(messages=len(result.messages) * num_epochs)
        retries = (
            fails.sum(axis=1).astype(np.int64)
            if edges.size
            else np.zeros(num_epochs, dtype=np.int64)
        )
        energy = np.full(num_epochs, base + extra_energy, dtype=np.float64)
        energy += retry_mj
        report = BatchSimulationReport(
            returned_values=result.returned_values,
            returned_nodes=result.returned_nodes,
            energy_mj=energy,
            num_messages=len(result.messages),
            num_values_sent=values,
            num_retries=retries,
            failure_edges=edges,
            failure_matrix=fails,
            detail=result,
        )
        if self.instrumentation is not None:
            self.instrumentation.record_batch_collection(
                label,
                epochs=num_epochs,
                messages=len(result.messages) * num_epochs,
                values=values * num_epochs,
                retries=int(retries.sum()),
                energy_mj=float(energy.sum()),
                seconds=time.perf_counter() - started,
            )
        return report

    def _acquisition(self, num_nodes: int) -> float:
        return self.energy.acquisition_mj * num_nodes

    # -- entry points ---------------------------------------------------
    def run_collection(
        self,
        plan: QueryPlan,
        readings_matrix,
        include_trigger: bool = True,
        priority=None,
        label: str = "collection",
    ) -> BatchSimulationReport:
        """Replay an installed plan over every epoch of a trace."""
        started = time.perf_counter()
        values = self._as_matrix(readings_matrix)
        result = execute_plan_batch(plan, values, priority=priority)
        return self.account_collection(
            plan, result,
            include_trigger=include_trigger, label=label, started=started,
        )

    def account_collection(
        self,
        plan: QueryPlan,
        result: BatchCollectionResult,
        *,
        include_trigger: bool = True,
        label: str = "collection",
        started: float | None = None,
        extra_energy: float | None = None,
        message_totals: tuple[float, int] | None = None,
    ) -> BatchSimulationReport:
        """Energy-account an already-executed batch collection.

        The second half of :meth:`run_collection`, split out so callers
        that run :func:`~repro.plans.execution.execute_plan_batch` over
        a concatenation of several traces (the fleet simulator) can
        account each slice with its own failure model and rng while the
        tree recursion is shared.  ``result`` must come from this
        plan's execution; the report is identical to what
        :meth:`run_collection` would have produced on the same rows.

        ``extra_energy`` pre-empts the per-epoch trigger + acquisition
        overhead and ``message_totals`` the summed per-epoch message
        cost/value pair — both depend only on the plan, so the fleet
        simulator computes them once per group instead of once per
        cell; ``include_trigger`` is ignored when ``extra_energy`` is
        given.
        """
        if started is None:
            started = time.perf_counter()
        if extra_energy is None:
            extra_energy = (
                trigger_cost(plan, self.energy) if include_trigger else 0.0
            )
            extra_energy += self._acquisition(len(plan.visited_nodes))
        return self._report(
            result, extra_energy, label, started, message_totals
        )

    def run_naive_k(self, readings_matrix, k: int) -> BatchSimulationReport:
        """NAIVE-k over every epoch (exact top-k, full-tree trigger)."""
        started = time.perf_counter()
        values = self._as_matrix(readings_matrix)
        plan = QueryPlan.naive_k(self.topology, k)
        result = execute_plan_batch(plan, values)
        result.returned_values = result.returned_values[:, :k]
        result.returned_nodes = result.returned_nodes[:, :k]
        extra = trigger_cost(QueryPlan.full(self.topology), self.energy)
        extra += self._acquisition(self.topology.n)
        return self._report(result, extra, label="naive-k", started=started)

    def run_plan_sweep(
        self, plans: list[QueryPlan], include_trigger: bool = True
    ) -> np.ndarray:
        """Measured per-execution energies for ``C`` different plans.

        The sweep analogue of calling ``run_collection`` once per plan:
        because transmitted counts are value-independent, the measured
        collection energy of a plan needs no readings at all — one
        :func:`~repro.plans.execution.batch_transmitted_counts`
        recursion over all plans yields every message size, and trigger
        plus acquisition costs vectorize over the active-node masks.
        This is what makes per-epoch replanned baselines (ORACLE plans
        a fresh node set every epoch) cheap to evaluate.

        Failure injection is not supported here (each plan would need
        its own draw matrix, breaking the shared-draw discipline);
        attach the failure model to per-plan ``run_collection`` calls
        instead.
        """
        if self.failures is not None:
            raise PlanError(
                "run_plan_sweep does not support failure injection;"
                " use run_collection per plan instead"
            )
        if not plans:
            return np.zeros(0, dtype=np.float64)
        n = self.topology.n
        bandwidths = np.zeros((len(plans), n), dtype=np.int64)
        for row, plan in enumerate(plans):
            if plan.topology is not self.topology:
                raise PlanError("plan sweep requires plans on this topology")
            for edge, b in plan.bandwidths.items():
                bandwidths[row, edge] = b
        counts, active = batch_transmitted_counts(self.topology, bandwidths)
        per_message = self.energy.per_message_mj
        per_value = self.energy.per_value_mj
        sends = active.copy()
        sends[:, self.topology.root] = False
        energies = (
            sends.sum(axis=1) * per_message + counts.sum(axis=1) * per_value
        ).astype(np.float64)
        if include_trigger:
            parents = np.array(
                [self.topology.parent(e) for e in self.topology.edges],
                dtype=np.int64,
            )
            active_children = np.zeros((len(plans), n), dtype=np.int64)
            np.add.at(
                active_children,
                (np.arange(len(plans))[:, None], parents[None, :]),
                active[:, self.topology.edges].astype(np.int64),
            )
            broadcasters = ((active_children > 0) & active).sum(axis=1)
            energies += broadcasters * self.energy.broadcast_cost()
        energies += self._acquisition(1) * active.sum(axis=1)
        return energies

    def accuracies(
        self, report: BatchSimulationReport, readings_matrix, k: int
    ) -> np.ndarray:
        """Per-epoch paper accuracies of a batch report's answers."""
        values = self._as_matrix(readings_matrix)
        return batch_accuracy(report.top_k_nodes(k), values, k)
