"""Unreliable (lossy) plan execution — the alternative of paper §4.4.

"An alternative is to develop query plans that directly cope with
transient failures during execution without using a reliable
communication protocol.  This approach has the potential of delivering
better performance, and would be an interesting problem for future
research."

Here a failed unicast is simply *lost*: the sender still pays for the
transmission, the receiver gets nothing, and everything the lost
message carried vanishes from the collection.  Comparing this mode with
the reliable default quantifies the energy/accuracy trade the paper
gestures at (``bench_ablation_reliability``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.failures import LinkFailureModel
from repro.network.topology import validate_readings
from repro.plans.plan import Message, QueryPlan, Reading, tag_readings


@dataclass
class LossyCollectionResult:
    """Outcome of one unreliable collection phase."""

    returned: list[Reading]
    messages: list[Message] = field(default_factory=list)
    lost_messages: int = 0
    lost_values: int = 0

    @property
    def returned_nodes(self) -> set[int]:
        return {node for __, node in self.returned}

    def top_k_nodes(self, k: int) -> set[int]:
        return {node for __, node in self.returned[:k]}


def execute_plan_lossy(
    plan: QueryPlan,
    readings,
    failures: LinkFailureModel,
    rng: np.random.Generator,
) -> LossyCollectionResult:
    """Sort-and-forward where each transmission may silently fail.

    Identical to :func:`repro.plans.execution.execute_plan` except that
    a message on edge ``e`` is dropped with the failure model's
    probability; the message log still records it (the sender spent the
    energy) but its values never reach the parent.
    """
    topology = plan.topology
    values = validate_readings(topology, readings)
    tagged = tag_readings(values)
    active = plan.visited_nodes

    buffers: dict[int, list[Reading]] = {}
    messages: list[Message] = []
    lost_messages = 0
    lost_values = 0

    for node in topology.post_order():
        if node not in active:
            continue
        local: list[Reading] = [tagged[node]]
        for child in topology.children(node):
            local.extend(buffers.pop(child, []))
        local.sort(reverse=True)
        if node == topology.root:
            return LossyCollectionResult(
                returned=local,
                messages=messages,
                lost_messages=lost_messages,
                lost_values=lost_values,
            )
        outgoing = local[: plan.bandwidths[node]]
        messages.append(Message(node, len(outgoing)))
        if failures.sample_failure(node, rng):
            lost_messages += 1
            lost_values += len(outgoing)
            # the subtree's entire contribution evaporates here
        else:
            buffers[node] = outgoing
    raise AssertionError("post-order walk did not end at the root")


def redundancy_plan(plan: QueryPlan, extra: int = 1) -> QueryPlan:
    """A simple loss-coping plan transform: widen every used edge by
    ``extra`` slots so surviving messages carry spare candidates.

    This is the obvious first answer to the paper's open question —
    redundancy instead of retries — and the reliability ablation
    measures what it buys.
    """
    bandwidths = {
        edge: (b + extra if b > 0 else 0)
        for edge, b in plan.bandwidths.items()
    }
    return QueryPlan(
        plan.topology, bandwidths, requires_all_edges=plan.requires_all_edges
    )
