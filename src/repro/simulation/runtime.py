"""The simulator: execute plans, charge energy, inject failures.

:class:`Simulator` wraps the pure execution functions from
:mod:`repro.plans` with energy accounting.  When a
:class:`~repro.network.failures.LinkFailureModel` is attached, each
unicast may transiently fail; the reliable protocol then routes around
the edge, costing the message again plus the model's re-route penalty
(paper §4.4).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.network.topology import Topology
from repro.obs import EnergyLedger, Instrumentation
from repro.obs.spans import maybe_span
from repro.plans.execution import CollectionResult, execute_plan
from repro.plans.naive import naive_k_collect, naive_one_collect
from repro.plans.plan import Message, QueryPlan, Reading
from repro.plans.proof_execution import ProofResult, execute_proof_plan
from repro.simulation.distribution import initial_distribution_cost, trigger_cost


@dataclass
class SimulationReport:
    """Measured outcome of one simulated collection phase."""

    returned: list[Reading]
    energy_mj: float
    num_messages: int
    num_values_sent: int
    num_retries: int = 0
    proven_count: int = 0
    detail: object = None
    """The underlying CollectionResult / ProofResult, for inspection."""

    edge_outcomes: list[tuple[int, bool]] = field(default_factory=list)
    """Per unicast: (edge, failed) — the raw material for the §4.4
    failure statistics (see LinkFailureModel.record_failure)."""

    def top_k_nodes(self, k: int) -> set[int]:
        return {node for __, node in self.returned[:k]}


def _positional_shim(cls_name, args, failures, rng, instrumentation, ledger):
    """Map a deprecated positional tail ``(failures, rng,
    instrumentation, ledger)`` onto the keyword-only parameters,
    warning exactly once per construction."""
    if not args:
        return failures, rng, instrumentation, ledger
    names = ("failures", "rng", "instrumentation", "ledger")
    if len(args) > len(names):
        raise TypeError(
            f"{cls_name}() takes at most {2 + len(names)} positional"
            f" arguments ({2 + len(args)} given)"
        )
    warnings.warn(
        f"positional arguments to {cls_name} after (topology, energy)"
        " are deprecated; pass failures/rng/instrumentation/ledger as"
        " keywords",
        DeprecationWarning,
        stacklevel=3,
    )
    current = [failures, rng, instrumentation, ledger]
    for slot, value in enumerate(args):
        current[slot] = value
    return tuple(current)


class Simulator:
    """Charges an :class:`~repro.network.energy.EnergyModel` for the
    messages produced by plan executions over a topology.

    Everything after ``(topology, energy)`` is keyword-only (the old
    positional tail still works behind a :class:`DeprecationWarning`
    shim for one release).

    Parameters
    ----------
    failures:
        Optional transient-failure model; when present each unicast is
        retried on failure, costing the message again plus the re-route
        penalty.
    rng:
        Randomness source for failure draws (ignored without failures).
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; when set, every
        collection phase records a ``collection_run`` event plus
        messages/bytes/mJ counters broken down by edge depth.
    ledger:
        Optional :class:`~repro.obs.EnergyLedger`; when set, every
        message's radio cost (including failure retries) is attributed
        to its sending node, and each collection phase closes one
        ledger epoch.  Trigger/acquisition extras are phase-level and
        stay out of the ledger (see the ledger's module docstring).
    """

    def __init__(
        self,
        topology: Topology,
        energy: EnergyModel,
        *args,
        failures: LinkFailureModel | None = None,
        rng: np.random.Generator | None = None,
        instrumentation: Instrumentation | None = None,
        ledger: EnergyLedger | None = None,
    ) -> None:
        failures, rng, instrumentation, ledger = _positional_shim(
            type(self).__name__, args, failures, rng, instrumentation, ledger
        )
        self.topology = topology
        self.energy = energy
        self.failures = failures
        self.rng = rng if rng is not None else np.random.default_rng()
        self.instrumentation = instrumentation
        self.ledger = ledger

    # -- message accounting ---------------------------------------------------
    def _charge(
        self, messages: list[Message]
    ) -> tuple[float, int, int, list[tuple[int, bool]], dict | None]:
        """Energy, value count, retries, per-edge outcomes, and (when
        instrumented) the per-edge-depth breakdown of a message log."""
        total = 0.0
        values = 0
        retries = 0
        outcomes: list[tuple[int, bool]] = []
        by_depth: dict[int, dict] | None = (
            {} if self.instrumentation is not None else None
        )
        ledger = self.ledger
        for message in messages:
            cost = message.cost(self.energy)
            total += cost
            values += message.num_values
            if by_depth is not None or ledger is not None:
                nbytes = (
                    message.num_values * self.energy.value_bytes
                    + message.extra_bytes
                )
                if ledger is not None:
                    ledger.charge(
                        message.edge, cost, messages=1, nbytes=nbytes
                    )
                if by_depth is not None:
                    depth = self.topology.depth(message.edge)
                    bucket = by_depth.setdefault(
                        depth, {"messages": 0, "bytes": 0, "energy_mj": 0.0}
                    )
                    bucket["messages"] += 1
                    bucket["bytes"] += nbytes
                    bucket["energy_mj"] += cost
            if self.failures is None or message.kind != "unicast":
                continue
            failed = self.failures.sample_failure(message.edge, self.rng)
            outcomes.append((message.edge, failed))
            if failed:
                retries += 1
                retry_cost = (
                    message.cost(self.energy)
                    + self.failures.reroute_cost(message.edge)
                )
                total += retry_cost
                if ledger is not None:
                    ledger.charge(message.edge, retry_cost, messages=1)
                if by_depth is not None:
                    bucket = by_depth[self.topology.depth(message.edge)]
                    bucket["messages"] += 1
                    bucket["energy_mj"] += retry_cost
        return total, values, retries, outcomes, by_depth

    def _report(
        self,
        result: CollectionResult | ProofResult,
        extra_energy: float = 0.0,
        label: str = "collection",
    ) -> SimulationReport:
        with maybe_span(
            self.instrumentation, "collect", label=label
        ) as span:
            energy, values, retries, outcomes, by_depth = self._charge(
                result.messages
            )
            span.annotate(
                messages=len(result.messages),
                retries=retries,
                energy_mj=energy + extra_energy,
            )
        if self.ledger is not None:
            self.ledger.end_epoch()
        if self.instrumentation is not None:
            self.instrumentation.record_collection(
                label,
                messages=len(result.messages),
                values=values,
                retries=retries,
                energy_mj=energy + extra_energy,
                by_depth=by_depth,
            )
        return SimulationReport(
            returned=result.returned,
            energy_mj=energy + extra_energy,
            num_messages=len(result.messages),
            num_values_sent=values,
            num_retries=retries,
            proven_count=getattr(result, "proven_count", 0),
            detail=result,
            edge_outcomes=outcomes,
        )

    # -- phases ---------------------------------------------------------------
    def _acquisition(self, num_nodes: int) -> float:
        """Measurement energy for the nodes that sampled (§4.4)."""
        return self.energy.acquisition_mj * num_nodes

    def run_collection(
        self,
        plan: QueryPlan,
        readings,
        include_trigger: bool = True,
        priority=None,
        label: str = "collection",
    ) -> SimulationReport:
        """One triggered execution of an installed approximate plan.

        ``priority`` overrides the forwarding order (used by subset
        queries that are not up-closed, see :mod:`repro.queries`);
        ``label`` tags the phase in the observability event stream.
        """
        result = execute_plan(plan, readings, priority=priority)
        extra = trigger_cost(plan, self.energy) if include_trigger else 0.0
        extra += self._acquisition(len(plan.visited_nodes))
        return self._report(result, extra_energy=extra, label=label)

    def run_proof_collection(
        self, plan: QueryPlan, readings, include_trigger: bool = True
    ) -> SimulationReport:
        """One triggered execution of a proof-carrying plan."""
        result = execute_proof_plan(plan, readings)
        extra = trigger_cost(plan, self.energy) if include_trigger else 0.0
        extra += self._acquisition(self.topology.n)  # every node measures
        return self._report(result, extra_energy=extra, label="proof")

    def run_naive_k(self, readings, k: int) -> SimulationReport:
        """The NAIVE-k exact algorithm (needs no installed plan; the
        query is pushed down, charged as a trigger of the full tree)."""
        result = naive_k_collect(self.topology, readings, k)
        extra = trigger_cost(QueryPlan.full(self.topology), self.energy)
        extra += self._acquisition(self.topology.n)
        return self._report(result, extra_energy=extra, label="naive-k")

    def run_naive_one(self, readings, k: int) -> SimulationReport:
        """The NAIVE-1 pipelined exact algorithm."""
        result = naive_one_collect(self.topology, readings, k)
        # only nodes that were actually asked take a measurement
        asked = {m.edge for m in result.messages} | {self.topology.root}
        return self._report(
            result,
            extra_energy=self._acquisition(len(asked)),
            label="naive-1",
        )

    def install_cost(self, plan: QueryPlan) -> float:
        """Energy of the initial distribution phase for ``plan``."""
        return initial_distribution_cost(plan, self.energy)

    def collect_full_sample(self, readings) -> SimulationReport:
        """Gather every node's value (the exploration step of §3),
        executed as a full-bandwidth collection."""
        return self.run_collection(
            QueryPlan.full(self.topology), readings, label="full-sample"
        )
