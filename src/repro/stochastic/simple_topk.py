"""SIMPLE-TOP-K and its reduction to STOCHASTIC-STEINER-TREE.

SIMPLE-TOP-K (paper §3.1): the root can query any node at unit cost,
may query at most ``C`` nodes, and wants to minimize the expected
number of top-k values it fails to query — expectation over sampled
scenarios.

Theorem 1 reduces it to the two-stage Steiner problem on a star: every
node hangs off the root by a unit-cost edge, scenarios are the sampled
top-k sets, day-1 purchases are the queried nodes (budget ``C``), and
the day-2 cost of an un-bought demanded edge is exactly one missed
top-k value (``sigma = 1``; day 2 is the paper's "thought experiment").

Both solution paths are provided; their agreement is a tested property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BudgetError
from repro.network.builder import star_topology
from repro.stochastic.scenarios import ScenarioSet
from repro.stochastic.steiner import TwoStageSteinerTree


@dataclass(frozen=True)
class SimpleTopKInstance:
    """An instance: ``num_nodes`` queryable nodes, sampled scenarios,
    and a budget of ``C`` unit-cost queries."""

    num_nodes: int
    scenarios: ScenarioSet
    budget: int

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise BudgetError("need at least one node")
        if not 0 <= self.budget <= self.num_nodes:
            raise BudgetError(
                f"budget must be within [0, {self.num_nodes}]"
            )
        out_of_range = {
            node
            for scenario in self.scenarios
            for node in scenario
            if not 0 <= node < self.num_nodes
        }
        if out_of_range:
            raise BudgetError(f"scenario nodes out of range: {out_of_range}")


@dataclass(frozen=True)
class SimpleTopKSolution:
    chosen: frozenset[int]
    expected_misses: float
    method: str


def expected_misses(instance: SimpleTopKInstance, chosen) -> float:
    """Expected top-k values not covered by the queried set."""
    chosen = set(chosen)
    total = sum(
        len(scenario - chosen) for scenario in instance.scenarios
    )
    return total * instance.scenarios.probability


def solve_direct(instance: SimpleTopKInstance) -> SimpleTopKSolution:
    """The separable optimum: query the most frequently demanded nodes.

    With unit costs the objective decomposes per node, so taking the
    ``C`` highest demand counts is exactly optimal.
    """
    counts = instance.scenarios.demand_counts(instance.num_nodes)
    order = sorted(
        range(instance.num_nodes), key=lambda node: (-counts[node], node)
    )
    chosen = frozenset(
        node for node in order[: instance.budget] if counts[node] > 0
    )
    return SimpleTopKSolution(
        chosen=chosen,
        expected_misses=expected_misses(instance, chosen),
        method="direct",
    )


def solve_via_steiner(
    instance: SimpleTopKInstance, backend=None
) -> SimpleTopKSolution:
    """Theorem 1's route: budgeted two-stage Steiner on a star.

    Star node ``i + 1`` represents instance node ``i`` (0 is the star's
    root).  Day-2 purchases are the thought-experiment misses, so the
    expected second-stage cost *is* the expected miss count.
    """
    star = star_topology(instance.num_nodes + 1)
    scenarios = ScenarioSet(
        [{node + 1 for node in scenario} for scenario in instance.scenarios]
    )
    problem = TwoStageSteinerTree(star, inflation=1.0)
    solution = problem.solve_budgeted(
        scenarios, first_stage_budget=float(instance.budget), backend=backend
    )
    chosen = frozenset(edge - 1 for edge in solution.first_stage_edges)
    return SimpleTopKSolution(
        chosen=chosen,
        expected_misses=expected_misses(instance, chosen),
        method="steiner-reduction",
    )


def sample_complexity_curve(
    num_nodes: int,
    k: int,
    budget: int,
    draw_scenario,
    scenario_counts,
    evaluation_scenarios: int = 400,
    rng: np.random.Generator | None = None,
) -> list[dict]:
    """How solution quality converges with the number of sampled
    scenarios — the empirical face of §3.1's polynomial-sample bound.

    ``draw_scenario()`` must return one top-k node set drawn from the
    true distribution.  For each training size the instance is solved
    directly and scored on a large held-out scenario set.
    """
    held_out = ScenarioSet.from_distribution(
        evaluation_scenarios, draw_scenario
    )
    rows = []
    for m in scenario_counts:
        training = ScenarioSet.from_distribution(m, draw_scenario)
        instance = SimpleTopKInstance(num_nodes, training, budget)
        solution = solve_direct(instance)
        eval_instance = SimpleTopKInstance(num_nodes, held_out, budget)
        rows.append(
            {
                "training_scenarios": m,
                "train_misses": solution.expected_misses,
                "heldout_misses": expected_misses(
                    eval_instance, solution.chosen
                ),
                "k": k,
            }
        )
    return rows
