"""The theoretical foundation of sampling-based planning (paper §3.1).

The paper grounds its sample-complexity claims in Shmoys & Swamy's
framework for two-stage stochastic optimization with recourse,
instantiated as STOCHASTIC-STEINER-TREE, and proves (Theorem 1) that
SIMPLE-TOP-K — "pick C nodes to query so as to minimize the expected
number of top-k values missed" — is a special case of it.

This subpackage makes that concrete and testable:

- :class:`~repro.stochastic.scenarios.ScenarioSet` — sampled demand
  scenarios (for top-k: the ``ones(j)`` sets);
- :class:`~repro.stochastic.steiner.TwoStageSteinerTree` — the
  two-stage LP on a tree network, in both total-cost and
  budgeted-first-stage forms;
- :mod:`~repro.stochastic.simple_topk` — SIMPLE-TOP-K solved directly
  *and* through the Theorem 1 reduction, with the equivalence asserted
  in tests, plus the sample-complexity sweep behind §3.1's "polynomial
  samples suffice" claim.
"""

from repro.stochastic.scenarios import ScenarioSet
from repro.stochastic.simple_topk import (
    SimpleTopKInstance,
    solve_direct,
    solve_via_steiner,
)
from repro.stochastic.steiner import SteinerSolution, TwoStageSteinerTree

__all__ = [
    "ScenarioSet",
    "SimpleTopKInstance",
    "SteinerSolution",
    "TwoStageSteinerTree",
    "solve_direct",
    "solve_via_steiner",
]
