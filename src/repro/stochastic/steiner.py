"""Two-stage stochastic Steiner tree on a tree network (paper §3.1).

Day 1: buy edges at cost ``c_e`` knowing only the scenario
distribution.  Day 2: a scenario (a set of nodes needing connectivity
to the root) is revealed; missing edges must be bought at inflated
cost ``sigma * c_e``.  On a *tree*, connecting a node means buying
every edge on its root path, so the LP is simply::

    minimize   sum c_e x_e  +  (1/m) sum_s sum_e sigma c_e y_{e,s}
    subject to x_e + y_{e,s} >= 1   for every edge e on the root path
                                    of any terminal of scenario s

The budgeted form bounds the first-stage spend instead and minimizes
the expected second stage — exactly the shape the paper bounds its
top-k planning with ("we bound the first stage cost and optimize the
second stage cost").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BudgetError, ModelError
from repro.lp import LinExpr, Model
from repro.network.topology import Topology
from repro.stochastic.scenarios import ScenarioSet


@dataclass
class SteinerSolution:
    """A solved two-stage instance."""

    first_stage_edges: frozenset[int]
    """Edges bought on day 1 (after ½-threshold rounding)."""

    first_stage_cost: float
    expected_second_stage_cost: float
    lp_objective: float
    fractional_first_stage: dict[int, float]

    @property
    def total_expected_cost(self) -> float:
        return self.first_stage_cost + self.expected_second_stage_cost


class TwoStageSteinerTree:
    """The two-stage stochastic Steiner LP over a tree.

    Parameters
    ----------
    topology:
        The tree; terminals connect to its root.
    edge_costs:
        Day-1 cost per edge (keyed by child endpoint); default 1.0.
    inflation:
        ``sigma``: how much more expensive edges are on day 2.
    """

    def __init__(
        self,
        topology: Topology,
        edge_costs: dict[int, float] | None = None,
        inflation: float = 2.0,
    ) -> None:
        if inflation <= 0:
            raise ModelError("inflation must be positive")
        self.topology = topology
        self.inflation = inflation
        self.edge_costs = {
            edge: (edge_costs or {}).get(edge, 1.0) for edge in topology.edges
        }
        for edge, cost in self.edge_costs.items():
            if cost < 0:
                raise ModelError(f"edge {edge} has negative cost {cost}")

    # -- shared LP skeleton ---------------------------------------------------
    def _scenario_edges(self, scenario: frozenset[int]) -> set[int]:
        needed: set[int] = set()
        for terminal in scenario:
            needed.update(self.topology.path_edges(terminal))
        return needed

    def _build(self, scenarios: ScenarioSet):
        model = Model("two-stage-steiner")
        x = {
            edge: model.add_variable(f"x_{edge}", lb=0.0, ub=1.0)
            for edge in self.topology.edges
        }
        y: dict[tuple[int, int], object] = {}
        for s, scenario in enumerate(scenarios):
            for edge in self._scenario_edges(scenario):
                y[edge, s] = model.add_variable(f"y_{edge}_{s}", lb=0.0, ub=1.0)
                model.add_constraint(
                    x[edge] + y[edge, s] >= 1.0, name=f"cover_{edge}_{s}"
                )
        return model, x, y

    def _stage_costs(self, scenarios: ScenarioSet, x, y):
        first = LinExpr.sum_of(
            self.edge_costs[edge] * var for edge, var in x.items()
        )
        second = LinExpr.sum_of(
            (scenarios.probability * self.inflation * self.edge_costs[edge])
            * var
            for (edge, __), var in y.items()
        )
        return first, second

    def _extract(
        self, scenarios: ScenarioSet, solution, x
    ) -> SteinerSolution:
        fractional = {
            edge: solution.value(var) for edge, var in x.items()
        }
        bought = frozenset(e for e, v in fractional.items() if v >= 0.5)
        first_cost = sum(self.edge_costs[e] for e in bought)
        # expected recourse of the *rounded* first stage
        second = 0.0
        for scenario in scenarios:
            missing = self._scenario_edges(scenario) - bought
            second += self.inflation * sum(
                self.edge_costs[e] for e in missing
            )
        second *= scenarios.probability
        return SteinerSolution(
            first_stage_edges=bought,
            first_stage_cost=first_cost,
            expected_second_stage_cost=second,
            lp_objective=solution.objective,
            fractional_first_stage=fractional,
        )

    # -- the two problem forms ---------------------------------------------
    def solve_total_cost(self, scenarios: ScenarioSet, backend=None) -> SteinerSolution:
        """Minimize day-1 cost plus expected day-2 recourse."""
        model, x, y = self._build(scenarios)
        first, second = self._stage_costs(scenarios, x, y)
        model.minimize(first + second)
        return self._extract(scenarios, model.solve(backend), x)

    def solve_budgeted(
        self,
        scenarios: ScenarioSet,
        first_stage_budget: float,
        backend=None,
    ) -> SteinerSolution:
        """Bound the day-1 spend; minimize the expected day-2 cost."""
        if first_stage_budget < 0:
            raise BudgetError("first-stage budget must be non-negative")
        model, x, y = self._build(scenarios)
        first, second = self._stage_costs(scenarios, x, y)
        model.add_constraint(first <= first_stage_budget, name="budget")
        model.minimize(second)
        return self._extract(scenarios, model.solve(backend), x)
