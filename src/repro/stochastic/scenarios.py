"""Demand scenarios for two-stage stochastic optimization.

A scenario is a set of nodes that will require connectivity to the
root "on day 2" (paper §3.1).  For the top-k instantiation, scenarios
are exactly the sampled ``ones(j)`` sets.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import SamplingError
from repro.sampling.matrix import SampleMatrix


class ScenarioSet:
    """A finite collection of equally likely demand scenarios."""

    def __init__(self, scenarios: Iterable[Iterable[int]]) -> None:
        self.scenarios: list[frozenset[int]] = [
            frozenset(s) for s in scenarios
        ]
        if not self.scenarios:
            raise SamplingError("at least one scenario is required")

    @classmethod
    def from_sample_matrix(cls, matrix: SampleMatrix) -> "ScenarioSet":
        """Top-k scenarios: one per sample, per Theorem 1."""
        return cls(matrix.ones_list())

    @classmethod
    def from_distribution(
        cls,
        num_scenarios: int,
        draw,
    ) -> "ScenarioSet":
        """Sample scenarios from a generator function ``draw() -> set``."""
        if num_scenarios < 1:
            raise SamplingError("num_scenarios must be >= 1")
        return cls(draw() for __ in range(num_scenarios))

    @property
    def num_scenarios(self) -> int:
        return len(self.scenarios)

    @property
    def probability(self) -> float:
        """Each sampled scenario's weight (uniform empirical measure)."""
        return 1.0 / self.num_scenarios

    def terminals(self) -> frozenset[int]:
        """Union of all scenario node sets."""
        union: set[int] = set()
        for scenario in self.scenarios:
            union |= scenario
        return frozenset(union)

    def demand_counts(self, num_nodes: int) -> np.ndarray:
        """How many scenarios demand each node (the column sums)."""
        counts = np.zeros(num_nodes, dtype=int)
        for scenario in self.scenarios:
            for node in scenario:
                counts[node] += 1
        return counts

    def subset(self, count: int) -> "ScenarioSet":
        """The first ``count`` scenarios (for sample-complexity sweeps)."""
        if not 1 <= count <= self.num_scenarios:
            raise SamplingError(
                f"count must be within [1, {self.num_scenarios}]"
            )
        return ScenarioSet(self.scenarios[:count])

    def __iter__(self):
        return iter(self.scenarios)

    def __len__(self) -> int:
        return self.num_scenarios
