"""Accuracy metrics.

The paper's headline metric: "Accuracy is measured as the percentage of
actual top-k values returned by the query."
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import PlanError
from repro.plans.plan import top_k_set


def recall_of_nodes(returned_nodes: Iterable[int], true_topk: set[int]) -> float:
    """Fraction of the true top-k node set present in the answer."""
    if not true_topk:
        raise PlanError("true top-k set is empty")
    hits = len(set(returned_nodes) & true_topk)
    return hits / len(true_topk)


def accuracy(returned_nodes: Iterable[int], readings, k: int) -> float:
    """Paper's accuracy: |answer ∩ true top-k| / k for a readings vector."""
    if k < 1:
        raise PlanError("k must be >= 1")
    return recall_of_nodes(returned_nodes, top_k_set(readings, k))
