"""Accuracy metrics.

The paper's headline metric: "Accuracy is measured as the percentage of
actual top-k values returned by the query."
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import PlanError
from repro.plans.plan import top_k_set


def recall_of_nodes(returned_nodes: Iterable[int], true_topk: set[int]) -> float:
    """Fraction of the true top-k node set present in the answer."""
    if not true_topk:
        raise PlanError("true top-k set is empty")
    hits = len(set(returned_nodes) & true_topk)
    return hits / len(true_topk)


def accuracy(returned_nodes: Iterable[int], readings, k: int) -> float:
    """Paper's accuracy: |answer ∩ true top-k| / k for a readings vector."""
    if k < 1:
        raise PlanError("k must be >= 1")
    return recall_of_nodes(returned_nodes, top_k_set(readings, k))


def batch_accuracy(answer_nodes: np.ndarray, readings_matrix, k: int) -> np.ndarray:
    """Vectorized :func:`accuracy` over a whole trace.

    Parameters
    ----------
    answer_nodes:
        ``(E, a)`` int array of answered node ids per epoch (``a <= k``;
        typically a batch report's ``top_k_nodes(k)``).
    readings_matrix:
        ``(E, n)`` ground-truth readings, one row per epoch.

    Returns the ``(E,)`` per-epoch accuracies.  The true top-k per
    epoch uses the same ``(value, node)`` total order as
    :func:`~repro.plans.plan.top_k_set` (ties broken by higher node
    id), computed with one row-wise lexsort instead of ``E`` Python
    sorts.
    """
    if k < 1:
        raise PlanError("k must be >= 1")
    values = np.asarray(readings_matrix, dtype=np.float64)
    if values.ndim != 2:
        raise PlanError(
            f"readings matrix must be 2-D (epochs, nodes), got {values.shape}"
        )
    num_epochs, n = values.shape
    answers = np.asarray(answer_nodes, dtype=np.int64)
    if answers.ndim != 2 or answers.shape[0] != num_epochs:
        raise PlanError(
            f"answer nodes must be (epochs, a) aligned with readings,"
            f" got {answers.shape}"
        )
    node_ids = np.broadcast_to(np.arange(n, dtype=np.int64), (num_epochs, n))
    # lexsort ascending by (value, node); column positions are node ids
    true_topk = np.lexsort((node_ids, values), axis=1)[:, ::-1][:, :k]
    truth = min(k, n)
    true_mask = np.zeros((num_epochs, n), dtype=bool)
    np.put_along_axis(true_mask, true_topk, True, axis=1)
    answer_mask = np.zeros((num_epochs, n), dtype=bool)
    if answers.shape[1]:
        np.put_along_axis(answer_mask, answers, True, axis=1)
    hits = (true_mask & answer_mask).sum(axis=1)
    return hits / truth
