"""The end-to-end top-k query engine.

Typical lifecycle::

    engine = TopKEngine(topology, EnergyModel.mica2(), k=10,
                        planner=LPLFPlanner(),
                        config=EngineConfig(budget_mj=500.0))
    for reading in warmup_trace:
        engine.feed_sample(reading)     # bootstrap the sample window
    for reading in live_trace:
        outcome = engine.step(reading)  # sample or query, per policy

``step`` applies the paper's operational policies: an adaptive
exploration rate decides when to pay for a full sample (§3, §4.4
"Re-sampling"), and re-optimized plans are only disseminated when they
beat the installed plan by a margin (§4.4 "Plan Re-calculation"),
since installation costs on the order of a collection phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SamplingError
from repro.network.energy import EnergyModel
from repro.network.failures import LinkFailureModel
from repro.network.topology import Topology
from repro.obs import EnergyLedger, Instrumentation, record_event
from repro.obs.spans import maybe_span
from repro.plans.execution import expected_hits
from repro.plans.plan import QueryPlan
from repro.planners.base import Planner, PlanningContext
from repro.query.accuracy import accuracy
from repro.query.result import (
    AuditResult,
    BatchQueryResult,
    EpochOutcome,
    QueryResult,
)
from repro.sampling.collector import AdaptiveSampler
from repro.sampling.window import SampleWindow
from repro.simulation.runtime import Simulator


@dataclass
class EngineConfig:
    """Operational knobs of the engine."""

    budget_mj: float = 500.0
    """Per-query energy budget handed to the planner."""

    window_capacity: int = 25
    """Sample window size (the paper finds 25-50 samples suffice)."""

    replan_every: int = 10
    """Re-optimize at the base station every this many queries."""

    replan_improvement: float = 0.10
    """Disseminate the new plan only if its expected hits beat the
    installed plan's by at least this fraction (§4.4)."""

    track_truth: bool = True
    """Compute accuracy against ground truth (simulation-only luxury)."""


class TopKEngine:
    """Plans, executes, and maintains approximate top-k queries."""

    def __init__(
        self,
        topology: Topology,
        energy: EnergyModel,
        k: int,
        planner: Planner,
        *,
        config: EngineConfig | None = None,
        failures: LinkFailureModel | None = None,
        sampler: AdaptiveSampler | None = None,
        rng: np.random.Generator | None = None,
        instrumentation: Instrumentation | None = None,
        ledger: EnergyLedger | None = None,
    ) -> None:
        self.topology = topology
        self.energy = energy
        self.k = k
        self.planner = planner
        self.config = config or EngineConfig()
        self.failures = failures
        self.instrumentation = instrumentation
        self.ledger = ledger
        rng = rng or np.random.default_rng()
        self.sampler = sampler or AdaptiveSampler(rng=rng)
        self.window = SampleWindow(self.config.window_capacity)
        self.simulator = Simulator(
            topology,
            energy,
            failures=failures,
            rng=rng,
            instrumentation=instrumentation,
            ledger=ledger,
        )
        self.plan: QueryPlan | None = None
        self.total_energy_mj = 0.0
        self.epoch = 0
        self._queries_since_replan = 0
        self._batch_simulator = None

    def _charge(self, category: str, energy_mj: float) -> None:
        """Accumulate energy and mirror it into the per-category counters."""
        self.total_energy_mj += energy_mj
        if self.instrumentation is not None:
            self.instrumentation.counter("engine.energy_mj").inc(energy_mj)
            self.instrumentation.counter(
                f"engine.energy_mj.{category}"
            ).inc(energy_mj)

    # -- topology maintenance (paper §4.4) -----------------------------
    def handle_permanent_failure(
        self, dead_node: int, radio_range: float | None = None
    ) -> dict[int, int]:
        """Exclude a permanently failed node and re-optimize.

        The spanning tree is adjusted (paper §4.4), the sample window's
        columns are migrated to the surviving node ids, and the
        installed plan is dropped so the next query re-plans on the new
        topology.  Returns the old→new node id mapping.
        """
        from repro.network.maintenance import remap_readings, remove_node

        new_topology, id_map = remove_node(
            self.topology, dead_node, radio_range=radio_range
        )
        old_rows = self.window.rows()  # migrate retained samples
        self.topology = new_topology
        self.window = SampleWindow(self.config.window_capacity)
        for row in old_rows:
            self.window.add(remap_readings(row, id_map, new_topology.n))
        self.simulator = Simulator(
            new_topology,
            self.energy,
            failures=self.failures,
            rng=self.simulator.rng,
            instrumentation=self.instrumentation,
            ledger=self.ledger,
        )
        self.plan = None
        return id_map

    # -- sample maintenance ----------------------------------------------
    def feed_sample(self, readings, charge_energy: bool = False) -> None:
        """Record one full-network sample (bootstrap or exploration)."""
        energy_mj = 0.0
        if charge_energy:
            report = self.simulator.collect_full_sample(readings)
            energy_mj = report.energy_mj
            self._charge("sample", energy_mj)
        record_event(
            self.instrumentation,
            "sample_collected",
            source="feed",
            charged=charge_energy,
            energy_mj=energy_mj,
        )
        self.window.add(readings)
        self.plan = None  # force a re-plan with the fresh window

    def _context(self) -> PlanningContext:
        if self.window.is_empty:
            raise SamplingError(
                "no samples collected yet; call feed_sample() first"
            )
        return PlanningContext(
            topology=self.topology,
            energy=self.energy,
            samples=self.window.matrix(self.k),
            k=self.k,
            budget=self.config.budget_mj,
            failures=self.failures,
            instrumentation=self.instrumentation,
        )

    # -- planning -----------------------------------------------------------
    def ensure_plan(self) -> QueryPlan:
        """Return the installed plan, planning (and paying install) if
        none is installed yet."""
        if self.plan is None:
            self.plan = self.planner.plan(self._context())
            install_mj = self.simulator.install_cost(self.plan)
            self._charge("install", install_mj)
            self._queries_since_replan = 0
            record_event(
                self.instrumentation,
                "plan_installed",
                reason="initial",
                install_mj=install_mj,
                edges_used=len(self.plan.used_edges),
            )
        return self.plan

    def maybe_replan(self) -> bool:
        """Re-optimize; disseminate only on sufficient improvement.

        Returns True when a new plan was installed.  A declined
        candidate is counted (``engine.replans_skipped`` /
        ``replan_skipped`` event) and does *not* reset the replan
        clock, so the next query re-attempts instead of waiting a full
        ``replan_every`` cycle.
        """
        if self.plan is None:
            self.ensure_plan()
            return True
        with maybe_span(self.instrumentation, "replan.decide") as span:
            context = self._context()
            candidate = self.planner.plan(context)
            ones = context.samples.ones_list()
            current_hits = expected_hits(self.plan, ones)
            candidate_hits = expected_hits(candidate, ones)
            threshold = current_hits * (1.0 + self.config.replan_improvement)
            span.annotate(installed=candidate_hits > threshold)
            if candidate_hits > threshold:
                self.plan = candidate
                install_mj = self.simulator.install_cost(candidate)
                self._charge("install", install_mj)
                self._queries_since_replan = 0
                record_event(
                    self.instrumentation,
                    "plan_installed",
                    reason="replan",
                    install_mj=install_mj,
                    edges_used=len(candidate.used_edges),
                    current_hits=current_hits,
                    candidate_hits=candidate_hits,
                )
                return True
            if self.instrumentation is not None:
                self.instrumentation.counter("engine.replans_skipped").inc()
                self.instrumentation.event(
                    "replan_skipped",
                    current_hits=current_hits,
                    candidate_hits=candidate_hits,
                    threshold=threshold,
                )
            return False

    # -- execution -------------------------------------------------------------
    def query(self, readings) -> QueryResult:
        """Execute the installed plan on this epoch's readings."""
        plan = self.ensure_plan()
        report = self.simulator.run_collection(plan, readings)
        self._charge("query", report.energy_mj)
        self.observe_failures(report)
        answer = report.returned[: self.k]
        score = (
            accuracy((n for __, n in answer), readings, self.k)
            if self.config.track_truth
            else float("nan")
        )
        return QueryResult(returned=answer, energy_mj=report.energy_mj,
                           accuracy=score)

    def _batch(self):
        """The cached vectorized simulator, rebuilt on topology change.

        Only used on the no-failures/no-ledger fast path, so it shares
        the scalar simulator's rng without ever consuming from it.
        """
        from repro.simulation.batch import BatchSimulator

        if (
            self._batch_simulator is None
            or self._batch_simulator.topology is not self.topology
        ):
            self._batch_simulator = BatchSimulator(
                self.topology,
                self.energy,
                rng=self.simulator.rng,
                instrumentation=self.instrumentation,
            )
        return self._batch_simulator

    def query_batch(self, readings_matrix) -> BatchQueryResult:
        """Execute the installed plan on many epochs' readings at once.

        Row ``i`` of the result is *bitwise identical* to what
        :meth:`query` would return for row ``i`` of the matrix — same
        nodes, values, per-epoch energies, accuracies, and the same
        running ``total_energy_mj`` (energy is accumulated per row in
        row order, not summed vectorized).  The speedup comes from one
        :class:`~repro.simulation.batch.BatchSimulator` tree recursion
        replacing ``B`` interpreted plan walks.

        With a link-failure model or an energy ledger attached, the
        vectorized path would perturb the rng stream and per-node
        round-off, so the batch degrades to the scalar loop — still
        one call, identical semantics.
        """
        matrix = np.asarray(
            getattr(readings_matrix, "values", readings_matrix),
            dtype=np.float64,
        )
        if matrix.ndim != 2:
            raise SamplingError(
                "query_batch needs an (epochs, nodes) readings matrix"
            )
        if self.failures is not None or self.ledger is not None:
            results = [self.query(row) for row in matrix]
            return BatchQueryResult(
                nodes=tuple(
                    tuple(int(n) for __, n in r.returned) for r in results
                ),
                values=tuple(
                    tuple(float(v) for v, __ in r.returned) for r in results
                ),
                energies=tuple(float(r.energy_mj) for r in results),
                accuracies=tuple(float(r.accuracy) for r in results),
            )
        plan = self.ensure_plan()
        if matrix.shape[0] == 0:
            return BatchQueryResult(
                nodes=(), values=(), energies=(), accuracies=()
            )
        simulator = self._batch()
        report = simulator.run_collection(plan, matrix)
        # charge per row, in row order: bitwise-equal running totals
        # with the scalar loop (a vectorized sum would round differently)
        for energy in report.energy_mj:
            self._charge("query", float(energy))
        if self.config.track_truth:
            scores = simulator.accuracies(report, matrix, self.k)
        else:
            scores = np.full(report.num_epochs, float("nan"))
        return BatchQueryResult(
            nodes=tuple(
                tuple(int(n) for n in row)
                for row in report.returned_nodes[:, : self.k]
            ),
            values=tuple(
                tuple(float(v) for v in row)
                for row in report.returned_values[:, : self.k]
            ),
            energies=tuple(float(e) for e in report.energy_mj),
            accuracies=tuple(float(s) for s in scores),
        )

    def observe_failures(self, report) -> None:
        """Fold one report's per-edge outcomes into the failure model
        (paper §4.4: "collect statistics on the frequency with which
        each edge fails").  No-op without an attached model."""
        if self.failures is None:
            return
        with maybe_span(
            self.instrumentation, "filter.update",
            outcomes=len(report.edge_outcomes),
        ):
            for edge, failed in report.edge_outcomes:
                self.failures.record_failure(edge, failed)
                if failed and self.instrumentation is not None:
                    self.instrumentation.counter(
                        "engine.failures_observed"
                    ).inc()
                    self.instrumentation.event(
                        "failure_observed",
                        edge=edge,
                        probability=self.failures.failure_probability.get(edge),
                    )

    def audit(self, readings, budget_factor: float = 1.25) -> AuditResult:
        """Estimate the installed plan's accuracy with a proof run.

        Paper §4.4 "Re-sampling": "This confidence can be measured by
        periodically running PROSPECTOR-Proof ... which can tell us the
        accuracy of our approximate solutions."  The proof run's
        certified top-k is ground truth for scoring the installed
        plan's answer; the resulting accuracy estimate feeds the
        adaptive sampler, and the audit's energy is charged.

        Returns an :class:`~repro.query.result.AuditResult`; the old
        ``(estimated_accuracy, audit_energy_mj)`` tuple unpacking still
        works via its ``__iter__``.
        """
        from repro.planners.exact import ExactTopK
        from repro.planners.proof import ProofPlanner

        plan = self.ensure_plan()
        answer = self.query(readings)

        proof_planner = ProofPlanner()
        context = self._context()
        probe = PlanningContext(
            topology=self.topology,
            energy=self.energy,
            samples=context.samples,
            k=self.k,
            budget=float("inf"),
            failures=self.failures,
        )
        proof_context = PlanningContext(
            topology=self.topology,
            energy=self.energy,
            samples=context.samples,
            k=self.k,
            budget=proof_planner.minimum_cost(probe) * budget_factor,
            failures=self.failures,
        )
        exact = ExactTopK(proof_planner)
        outcome = exact.run(proof_context, readings)
        audit_energy = sum(
            m.cost(self.energy)
            for m in outcome.phase1_messages + outcome.phase2_messages
        )
        self._charge("audit", audit_energy)

        truth = outcome.answer_nodes()
        estimated = len(answer.returned_nodes & truth) / self.k
        self.sampler.record_accuracy(estimated)
        result = AuditResult(
            estimated_accuracy=estimated,
            audit_energy_mj=audit_energy,
            truth_nodes=frozenset(truth),
            answer_nodes=frozenset(answer.returned_nodes),
        )
        record_event(
            self.instrumentation,
            "audit_run",
            estimated_accuracy=estimated,
            audit_energy_mj=audit_energy,
            budget_factor=budget_factor,
        )
        return result

    def step(self, readings) -> EpochOutcome:
        """One epoch of the explore/exploit loop."""
        self.epoch += 1
        if self.instrumentation is not None:
            self.instrumentation.counter("engine.epochs").inc()
        with maybe_span(
            self.instrumentation, "epoch", index=self.epoch
        ) as span:
            decision = self.sampler.decide()
            if decision.explore or self.window.is_empty:
                span.annotate(action="sample")
                report = self.simulator.collect_full_sample(readings)
                self._charge("sample", report.energy_mj)
                self.window.add(readings)
                self.plan = None
                if self.instrumentation is not None:
                    self.instrumentation.counter("engine.samples").inc()
                    self.instrumentation.event(
                        "sample_collected",
                        source="explore",
                        rate=decision.rate,
                        energy_mj=report.energy_mj,
                    )
                return EpochOutcome(
                    epoch=self.epoch,
                    action="sample",
                    energy_mj=report.energy_mj,
                    notes={"rate": decision.rate},
                )

            span.annotate(action="query")
            self._queries_since_replan += 1
            replanned = False
            if (
                self.plan is not None
                and self._queries_since_replan >= self.config.replan_every
            ):
                # the clock only resets when a plan is actually installed
                # (inside maybe_replan); a declined candidate leaves it
                # running so the next query re-attempts immediately
                # instead of silently waiting another replan_every cycle
                replanned = self.maybe_replan()

            result = self.query(readings)
            if self.instrumentation is not None:
                self.instrumentation.counter("engine.queries").inc()
            if self.config.track_truth and not np.isnan(result.accuracy):
                self.sampler.record_accuracy(result.accuracy)
            return EpochOutcome(
                epoch=self.epoch,
                action="query",
                result=result,
                energy_mj=result.energy_mj,
                notes={"replanned": replanned},
            )
