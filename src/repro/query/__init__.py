"""High-level top-k query engine.

:class:`~repro.query.engine.TopKEngine` ties the substrates together
the way a deployment would: it maintains the sample window, plans under
an energy budget with a chosen PROSPECTOR, executes queries epoch by
epoch through the simulator, tracks accuracy, and applies the paper's
operational policies (adaptive re-sampling, re-plan only when the
re-optimized plan is considerably better, §4.4).
"""

from repro.query.accuracy import accuracy, recall_of_nodes
from repro.query.engine import EngineConfig, TopKEngine
from repro.query.history import EngineHistory, HistorySummary
from repro.query.result import AuditResult, EpochOutcome, QueryResult

__all__ = [
    "AuditResult",
    "EngineConfig",
    "EngineHistory",
    "HistorySummary",
    "EpochOutcome",
    "QueryResult",
    "TopKEngine",
    "accuracy",
    "recall_of_nodes",
]
