"""Result records produced by the query engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.plans.plan import Reading


@dataclass(frozen=True)
class QueryResult:
    """Answer of one top-k query execution."""

    returned: list[Reading]
    """The answer values, sorted descending, at most k of them."""

    energy_mj: float
    """Energy the collection (plus trigger) consumed."""

    accuracy: float
    """Fraction of the true top-k captured (1.0 for exact algorithms)."""

    @property
    def returned_nodes(self) -> set[int]:
        return {node for __, node in self.returned}


@dataclass(frozen=True)
class BatchQueryResult:
    """Answers of one multi-epoch batched query execution.

    Row ``i`` corresponds to epoch ``i`` of the submitted readings
    matrix; each row is exactly what
    :meth:`~repro.query.engine.TopKEngine.query` would have returned
    for that epoch's readings (bitwise — the batch path changes the
    executor, never the answers).  ``accuracies`` entries are NaN when
    the engine does not track ground truth, matching
    :attr:`QueryResult.accuracy`.
    """

    nodes: tuple
    """Per-epoch tuples of answer node ids, sorted by value descending."""

    values: tuple
    """Per-epoch tuples of answer values, aligned with ``nodes``."""

    energies: tuple
    """Per-epoch measured collection energies (mJ)."""

    accuracies: tuple
    """Per-epoch paper accuracies (NaN when truth is untracked)."""

    @property
    def num_epochs(self) -> int:
        return len(self.energies)

    def rows(self):
        """Iterate the batch as per-epoch :class:`QueryResult` values."""
        for nodes, values, energy, score in zip(
            self.nodes, self.values, self.energies, self.accuracies
        ):
            yield QueryResult(
                returned=[
                    (value, node) for value, node in zip(values, nodes)
                ],
                energy_mj=energy,
                accuracy=score,
            )


@dataclass
class EpochOutcome:
    """What the engine did in one epoch: query, sample, or both."""

    epoch: int
    action: str  # "query" | "sample" | "replan"
    result: QueryResult | None = None
    energy_mj: float = 0.0
    notes: dict = field(default_factory=dict)


@dataclass(frozen=True)
class AuditResult:
    """Outcome of one :meth:`~repro.query.engine.TopKEngine.audit` run.

    Iterating yields ``(estimated_accuracy, audit_energy_mj)`` so
    legacy tuple unpacking keeps working for one deprecation cycle;
    new code should read the named fields.
    """

    estimated_accuracy: float
    """Fraction of the proof run's certified top-k that the installed
    plan's answer captured."""

    audit_energy_mj: float
    """Energy the proof run itself consumed (charged to the engine)."""

    truth_nodes: frozenset[int] = frozenset()
    """The certified top-k node ids the audit scored against."""

    answer_nodes: frozenset[int] = frozenset()
    """The installed plan's answer node ids."""

    def __iter__(self):
        yield self.estimated_accuracy
        yield self.audit_energy_mj
