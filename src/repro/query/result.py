"""Result records produced by the query engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.plans.plan import Reading


@dataclass(frozen=True)
class QueryResult:
    """Answer of one top-k query execution."""

    returned: list[Reading]
    """The answer values, sorted descending, at most k of them."""

    energy_mj: float
    """Energy the collection (plus trigger) consumed."""

    accuracy: float
    """Fraction of the true top-k captured (1.0 for exact algorithms)."""

    @property
    def returned_nodes(self) -> set[int]:
        return {node for __, node in self.returned}


@dataclass
class EpochOutcome:
    """What the engine did in one epoch: query, sample, or both."""

    epoch: int
    action: str  # "query" | "sample" | "replan"
    result: QueryResult | None = None
    energy_mj: float = 0.0
    notes: dict = field(default_factory=dict)


@dataclass(frozen=True)
class AuditResult:
    """Outcome of one :meth:`~repro.query.engine.TopKEngine.audit` run.

    Iterating yields ``(estimated_accuracy, audit_energy_mj)`` so
    legacy tuple unpacking keeps working for one deprecation cycle;
    new code should read the named fields.
    """

    estimated_accuracy: float
    """Fraction of the proof run's certified top-k that the installed
    plan's answer captured."""

    audit_energy_mj: float
    """Energy the proof run itself consumed (charged to the engine)."""

    truth_nodes: frozenset[int] = frozenset()
    """The certified top-k node ids the audit scored against."""

    answer_nodes: frozenset[int] = frozenset()
    """The installed plan's answer node ids."""

    def __iter__(self):
        yield self.estimated_accuracy
        yield self.audit_energy_mj
