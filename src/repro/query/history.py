"""Engine run history: per-epoch records and summaries.

Long-running deployments need to answer "how has the query been doing?"
— mean accuracy over the last day, energy split between querying and
exploration, how often plans were re-installed.  ``EngineHistory``
accumulates :class:`~repro.query.result.EpochOutcome` records and
produces those summaries; attach it by passing engine outcomes to
:meth:`record`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.query.result import EpochOutcome


@dataclass
class HistorySummary:
    """Aggregates over a window of epochs."""

    epochs: int
    queries: int
    samples: int
    replans: int
    mean_accuracy: float
    mean_query_energy_mj: float
    total_energy_mj: float
    sample_energy_fraction: float


@dataclass
class EngineHistory:
    """Accumulated engine outcomes.

    Parameters
    ----------
    capacity:
        Keep at most this many most-recent epochs (None = unbounded).
    """

    capacity: int | None = None
    outcomes: list[EpochOutcome] = field(default_factory=list)

    def record(self, outcome: EpochOutcome) -> None:
        self.outcomes.append(outcome)
        if self.capacity is not None and len(self.outcomes) > self.capacity:
            del self.outcomes[: len(self.outcomes) - self.capacity]

    def __len__(self) -> int:
        return len(self.outcomes)

    def summary(self, last: int | None = None) -> HistorySummary:
        """Aggregate the last ``last`` epochs (default: everything)."""
        window = self.outcomes[-last:] if last else list(self.outcomes)
        if not window:
            raise ReproError("no epochs recorded yet")
        queries = [o for o in window if o.action == "query"]
        samples = [o for o in window if o.action == "sample"]
        accuracies = [
            o.result.accuracy
            for o in queries
            if o.result is not None and not np.isnan(o.result.accuracy)
        ]
        query_energy = [o.energy_mj for o in queries]
        sample_energy = sum(o.energy_mj for o in samples)
        total = sum(o.energy_mj for o in window)
        replans = sum(1 for o in queries if o.notes.get("replanned"))
        return HistorySummary(
            epochs=len(window),
            queries=len(queries),
            samples=len(samples),
            replans=replans,
            mean_accuracy=float(np.mean(accuracies)) if accuracies else float("nan"),
            mean_query_energy_mj=(
                float(np.mean(query_energy)) if query_energy else 0.0
            ),
            total_energy_mj=total,
            sample_energy_fraction=(
                sample_energy / total if total > 0 else 0.0
            ),
        )

    def accuracy_series(self) -> list[tuple[int, float]]:
        """(epoch, accuracy) pairs for plotting/drift detection."""
        return [
            (o.epoch, o.result.accuracy)
            for o in self.outcomes
            if o.action == "query"
            and o.result is not None
            and not np.isnan(o.result.accuracy)
        ]

    def detect_drift(self, window: int = 10, drop: float = 0.2) -> bool:
        """Crude drift alarm: the recent mean accuracy fell by ``drop``
        relative to the preceding window of the same size."""
        series = [a for __, a in self.accuracy_series()]
        if len(series) < 2 * window:
            return False
        recent = float(np.mean(series[-window:]))
        before = float(np.mean(series[-2 * window : -window]))
        return before - recent >= drop
