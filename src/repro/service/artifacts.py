"""Cross-process compiled-artifact store (mmap-backed directory).

The :class:`~repro.service.cache.SharedPlanCache` makes equal-content
tenants *within one process* pay one LP compile.  A sharded deployment
runs many processes, and a cold worker would recompile every form its
siblings already built — so the shared cache optionally spills each
compiled :class:`~repro.lp.fastbuild.ParametricForm` to a directory
keyed by the same content key, and a cold process **loads arrays
instead of recompiling**.

Layout: one subdirectory per content key (the key's SHA-256 digest)
holding ``meta.json`` plus one ``.npy`` file per array.  The heavy
constraint matrices are loaded with ``np.load(..., mmap_mode="r")`` so
N workers on one box share page-cache pages instead of N private
copies; the small RHS/objective vectors are materialized because
solver paths patch copies of them.

Writes are atomic (write to a temp directory, ``os.replace`` into
place), so concurrent workers racing on a cold key cannot expose a
half-written entry — the loser of the race just discards its copy.
Every failure path degrades to "cache miss": a corrupt, foreign, or
unparseable entry is ignored and the caller compiles as it would have
without the store.

Only forms whose parametric RHS slot is affine with unit slope
(``rhs_intercept`` set — both bandwidth formulations) are spilled;
reconstruction is then bitwise-exact, which keeps the sharded service
byte-identical to the single-process one.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from contextlib import suppress
from pathlib import Path

import numpy as np
from scipy import sparse

from repro.lp.fastbuild import CompiledLP, ParametricForm
from repro.lp.standard_form import StandardForm

_FORMAT_VERSION = 1

_VECTORS = ("c", "b_ub", "b_eq", "bounds_lo", "bounds_hi")
_MATRIX_PARTS = ("data", "indices", "indptr")


def key_digest(key) -> str:
    """Stable filesystem name for one content key.

    Keys are nested tuples of strings/ints/floats (see
    :meth:`~repro.service.cache.SharedPlanCache.key_for`), whose
    ``repr`` is deterministic across processes and Python runs.
    """
    return hashlib.sha256(repr(key).encode()).hexdigest()[:32]


class ArtifactStore:
    """Directory of compiled parametric forms, shared across processes.

    Parameters
    ----------
    root:
        Directory to spill into (created on first use).
    max_entries:
        Soft bound on retained entries; the oldest (by mtime) are
        pruned when a save pushes past it.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; outcomes land
        under ``service.artifacts.{saves,disk_hits,disk_misses,errors}``.
    """

    def __init__(
        self,
        root,
        *,
        max_entries: int = 128,
        instrumentation=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("artifact store needs max_entries >= 1")
        self.root = Path(root)
        self.max_entries = max_entries
        self.instrumentation = instrumentation
        self.saves = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.errors = 0

    def _count(self, outcome: str) -> None:
        setattr(self, outcome, getattr(self, outcome) + 1)
        if self.instrumentation is not None:
            self.instrumentation.counter(
                f"service.artifacts.{outcome}"
            ).inc()

    def path_for(self, key) -> Path:
        return self.root / key_digest(key)

    # -- save -----------------------------------------------------------
    def save(self, key, parametric: ParametricForm) -> bool:
        """Best-effort spill; True when the entry is (now) on disk.

        Forms without an affine RHS slot are skipped (their closure
        cannot be reconstructed exactly), as is any entry that already
        exists.
        """
        if parametric.rhs_intercept is None:
            return False
        final = self.path_for(key)
        if final.exists():
            return True
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = Path(
                tempfile.mkdtemp(prefix=f".tmp-{final.name}-", dir=self.root)
            )
            try:
                self._write_entry(tmp, key, parametric)
                os.replace(tmp, final)
            except OSError:
                # lost the race (target exists, non-empty) or disk error
                shutil.rmtree(tmp, ignore_errors=True)
                if not final.exists():
                    raise
        except (OSError, ValueError):
            self._count("errors")
            return False
        self._count("saves")
        self._prune()
        return True

    def _write_entry(self, into: Path, key, parametric) -> None:
        form = parametric.form
        compiled = parametric.compiled
        bounds_lo = np.array(
            [-np.inf if lo is None else lo for lo, __ in form.bounds]
        )
        bounds_hi = np.array(
            [np.inf if hi is None else hi for __, hi in form.bounds]
        )
        vectors = {
            "c": np.asarray(form.c, dtype=float),
            "b_ub": np.asarray(form.b_ub, dtype=float),
            "b_eq": np.asarray(form.b_eq, dtype=float),
            "bounds_lo": bounds_lo,
            "bounds_hi": bounds_hi,
        }
        for name, array in vectors.items():
            np.save(into / f"{name}.npy", array, allow_pickle=False)
        for prefix, matrix in (("ub", form.a_ub), ("eq", form.a_eq)):
            csr = sparse.csr_matrix(matrix)
            for part in _MATRIX_PARTS:
                np.save(
                    into / f"{prefix}_{part}.npy",
                    np.ascontiguousarray(getattr(csr, part)),
                    allow_pickle=False,
                )
        meta = {
            "version": _FORMAT_VERSION,
            "key_repr": repr(key),
            "name": compiled.name,
            "column_names": list(compiled.column_names),
            "primary_columns": [
                [int(k), int(v)] for k, v in compiled.primary_columns.items()
            ],
            "row": int(parametric.row),
            "rhs_intercept": float(parametric.rhs_intercept),
            "objective_constant": float(form.objective_constant),
            "maximize": bool(form.maximize),
            "ub_shape": [int(s) for s in form.a_ub.shape],
            "eq_shape": [int(s) for s in form.a_eq.shape],
        }
        (into / "meta.json").write_text(json.dumps(meta))

    # -- load -----------------------------------------------------------
    def load(self, key) -> ParametricForm | None:
        """The stored form for ``key``, or ``None`` (counted) if absent
        or unreadable.  Matrix payloads come back memory-mapped."""
        entry = self.path_for(key)
        try:
            meta = json.loads((entry / "meta.json").read_text())
            if (
                meta.get("version") != _FORMAT_VERSION
                or meta.get("key_repr") != repr(key)
            ):
                self._count("disk_misses")
                return None
            parametric = self._read_entry(entry, meta)
        except (OSError, ValueError, KeyError):
            self._count("disk_misses")
            return None
        self._count("disk_hits")
        return parametric

    def _read_entry(self, entry: Path, meta: dict) -> ParametricForm:
        vectors = {
            name: np.array(
                np.load(entry / f"{name}.npy", allow_pickle=False)
            )
            for name in _VECTORS
        }
        matrices = {}
        for prefix in ("ub", "eq"):
            data, indices, indptr = (
                np.load(
                    entry / f"{prefix}_{part}.npy",
                    mmap_mode="r",
                    allow_pickle=False,
                )
                for part in _MATRIX_PARTS
            )
            # build empty, then attach the arrays: the (data, indices,
            # indptr) constructor copies, which would defeat the mmap
            matrix = sparse.csr_matrix(tuple(meta[f"{prefix}_shape"]))
            matrix.data, matrix.indices, matrix.indptr = (
                data, indices, indptr,
            )
            matrices[prefix] = matrix
        bounds = [
            (
                None if lo == -np.inf else float(lo),
                None if hi == np.inf else float(hi),
            )
            for lo, hi in zip(vectors["bounds_lo"], vectors["bounds_hi"])
        ]
        form = StandardForm(
            c=vectors["c"],
            a_ub=matrices["ub"],
            b_ub=vectors["b_ub"],
            a_eq=matrices["eq"],
            b_eq=vectors["b_eq"],
            bounds=bounds,
            objective_constant=meta["objective_constant"],
            maximize=meta["maximize"],
        )
        compiled = CompiledLP(
            name=meta["name"],
            form=form,
            column_names=list(meta["column_names"]),
            primary_columns={
                int(k): int(v) for k, v in meta["primary_columns"]
            },
        )
        intercept = float(meta["rhs_intercept"])
        return ParametricForm(
            compiled=compiled,
            row=int(meta["row"]),
            rhs_of=lambda budget, __i=intercept: budget + __i,
            rhs_intercept=intercept,
        )

    # -- maintenance ----------------------------------------------------
    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [
            p
            for p in self.root.iterdir()
            if p.is_dir() and not p.name.startswith(".tmp-")
        ]

    def _prune(self) -> None:
        entries = self._entries()
        if len(entries) <= self.max_entries:
            return
        entries.sort(key=lambda p: p.stat().st_mtime)
        for stale in entries[: len(entries) - self.max_entries]:
            shutil.rmtree(stale, ignore_errors=True)

    def __len__(self) -> int:
        return len(self._entries())

    def stats(self) -> dict:
        return {
            "entries": len(self),
            "saves": self.saves,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "errors": self.errors,
        }


_BLOB_SUFFIX = ".npy"


class BlobSpool:
    """Content-named ``.npy`` spool backing the wire's same-host fast path.

    The binary protocol's blob-reference mode (see
    :mod:`repro.service.wire`) ships a *name* instead of a payload:
    the sender spills a large float array here as
    ``<digest>.npy`` (the digest is
    :func:`~repro.service.cache.array_digest` over shape + dtype +
    bytes, so equal content lands on one file and a re-send is free),
    and the receiver maps it read-only with ``np.load(mmap_mode="r")``
    — the array crosses processes through the page cache, never the
    socket.

    The same atomic-rename discipline as :class:`ArtifactStore`
    applies (temp file, ``os.replace``), and :meth:`load` validates
    names against a strict ``<hex digest>.npy`` shape so a hostile
    reference cannot escape the spool directory.

    Parameters
    ----------
    root:
        Spool directory (created on first spill).  Both peers must see
        the same path — it is what the hello/accept negotiation lines
        agree on.
    threshold:
        Minimum ``nbytes`` before an array is worth spilling; smaller
        payloads stay inline in the frame.
    max_entries:
        Soft bound on retained blobs; oldest (by mtime) pruned on the
        spill that pushes past it.
    """

    def __init__(
        self,
        root,
        *,
        threshold: int = 16_384,
        max_entries: int = 256,
        instrumentation=None,
    ) -> None:
        if threshold < 0:
            raise ValueError("blob spool threshold must be >= 0")
        if max_entries < 1:
            raise ValueError("blob spool needs max_entries >= 1")
        self.root = Path(root)
        self.threshold = threshold
        self.max_entries = max_entries
        self.instrumentation = instrumentation
        self.spills = 0
        self.reuses = 0
        self.loads = 0
        self.errors = 0

    def _count(self, outcome: str) -> None:
        setattr(self, outcome, getattr(self, outcome) + 1)
        if self.instrumentation is not None:
            self.instrumentation.counter(f"service.blobs.{outcome}").inc()

    @staticmethod
    def _valid_name(name: str) -> bool:
        stem = name[: -len(_BLOB_SUFFIX)]
        return (
            name.endswith(_BLOB_SUFFIX)
            and 8 <= len(stem) <= 64
            and all(c in "0123456789abcdef" for c in stem)
        )

    def spill(self, array: np.ndarray) -> str | None:
        """Write ``array`` into the spool; returns its blob name.

        Best-effort like every store in this module: any filesystem
        failure returns ``None`` (counted) and the caller falls back
        to inline framing.
        """
        from repro.service.cache import array_digest

        array = np.ascontiguousarray(array)
        name = (
            array_digest(array, extra=str(array.dtype), length=32)
            + _BLOB_SUFFIX
        )
        final = self.root / name
        try:
            if final.exists():
                self._count("reuses")
                return name
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=f".tmp-{name}-", dir=self.root
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    np.save(handle, array, allow_pickle=False)
                os.replace(tmp, final)
            except OSError:
                with suppress(OSError):
                    os.unlink(tmp)
                if not final.exists():
                    raise
        except (OSError, ValueError):
            self._count("errors")
            return None
        self._count("spills")
        self._prune_blobs()
        return name

    def load(self, name: str) -> np.ndarray:
        """Map the named blob read-only; raises
        :class:`~repro.errors.ProtocolError` for malformed or missing
        references (a wire-level failure, not a cache miss)."""
        from repro.errors import ProtocolError

        if not self._valid_name(name):
            raise ProtocolError(f"malformed blob reference {name!r}")
        try:
            array = np.load(
                self.root / name, mmap_mode="r", allow_pickle=False
            )
        except (OSError, ValueError) as err:
            self._count("errors")
            raise ProtocolError(
                f"unreadable blob reference {name!r}: {err}"
            ) from err
        self._count("loads")
        return array

    def _blob_entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [
            p
            for p in self.root.iterdir()
            if p.is_file() and self._valid_name(p.name)
        ]

    def _prune_blobs(self) -> None:
        entries = self._blob_entries()
        if len(entries) <= self.max_entries:
            return
        entries.sort(key=lambda p: p.stat().st_mtime)
        for stale in entries[: len(entries) - self.max_entries]:
            with suppress(OSError):
                stale.unlink()

    def __len__(self) -> int:
        return len(self._blob_entries())

    def stats(self) -> dict:
        return {
            "entries": len(self),
            "spills": self.spills,
            "reuses": self.reuses,
            "loads": self.loads,
            "errors": self.errors,
        }
