"""Binary wire protocol v2: negotiated, length-prefixed, zero-copy.

The JSON-lines codec in :mod:`repro.service.messages` (protocol
``v1``) spends most of each request's byte budget — and a large slice
of its CPU budget — on text framing.  This module is the negotiated
binary alternative (protocol ``v2``): the same typed messages, packed
with :mod:`struct` into length-prefixed frames whose numeric payloads
are raw little-endian buffers a server can view with
``np.frombuffer`` without copying.

**Frame layout.**  One frame on the wire is::

    +----------------+---------------------------+------------------+
    | length  u32 BE | header  "<BBQ"            | payload          |
    |                | kind u8 · flags u8 · cid  | per-kind fields  |
    +----------------+---------------------------+------------------+

The length prefix covers header plus payload (bounded by
:data:`~repro.service.messages.MAX_FRAME_BYTES`, same cap as v1).
``kind`` is a stable one-byte code from :data:`KIND_CODES`; ``cid`` is
the pipelining correlation id, meaningful only when
:data:`FLAG_CID` is set in ``flags``.  Payload fields are packed in
dataclass declaration order with the little-endian primitives in
:data:`_FIELD_SPECS` — strings as ``u32`` length plus UTF-8, vectors
as a count plus packed ``i64``/``f64``, matrices as ``rows·cols`` plus
a raw ``f64`` buffer, optional floats as a presence byte.  Decoding is
strict: unknown kind codes, unknown flag bits, truncated payloads, and
trailing bytes all raise :class:`~repro.errors.ProtocolError` — the
binary analog of v1's unknown-field rejection.  Non-finite floats are
rejected on encode exactly as v1's ``allow_nan=False`` does, so
``decode(encode(m)) == m`` holds for the same message population on
both codecs.

**Negotiation.**  A v2-capable client opens the conversation with a
*hello line*: a single ``\\x00``-prefixed, newline-terminated line
(:func:`hello_line`).  No JSON document can begin with a NUL byte, so
a server's ordinary first ``readline`` distinguishes the two protocols
without peeking: a v2 server answers with an *accept line*
(:func:`accept_line`) and both sides switch to binary framing; a
v1-only server answers with whatever it says to garbage (an
``ErrorReply`` line), which an ``auto`` client treats as "speak v1".
The hello/accept options carry the shared-memory spool directory for
the same-host fast path below.

**Shared-memory fast path.**  When both peers negotiate a common
``blob_dir``, large float payloads (a batch's readings matrix, say)
are spilled to a content-named ``.npy`` file by
:class:`~repro.service.artifacts.BlobSpool` and cross the socket as a
tiny *blob reference* (mode byte ``1`` plus the file name) instead of
bytes; the receiver maps the file read-only (``np.load(mmap_mode="r")``),
so the payload never transits the socket buffer at all.
"""

from __future__ import annotations

import json
import math
import struct

import numpy as np

from repro.errors import ProtocolError
from repro.obs.distributed import TraceContext
from repro.service.messages import (
    MAX_FRAME_BYTES,
    MESSAGE_KINDS,
    Message,
)

PROTOCOL_V1 = "v1"
PROTOCOL_V2 = "v2"
PROTOCOLS = (PROTOCOL_V1, PROTOCOL_V2)

WIRE_MAGIC = b"\x00repro-wire"
"""Leading bytes of every negotiation line.

The NUL prefix is the whole trick: JSON text can never start with
``\\x00``, so one ``readline`` tells a server (or a waiting client)
which protocol the peer speaks.
"""

FLAG_CID = 0x01
FLAG_TRACE = 0x02
_KNOWN_FLAGS = FLAG_CID | FLAG_TRACE

_HEADER = struct.Struct("<BBQ")
_TRACE_BLOCK = struct.Struct("<QQ")
"""Fixed-width trace context (trace id u64, parent span id u64),
present directly after the header when :data:`FLAG_TRACE` is set."""
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_SHAPE2 = struct.Struct("<II")

_MODE_INLINE = 0
_MODE_BLOB = 1

KIND_CODES: dict[str, int] = {
    "register_topology": 1,
    "open_session": 2,
    "feed_sample": 3,
    "submit_query": 4,
    "step_epoch": 5,
    "get_plan": 6,
    "close_session": 7,
    "get_stats": 8,
    "submit_batch": 9,
    "topology_registered": 10,
    "session_opened": 11,
    "sample_accepted": 12,
    "query_reply": 13,
    "step_reply": 14,
    "plan_reply": 15,
    "session_closed": 16,
    "stats_reply": 17,
    "error": 18,
    "batch_reply": 19,
}
"""Stable kind → wire code table.

Codes are part of the protocol: they never change meaning and new
kinds only ever append new codes (pinned by a test), so a v2 peer one
release ahead still frames the kinds both sides know identically.
"""

CODE_KINDS: dict[int, str] = {code: kind for kind, code in KIND_CODES.items()}

# Per-kind payload schema: (field name, field type) in dataclass
# declaration order.  Types: str · i (i64) · f (f64) · b (bool u8) ·
# ivec/fvec (count + packed) · fmat (rows·cols + raw f64 buffer, blob
# eligible) · rivec/rfvec (ragged: row count, then per-row vectors) ·
# optf (presence byte + f64) · ofvec (count + per-element optf) ·
# json (presence byte + UTF-8 JSON document, for dict payloads).
_FIELD_SPECS: dict[str, tuple[tuple[str, str], ...]] = {
    "register_topology": (("parents", "ivec"),),
    "open_session": (
        ("topology_id", "str"),
        ("k", "i"),
        ("planner", "str"),
        ("budget_mj", "f"),
        ("window_capacity", "i"),
        ("replan_every", "i"),
        ("track_truth", "b"),
    ),
    "feed_sample": (("session_id", "str"), ("readings", "fvec")),
    "submit_query": (("session_id", "str"), ("readings", "fvec")),
    "step_epoch": (("session_id", "str"), ("readings", "fvec")),
    "submit_batch": (("session_id", "str"), ("readings", "fmat")),
    "get_plan": (("session_id", "str"),),
    "close_session": (("session_id", "str"),),
    "get_stats": (),
    "topology_registered": (("topology_id", "str"), ("num_nodes", "i")),
    "session_opened": (
        ("session_id", "str"),
        ("topology_id", "str"),
        ("planner", "str"),
    ),
    "sample_accepted": (("session_id", "str"), ("window_size", "i")),
    "query_reply": (
        ("session_id", "str"),
        ("nodes", "ivec"),
        ("values", "fvec"),
        ("energy_mj", "f"),
        ("accuracy", "optf"),
    ),
    "step_reply": (
        ("session_id", "str"),
        ("epoch", "i"),
        ("action", "str"),
        ("energy_mj", "f"),
        ("nodes", "ivec"),
        ("values", "fvec"),
        ("accuracy", "optf"),
    ),
    "batch_reply": (
        ("session_id", "str"),
        ("nodes", "rivec"),
        ("values", "rfvec"),
        ("energies", "fvec"),
        ("accuracies", "ofvec"),
    ),
    "plan_reply": (("session_id", "str"), ("plan", "json")),
    "session_closed": (
        ("session_id", "str"),
        ("epochs", "i"),
        ("total_energy_mj", "f"),
    ),
    "stats_reply": (
        ("sessions_open", "i"),
        ("sessions_total", "i"),
        ("topologies", "i"),
        ("counters", "json"),
    ),
    "error": (("error", "str"), ("message", "str")),
}


# -- negotiation lines ------------------------------------------------------


def hello_line(blob_dir: str | None = None) -> bytes:
    """The client's opening line requesting protocol v2."""
    opts = {"blob_dir": blob_dir} if blob_dir else {}
    return b"%s hello %s %s\n" % (
        WIRE_MAGIC,
        PROTOCOL_V2.encode(),
        json.dumps(opts, sort_keys=True).encode(),
    )


def accept_line(blob_dir: str | None = None) -> bytes:
    """The server's answer committing the connection to v2."""
    opts = {"blob_dir": blob_dir} if blob_dir else {}
    return b"%s accept %s %s\n" % (
        WIRE_MAGIC,
        PROTOCOL_V2.encode(),
        json.dumps(opts, sort_keys=True).encode(),
    )


def is_negotiation_line(first_bytes: bytes) -> bool:
    """Whether a peer's first bytes open a v2 negotiation.

    Only the NUL byte is checked: any ``\\x00``-led line *claims* to be
    a negotiation line and must then survive :func:`parse_hello` /
    :func:`parse_accept`; JSON traffic can never trip this.
    """
    return first_bytes[:1] == b"\x00"


def _parse_negotiation(line: bytes, verb: str) -> dict:
    parts = line.rstrip(b"\n").split(b" ", 3)
    if (
        len(parts) != 4
        or parts[0] != WIRE_MAGIC
        or parts[1].decode("utf-8", "replace") != verb
    ):
        raise ProtocolError(f"malformed wire {verb} line: {line[:64]!r}")
    version = parts[2].decode("utf-8", "replace")
    if version != PROTOCOL_V2:
        raise ProtocolError(
            f"peer proposed unsupported wire protocol {version!r}"
        )
    try:
        opts = json.loads(parts[3])
    except (ValueError, UnicodeDecodeError) as err:
        raise ProtocolError(f"malformed wire {verb} options: {err}") from err
    if not isinstance(opts, dict):
        raise ProtocolError(f"wire {verb} options must be a JSON object")
    return opts


def parse_hello(line: bytes) -> dict:
    """Validate a hello line; returns its options dict."""
    return _parse_negotiation(line, "hello")


def parse_accept(line: bytes) -> dict:
    """Validate an accept line; returns its options dict."""
    return _parse_negotiation(line, "accept")


# -- field packers ----------------------------------------------------------


def _reject_nan(value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ProtocolError(
            "non-finite float cannot cross the wire (v1 JSON parity)"
        )
    return value


def _pack_str(value, parts, spool) -> None:
    raw = str(value).encode("utf-8")
    parts.append(_U32.pack(len(raw)))
    parts.append(raw)


def _pack_i(value, parts, spool) -> None:
    parts.append(_I64.pack(int(value)))


def _pack_f(value, parts, spool) -> None:
    parts.append(_F64.pack(_reject_nan(value)))


def _pack_b(value, parts, spool) -> None:
    parts.append(b"\x01" if value else b"\x00")


def _pack_ivec(value, parts, spool) -> None:
    if isinstance(value, np.ndarray):
        value = value.tolist()
    parts.append(_U32.pack(len(value)))
    parts.append(struct.pack(f"<{len(value)}q", *(int(v) for v in value)))


def _float_buffer(value) -> np.ndarray:
    """``value`` as a contiguous little-endian float64 array, with the
    same non-finite rejection the JSON codec applies."""
    arr = np.ascontiguousarray(value, dtype="<f8")
    if arr.size and not np.isfinite(arr).all():
        raise ProtocolError(
            "non-finite float cannot cross the wire (v1 JSON parity)"
        )
    return arr


def _pack_fvec(value, parts, spool) -> None:
    if isinstance(value, np.ndarray):
        arr = _float_buffer(value)
        if arr.ndim != 1:
            raise ProtocolError("fvec payload must be one-dimensional")
        parts.append(b"\x00")  # inline mode
        parts.append(_U32.pack(arr.shape[0]))
        parts.append(arr.tobytes())
        return
    parts.append(b"\x00")
    parts.append(_U32.pack(len(value)))
    parts.append(
        struct.pack(
            f"<{len(value)}d", *(_reject_nan(v) for v in value)
        )
    )


def _pack_fmat(value, parts, spool) -> None:
    arr = _float_buffer(value)
    if arr.ndim == 1 and arr.size == 0:
        # an empty batch (`()`) coerces to shape (0,); frame it as 0x0
        arr = arr.reshape(0, 0)
    if arr.ndim != 2:
        raise ProtocolError("fmat payload must be a 2-d matrix")
    if spool is not None and arr.nbytes >= spool.threshold:
        name = spool.spill(arr)
        if name is not None:
            parts.append(b"\x01")  # blob-reference mode
            _pack_str(name, parts, spool)
            return
    parts.append(b"\x00")
    parts.append(_SHAPE2.pack(arr.shape[0], arr.shape[1]))
    parts.append(arr.tobytes())


def _pack_rivec(value, parts, spool) -> None:
    parts.append(_U32.pack(len(value)))
    for row in value:
        _pack_ivec(row, parts, spool)


def _pack_rfvec(value, parts, spool) -> None:
    parts.append(_U32.pack(len(value)))
    for row in value:
        if isinstance(row, np.ndarray):
            row = row.tolist()
        parts.append(_U32.pack(len(row)))
        parts.append(
            struct.pack(f"<{len(row)}d", *(_reject_nan(v) for v in row))
        )


def _pack_optf(value, parts, spool) -> None:
    if value is None:
        parts.append(b"\x00")
    else:
        parts.append(b"\x01")
        parts.append(_F64.pack(_reject_nan(value)))


def _pack_ofvec(value, parts, spool) -> None:
    parts.append(_U32.pack(len(value)))
    for item in value:
        _pack_optf(item, parts, spool)


def _pack_json(value, parts, spool) -> None:
    if value is None:
        parts.append(b"\x00")
        return
    parts.append(b"\x01")
    raw = json.dumps(value, allow_nan=False, sort_keys=True).encode("utf-8")
    parts.append(_U32.pack(len(raw)))
    parts.append(raw)


_PACKERS = {
    "str": _pack_str,
    "i": _pack_i,
    "f": _pack_f,
    "b": _pack_b,
    "ivec": _pack_ivec,
    "fvec": _pack_fvec,
    "fmat": _pack_fmat,
    "rivec": _pack_rivec,
    "rfvec": _pack_rfvec,
    "optf": _pack_optf,
    "ofvec": _pack_ofvec,
    "json": _pack_json,
}


# -- field unpackers --------------------------------------------------------


def _need(view: memoryview, offset: int, count: int) -> None:
    if offset + count > len(view):
        raise ProtocolError(
            f"truncated frame payload: wanted {count} bytes at offset"
            f" {offset}, frame ends at {len(view)}"
        )


def _unpack_str(view, offset, vectors, spool):
    _need(view, offset, 4)
    (length,) = _U32.unpack_from(view, offset)
    offset += 4
    _need(view, offset, length)
    try:
        value = bytes(view[offset : offset + length]).decode("utf-8")
    except UnicodeDecodeError as err:
        raise ProtocolError(f"invalid UTF-8 in string field: {err}") from err
    return value, offset + length


def _unpack_i(view, offset, vectors, spool):
    _need(view, offset, 8)
    (value,) = _I64.unpack_from(view, offset)
    return value, offset + 8


def _unpack_f(view, offset, vectors, spool):
    _need(view, offset, 8)
    (value,) = _F64.unpack_from(view, offset)
    return value, offset + 8


def _unpack_b(view, offset, vectors, spool):
    _need(view, offset, 1)
    return bool(view[offset]), offset + 1


def _unpack_ivec(view, offset, vectors, spool):
    _need(view, offset, 4)
    (count,) = _U32.unpack_from(view, offset)
    offset += 4
    _need(view, offset, 8 * count)
    value = struct.unpack_from(f"<{count}q", view, offset)
    return value, offset + 8 * count


def _unpack_mode(view, offset):
    _need(view, offset, 1)
    mode = view[offset]
    if mode not in (_MODE_INLINE, _MODE_BLOB):
        raise ProtocolError(f"unknown payload mode byte {mode}")
    return mode, offset + 1


def _load_blob(view, offset, vectors, spool):
    name, offset = _unpack_str(view, offset, vectors, spool)
    if spool is None:
        raise ProtocolError(
            "peer sent a blob reference but no spool directory was"
            " negotiated on this connection"
        )
    return spool.load(name), offset


def _unpack_fvec(view, offset, vectors, spool):
    mode, offset = _unpack_mode(view, offset)
    if mode == _MODE_BLOB:
        arr, offset = _load_blob(view, offset, vectors, spool)
        if arr.ndim != 1:
            raise ProtocolError("fvec blob reference is not one-dimensional")
        if vectors == "array":
            return arr, offset
        return tuple(arr.tolist()), offset
    _need(view, offset, 4)
    (count,) = _U32.unpack_from(view, offset)
    offset += 4
    _need(view, offset, 8 * count)
    if vectors == "array":
        value = np.frombuffer(view, dtype="<f8", count=count, offset=offset)
        return value, offset + 8 * count
    value = struct.unpack_from(f"<{count}d", view, offset)
    return value, offset + 8 * count


def _unpack_fmat(view, offset, vectors, spool):
    mode, offset = _unpack_mode(view, offset)
    if mode == _MODE_BLOB:
        arr, offset = _load_blob(view, offset, vectors, spool)
        if arr.ndim != 2:
            raise ProtocolError("fmat blob reference is not a 2-d matrix")
    else:
        _need(view, offset, 8)
        rows, cols = _SHAPE2.unpack_from(view, offset)
        offset += 8
        _need(view, offset, 8 * rows * cols)
        arr = np.frombuffer(
            view, dtype="<f8", count=rows * cols, offset=offset
        ).reshape(rows, cols)
        offset += 8 * rows * cols
    if vectors == "array":
        return arr, offset
    return tuple(tuple(row) for row in arr.tolist()), offset


def _unpack_rivec(view, offset, vectors, spool):
    _need(view, offset, 4)
    (rows,) = _U32.unpack_from(view, offset)
    offset += 4
    value = []
    for _ in range(rows):
        row, offset = _unpack_ivec(view, offset, vectors, spool)
        value.append(row)
    return tuple(value), offset


def _unpack_rfvec(view, offset, vectors, spool):
    _need(view, offset, 4)
    (rows,) = _U32.unpack_from(view, offset)
    offset += 4
    value = []
    for _ in range(rows):
        _need(view, offset, 4)
        (count,) = _U32.unpack_from(view, offset)
        offset += 4
        _need(view, offset, 8 * count)
        value.append(struct.unpack_from(f"<{count}d", view, offset))
        offset += 8 * count
    return tuple(value), offset


def _unpack_optf(view, offset, vectors, spool):
    _need(view, offset, 1)
    flag = view[offset]
    offset += 1
    if flag == 0:
        return None, offset
    if flag != 1:
        raise ProtocolError(f"invalid optional-float presence byte {flag}")
    _need(view, offset, 8)
    (value,) = _F64.unpack_from(view, offset)
    return value, offset + 8


def _unpack_ofvec(view, offset, vectors, spool):
    _need(view, offset, 4)
    (count,) = _U32.unpack_from(view, offset)
    offset += 4
    value = []
    for _ in range(count):
        item, offset = _unpack_optf(view, offset, vectors, spool)
        value.append(item)
    return tuple(value), offset


def _unpack_json(view, offset, vectors, spool):
    _need(view, offset, 1)
    flag = view[offset]
    offset += 1
    if flag == 0:
        return None, offset
    if flag != 1:
        raise ProtocolError(f"invalid json presence byte {flag}")
    raw, offset = _unpack_str(view, offset, vectors, spool)
    try:
        return json.loads(raw), offset
    except ValueError as err:
        raise ProtocolError(f"invalid embedded JSON payload: {err}") from err


_UNPACKERS = {
    "str": _unpack_str,
    "i": _unpack_i,
    "f": _unpack_f,
    "b": _unpack_b,
    "ivec": _unpack_ivec,
    "fvec": _unpack_fvec,
    "fmat": _unpack_fmat,
    "rivec": _unpack_rivec,
    "rfvec": _unpack_rfvec,
    "optf": _unpack_optf,
    "ofvec": _unpack_ofvec,
    "json": _unpack_json,
}


# -- frames -----------------------------------------------------------------


def encode_frame(
    message: Message, cid: int | None = None, spool=None, trace=None
) -> bytes:
    """One complete v2 frame (length prefix included) for ``message``.

    ``cid`` rides in the header exactly like v1's envelope-level
    correlation id; ``trace`` (a
    :class:`~repro.obs.distributed.TraceContext`) adds the fixed-width
    trace-context block behind :data:`FLAG_TRACE`; ``spool`` (a
    :class:`~repro.service.artifacts.BlobSpool`) enables the same-host
    blob-reference fast path for large float payloads.
    """
    code = KIND_CODES.get(message.kind)
    if code is None:
        raise ProtocolError(f"unknown message kind {message.kind!r}")
    flags = 0
    header_cid = 0
    if cid is not None:
        flags |= FLAG_CID
        header_cid = int(cid)
        if not 0 <= header_cid < 1 << 64:
            raise ProtocolError("correlation id out of u64 range")
    if trace is not None:
        flags |= FLAG_TRACE
    parts = [b"", _HEADER.pack(code, flags, header_cid)]
    if trace is not None:
        if not (
            0 < trace.trace_id < 1 << 64
            and 0 <= trace.parent_span_id < 1 << 64
        ):
            raise ProtocolError("trace context ids out of u64 range")
        parts.append(
            _TRACE_BLOCK.pack(trace.trace_id, trace.parent_span_id)
        )
    specs = _FIELD_SPECS[message.kind]
    for name, ftype in specs:
        _PACKERS[ftype](getattr(message, name), parts, spool)
    body_len = sum(len(p) for p in parts)
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {body_len} bytes exceeds the"
            f" {MAX_FRAME_BYTES}-byte protocol limit"
        )
    parts[0] = struct.pack(">I", body_len)
    return b"".join(parts)


def decode_frame_trace(
    body: bytes | memoryview,
    *,
    vectors: str = "tuple",
    spool=None,
) -> tuple[Message, int | None, "object | None"]:
    """Rehydrate one frame *body* (header + payload, no length prefix)
    into ``(message, correlation id, trace context)``.

    ``vectors="tuple"`` (the default) produces the canonical tuple
    form, so ``decode_frame(encode_frame(m)) == (m, None)`` exactly;
    ``vectors="array"`` hands float vectors and matrices back as
    zero-copy read-only ``np.frombuffer`` views over the frame buffer
    — the server's data-plane mode.  The trace context is a
    :class:`~repro.obs.distributed.TraceContext` when the frame
    carries :data:`FLAG_TRACE`, else ``None``.  Violations
    (truncation, trailing bytes, unknown kind codes or flag bits)
    raise :class:`~repro.errors.ProtocolError`.
    """
    view = memoryview(body)
    if len(view) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(view)} bytes exceeds the"
            f" {MAX_FRAME_BYTES}-byte protocol limit"
        )
    if len(view) < _HEADER.size:
        raise ProtocolError(
            f"frame of {len(view)} bytes is shorter than the"
            f" {_HEADER.size}-byte header"
        )
    code, flags, header_cid = _HEADER.unpack_from(view, 0)
    if flags & ~_KNOWN_FLAGS:
        raise ProtocolError(f"unknown flag bits 0x{flags:02x} in frame header")
    kind = CODE_KINDS.get(code)
    if kind is None:
        raise ProtocolError(f"unknown wire kind code {code}")
    cid = header_cid if flags & FLAG_CID else None
    offset = _HEADER.size
    trace = None
    if flags & FLAG_TRACE:
        _need(view, offset, _TRACE_BLOCK.size)
        trace_id, parent_span_id = _TRACE_BLOCK.unpack_from(view, offset)
        offset += _TRACE_BLOCK.size
        if trace_id == 0:
            raise ProtocolError("trace context block carries trace id 0")
        trace = TraceContext(
            trace_id=trace_id, parent_span_id=parent_span_id
        )
    payload = {}
    for name, ftype in _FIELD_SPECS[kind]:
        payload[name], offset = _UNPACKERS[ftype](view, offset, vectors, spool)
    if offset != len(view):
        raise ProtocolError(
            f"{len(view) - offset} trailing payload bytes after"
            f" {kind!r} frame fields (v1 unknown-field parity)"
        )
    return MESSAGE_KINDS[kind](**payload), cid, trace


def decode_frame(
    body: bytes | memoryview,
    *,
    vectors: str = "tuple",
    spool=None,
) -> tuple[Message, int | None]:
    """:func:`decode_frame_trace` without the trace context — the
    original two-tuple surface most call sites (and tests) use."""
    message, cid, __ = decode_frame_trace(
        body, vectors=vectors, spool=spool
    )
    return message, cid


def read_frame_blocking(sock_file) -> bytes:
    """Read one frame body from a blocking binary file object.

    Returns ``b""`` at clean EOF (before any prefix byte); raises
    :class:`~repro.errors.ProtocolError` on a truncated prefix or
    body, and on a length prefix exceeding the frame bound (the stream
    is unrecoverable past that point — no resync is attempted).
    """
    prefix = sock_file.read(4)
    if not prefix:
        return b""
    if len(prefix) < 4:
        raise ProtocolError(
            f"truncated frame length prefix ({len(prefix)} of 4 bytes)"
        )
    (length,) = struct.unpack(">I", prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the"
            f" {MAX_FRAME_BYTES}-byte protocol limit"
        )
    if length < _HEADER.size:
        raise ProtocolError(f"frame length {length} is below the header size")
    body = sock_file.read(length)
    if len(body) < length:
        raise ProtocolError(
            f"truncated frame body ({len(body)} of {length} bytes)"
        )
    return body
