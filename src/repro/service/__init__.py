"""The multi-tenant top-k query service (base-station deployment).

One process hosts many concurrent :class:`~repro.query.engine.TopKEngine`
sessions over a registry of shared topologies.  The layer splits into:

- :mod:`repro.service.messages` — the wire protocol's message types:
  frozen request/reply dataclasses with exact JSON-lines (v1)
  round-trips;
- :mod:`repro.service.wire` — the negotiated binary protocol (v2):
  length-prefixed struct-packed frames, zero-copy numpy payloads, and
  the same-host shared-memory blob fast path;
- :mod:`repro.service.cache` — :class:`SharedPlanCache`, the
  cross-session pool of compiled parametric LPs and replan-cache
  blocks, keyed by content fingerprint;
- :mod:`repro.service.session` — one tenant's engine plus its
  lifecycle (open → expired/closed) and per-session backpressure;
- :mod:`repro.service.server` — :class:`TopKService` (the sync,
  transport-agnostic core) and the asyncio JSON-lines socket front end;
- :mod:`repro.service.client` — in-process and socket clients behind
  one :class:`SessionHandle` surface, with request pipelining
  (``submit_nowait``/``stream``/``drain``);
- :mod:`repro.service.artifacts` — the cross-process compiled-artifact
  store (mmap-backed directory of spilled parametric forms);
- :mod:`repro.service.shard` — :class:`ShardedService` (N worker
  processes, rendezvous-hash routed) and :class:`ShardedClient`.

The stable entry points are re-exported by :mod:`repro.api`.
"""

from repro.service.artifacts import ArtifactStore, BlobSpool
from repro.service.cache import SharedPlanCache
from repro.service.client import InProcessClient, SessionHandle, SocketClient
from repro.service.server import (
    ServiceConfig,
    ServiceServer,
    ServiceThread,
    TopKService,
    serve,
)
from repro.service.shard import ShardedClient, ShardedService

__all__ = [
    "ArtifactStore",
    "BlobSpool",
    "InProcessClient",
    "ServiceConfig",
    "ServiceServer",
    "ServiceThread",
    "SessionHandle",
    "ShardedClient",
    "ShardedService",
    "SharedPlanCache",
    "SocketClient",
    "TopKService",
    "serve",
]
