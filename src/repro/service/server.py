"""The multi-tenant service core plus its asyncio socket front end.

:class:`TopKService` is deliberately synchronous and
transport-agnostic: :meth:`TopKService.handle` maps one typed request
to one typed reply (raising :mod:`repro.errors` types), and
:meth:`TopKService.handle_line` is the same thing over JSON lines with
failures serialized as :class:`~repro.service.messages.ErrorReply`
and envelope correlation ids echoed verbatim.  The asyncio layer
(:func:`serve`, :class:`ServiceThread`) moves lines between sockets
and a thread-pool executor — per-session serialization and
backpressure live in :class:`.session.Session`, so the core behaves
identically under the in-process client and the socket.

The socket front end is **pipelined**: a per-connection reader task
keeps pulling frames (bounded read-ahead, oversized frames rejected)
while a processor task answers them strictly in order, and replies are
coalesced — many encoded lines are joined into one ``write`` when a
burst is in flight — so a streaming client pays one syscall per batch
rather than one round trip per request.  :meth:`ServiceServer.shutdown`
is the graceful path: stop accepting, stop reading, finish every
already-read request, flush the final replies, then close.

Shared state across tenants:

- a **topology registry** keyed by
  :func:`~repro.plans.serialize.topology_fingerprint` (register once,
  open many sessions against the id);
- one :class:`~repro.service.cache.SharedPlanCache` — every session's
  planner is built with it (via
  :class:`~repro.planners.base.PlannerConfig`), so equal-content
  sessions compile each LP exactly once;
- one optional :class:`~repro.obs.Instrumentation` threaded through
  engines, planners, and the ``service.request`` spans, which is what
  makes ``python -m repro trace --service`` work against a live
  service.

Each session gets its *own* :class:`~repro.obs.EnergyLedger` (energy
attribution is a per-tenant question), surfaced through
:meth:`TopKService.ledger_of`.
"""

from __future__ import annotations

import asyncio
import struct
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    AdmissionError,
    ProtocolError,
    ServiceError,
    ServiceUnavailableError,
    SessionError,
)
from repro.network.energy import EnergyModel
from repro.network.topology import Topology
from repro.obs import EnergyLedger
from repro.obs.distributed import REQUEST_LATENCY_METRIC, SlowRequestLog
from repro.obs.spans import NULL_SPAN, maybe_span
from repro.plans.serialize import plan_to_dict, topology_fingerprint
from repro.planners.base import PlannerConfig
from repro.planners.greedy import GreedyPlanner
from repro.planners.lp_lf import LPLFPlanner
from repro.planners.lp_no_lf import LPNoLFPlanner
from repro.planners.proof import ProofPlanner
from repro.query.engine import EngineConfig, TopKEngine
from repro.service import messages as msg
from repro.service import wire
from repro.service.cache import SharedPlanCache
from repro.service.session import Session

PLANNERS = ("greedy", "lp-lf", "lp-no-lf", "proof")

WIRE_PROTOCOLS = ("v1", "v2", "auto")


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs of the service (admission and caching)."""

    max_sessions: int = 16
    """Admission control: concurrent *open* sessions beyond this are
    refused with :class:`~repro.errors.AdmissionError`."""

    queue_limit: int = 8
    """Per-session pending-request bound; the next request is shed with
    :class:`~repro.errors.OverloadError`."""

    session_ttl_s: float = 300.0
    """Idle seconds after which an open session expires."""

    cache_capacity: int = 32
    """Entries in the shared compiled-plan pool."""

    replan_cache_capacity: int = 16
    """Entries in the shared sample-independent-block cache."""

    ledger_capacity_mj: float | None = None
    """Optional per-node battery capacity for each session's
    :class:`~repro.obs.EnergyLedger` (enables lifetime projection)."""

    artifact_dir: str | None = None
    """Optional directory for the cross-process compiled-artifact
    store (:class:`~repro.service.artifacts.ArtifactStore`): compiled
    parametric forms spill here keyed by content, so a cold process
    (a fresh shard worker, say) loads arrays instead of recompiling."""

    protocol: str = "auto"
    """Wire protocols the socket front end accepts: ``"auto"`` speaks
    whichever a connection opens with (binary v2 hello or JSON v1
    line), ``"v1"`` ignores v2 hellos (an old server), ``"v2"``
    refuses JSON connections with a typed
    :class:`~repro.errors.ProtocolError`."""

    blob_dir: str | None = None
    """Optional directory for the v2 same-host shared-memory fast
    path: advertised to v2 clients at accept time, who may then ship
    large float payloads as :class:`~repro.service.artifacts.BlobSpool`
    references instead of socket bytes."""

    def __post_init__(self) -> None:
        if self.protocol not in WIRE_PROTOCOLS:
            raise ServiceError(
                f"unknown wire protocol {self.protocol!r}; choose from"
                f" {', '.join(WIRE_PROTOCOLS)}"
            )


class TopKService:
    """Hosts many concurrent :class:`~repro.query.engine.TopKEngine`
    sessions over shared topologies and caches.

    Parameters
    ----------
    config:
        A :class:`ServiceConfig` (defaults are test-friendly).
    energy:
        Energy model shared by all sessions (default mica2).
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; request spans,
        cache counters, and every engine's telemetry land in it.
    clock:
        Monotonic seconds source for idle expiry (default
        ``time.monotonic``); injectable so expiry tests are exact.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        energy: EnergyModel | None = None,
        instrumentation=None,
        clock=None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.energy = energy or EnergyModel.mica2()
        self.instrumentation = instrumentation
        self.clock = clock or time.monotonic
        artifacts = None
        if self.config.artifact_dir is not None:
            from repro.service.artifacts import ArtifactStore

            artifacts = ArtifactStore(
                self.config.artifact_dir, instrumentation=instrumentation
            )
        self.cache = SharedPlanCache(
            capacity=self.config.cache_capacity,
            replan_capacity=self.config.replan_cache_capacity,
            instrumentation=instrumentation,
            artifacts=artifacts,
        )
        self._topologies: dict[str, Topology] = {}
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()
        self._session_seq = 0
        self._draining = False
        self.sessions_total = 0
        self._started_s = self.clock()
        self.slow_requests = SlowRequestLog()
        self._wire_lock = threading.Lock()
        self._wire = {
            "connections": {"v1": 0, "v2": 0},
            "requests": {"v1": 0, "v2": 0},
            "request_bytes": {"v1": 0, "v2": 0},
            "reply_bytes": {"v1": 0, "v2": 0},
        }

    # -- shared resources ----------------------------------------------
    def register_topology(self, parents) -> str:
        """Install a topology; returns its content id (idempotent)."""
        topology = Topology([int(p) for p in parents])
        topology_id = topology_fingerprint(topology)
        with self._lock:
            self._topologies.setdefault(topology_id, topology)
        return topology_id

    def topology(self, topology_id: str) -> Topology:
        try:
            return self._topologies[topology_id]
        except KeyError:
            raise ServiceError(
                f"unknown topology {topology_id!r}; register it first"
            ) from None

    def _make_planner(self, name: str):
        """A fresh planner wired into the shared cache pool."""
        shared = PlannerConfig(
            replan_cache=self.cache.replan_cache, form_cache=self.cache
        )
        if name == "lp-lf":
            return LPLFPlanner(config=shared)
        if name == "lp-no-lf":
            return LPNoLFPlanner(config=shared)
        if name == "greedy":
            return GreedyPlanner()
        if name == "proof":
            return ProofPlanner()
        raise ServiceError(
            f"unknown planner {name!r}; available: {', '.join(PLANNERS)}"
        )

    # -- session lifecycle ---------------------------------------------
    def _expire_idle(self) -> None:
        now = self.clock()
        for session in self._sessions.values():
            if session.expire_if_idle(now, self.config.session_ttl_s):
                if self.instrumentation is not None:
                    self.instrumentation.counter(
                        "service.sessions_expired"
                    ).inc()
                    self.instrumentation.event(
                        "session_expired",
                        session_id=session.session_id,
                        idle_s=session.idle_seconds(now),
                    )

    def begin_drain(self) -> None:
        """Flip the service into graceful-shutdown mode.

        New sessions are refused and existing sessions stop accepting
        new work (both with :class:`~repro.errors.ServiceUnavailableError`,
        which clients treat as retry-elsewhere); requests already
        admitted keep running to completion, and ``close_session`` /
        ``get_stats`` stay available so clients can wind down cleanly.
        """
        with self._lock:
            self._draining = True
            for session in self._sessions.values():
                session.begin_drain()

    def open_session(self, request: msg.OpenSession) -> Session:
        topology = self.topology(request.topology_id)
        planner = self._make_planner(request.planner)
        with self._lock:
            if self._draining:
                raise ServiceUnavailableError(
                    "service is draining for shutdown; no new sessions"
                )
            self._expire_idle()
            open_now = sum(
                1 for s in self._sessions.values() if s.is_open
            )
            if open_now >= self.config.max_sessions:
                raise AdmissionError(
                    f"service at capacity ({open_now} open sessions,"
                    f" limit {self.config.max_sessions}); retry after"
                    " closing one"
                )
            self._session_seq += 1
            self.sessions_total += 1
            session_id = f"s{self._session_seq:04d}"
            engine = TopKEngine(
                topology,
                self.energy,
                k=request.k,
                planner=planner,
                config=EngineConfig(
                    budget_mj=request.budget_mj,
                    window_capacity=request.window_capacity,
                    replan_every=request.replan_every,
                    track_truth=request.track_truth,
                ),
                rng=np.random.default_rng(self._session_seq),
                instrumentation=self.instrumentation,
                ledger=EnergyLedger(
                    topology.n,
                    capacity_mj=self.config.ledger_capacity_mj,
                ),
            )
            session = Session(
                session_id,
                request.topology_id,
                engine,
                queue_limit=self.config.queue_limit,
                clock=self.clock,
            )
            self._sessions[session_id] = session
        if self.instrumentation is not None:
            self.instrumentation.counter("service.sessions_opened").inc()
        return session

    def session(self, session_id: str) -> Session:
        with self._lock:
            self._expire_idle()
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown session {session_id!r}")
        session.ensure_open()
        return session

    def ledger_of(self, session_id: str) -> EnergyLedger:
        """The per-session energy ledger (open or closed sessions)."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"unknown session {session_id!r}")
        return session.engine.ledger

    @property
    def open_sessions(self) -> int:
        with self._lock:
            return sum(1 for s in self._sessions.values() if s.is_open)

    # -- request handling ----------------------------------------------
    def handle(self, request: msg.Message, *, trace=None) -> msg.Message:
        """One typed request to one typed reply (typed errors raised).

        ``trace`` is an optional
        :class:`~repro.obs.distributed.TraceContext` decoded off the
        wire; when present the request span is annotated with it, which
        stitches this process's ``service.request`` subtree (plan →
        compile → solve and all) into the caller's distributed trace.
        """
        if request.kind not in msg.REQUEST_KINDS:
            raise ServiceError(
                f"{request.kind!r} is a reply kind, not a request"
            )
        obs = self.instrumentation
        if obs is not None:
            obs.counter("service.requests").inc()
            obs.counter(f"service.requests.{request.kind}").inc()
        span = maybe_span(
            obs, "service.request", kind=request.kind,
            session=getattr(request, "session_id", None),
        )
        if trace is not None and span is not NULL_SPAN:
            span.annotate(
                trace_id=trace.trace_id,
                parent_span_id=trace.parent_span_id,
            )
        try:
            with span:
                try:
                    return self._dispatch(request)
                except Exception as err:
                    if obs is not None:
                        obs.counter(
                            f"service.errors.{type(err).__name__}"
                        ).inc()
                    raise
        finally:
            if obs is not None:
                obs.histogram(REQUEST_LATENCY_METRIC).observe(
                    span.duration_s
                )
                self.slow_requests.offer(span)

    def handle_line(self, line: str) -> str:
        """JSON-line transport shim over :meth:`handle`.

        Every failure — protocol or application — comes back as one
        encoded :class:`~repro.service.messages.ErrorReply` line, so a
        socket client never sees a dropped request.  An envelope
        correlation id on the request is echoed on the reply (errors
        included), which is the contract pipelined clients rely on.
        """
        cid = None
        try:
            request, cid, trace = msg.decode_envelope_trace(line)
            reply = self.handle(request, trace=trace)
        except Exception as err:  # typed errors included
            reply = msg.error_to_reply(err)
        return msg.encode(reply, cid=cid)

    def handle_frame(self, body: bytes, spool=None) -> bytes:
        """Binary v2 transport shim over :meth:`handle`.

        The framed analog of :meth:`handle_line`: one frame body in,
        one complete reply frame (length prefix included) out, with
        every failure serialized as an
        :class:`~repro.service.messages.ErrorReply` frame and the
        request's correlation id echoed when it was decodable.  Float
        payloads are decoded in zero-copy ``vectors="array"`` mode —
        the data plane never materializes tuples for a batch's
        readings matrix.
        """
        cid = None
        try:
            request, cid, trace = wire.decode_frame_trace(
                body, vectors="array", spool=spool
            )
            reply = self.handle(request, trace=trace)
        except Exception as err:  # typed errors included
            reply = msg.error_to_reply(err)
        try:
            return wire.encode_frame(reply, cid=cid, spool=spool)
        except ProtocolError as err:  # reply exceeds the frame bound
            return wire.encode_frame(msg.error_to_reply(err), cid=cid)

    # -- wire accounting ------------------------------------------------
    def record_connection(self, protocol: str) -> None:
        """Count one socket connection's negotiated protocol version."""
        with self._wire_lock:
            self._wire["connections"][protocol] += 1
        if self.instrumentation is not None:
            self.instrumentation.counter(
                f"service.wire.connections.{protocol}"
            ).inc()

    def record_wire(
        self, protocol: str, request_bytes: int, reply_bytes: int
    ) -> None:
        """Account one request/reply exchange's bytes on the wire."""
        with self._wire_lock:
            self._wire["requests"][protocol] += 1
            self._wire["request_bytes"][protocol] += request_bytes
            self._wire["reply_bytes"][protocol] += reply_bytes
        obs = self.instrumentation
        if obs is not None:
            obs.histogram(
                f"service.wire.request_bytes.{protocol}"
            ).observe(request_bytes)
            obs.histogram(
                f"service.wire.reply_bytes.{protocol}"
            ).observe(reply_bytes)

    def wire_stats(self) -> dict:
        """Per-protocol connection counts and bytes-per-request summary
        (the ``counters["wire"]`` section of :class:`GetStats`)."""
        with self._wire_lock:
            snapshot = {
                name: dict(values) for name, values in self._wire.items()
            }
        snapshot["bytes_per_request"] = {}
        for protocol in ("v1", "v2"):
            requests = snapshot["requests"][protocol]
            snapshot["bytes_per_request"][protocol] = (
                round(
                    (
                        snapshot["request_bytes"][protocol]
                        + snapshot["reply_bytes"][protocol]
                    )
                    / requests,
                    1,
                )
                if requests
                else None
            )
        return snapshot

    def blob_counters(self) -> dict:
        """The ``service.blobs.*`` counter values (shared-memory spool
        outcomes), keyed by outcome suffix; empty when uninstrumented."""
        obs = self.instrumentation
        if obs is None:
            return {}
        prefix = "service.blobs."
        return {
            name[len(prefix):]: counter.value
            for name, counter in obs.metrics.counters.items()
            if name.startswith(prefix)
        }

    def _histogram_merge_dumps(self) -> dict:
        """Mergeable dumps of every ``service.*`` histogram (request
        latency, per-protocol wire bytes): the stats-reply form shard
        aggregation merges with exact min/max and bucket quantiles."""
        obs = self.instrumentation
        if obs is None:
            return {}
        return {
            name: hist.to_merge_dict()
            for name, hist in obs.metrics.histograms.items()
            if name.startswith("service.")
        }

    def telemetry_snapshot(self) -> dict:
        """One self-describing telemetry snapshot of this process.

        The unit the distributed plane is built from: shard workers
        ship it over their parent Pipe into a
        :class:`~repro.obs.distributed.TelemetryAggregator`, which
        tags it by shard, derives qps from successive snapshots, and
        merges the histogram dumps into fleet quantiles.  ``ts`` is
        wall-clock (comparable across same-host processes); span
        ``start_s`` values are the shared monotonic clock, so merged
        Chrome traces align across lanes.
        """
        obs = self.instrumentation
        with self._lock:
            self._expire_idle()
            open_now = sum(1 for s in self._sessions.values() if s.is_open)
            handled = sum(
                s.requests_handled for s in self._sessions.values()
            )
            shed = sum(s.requests_shed for s in self._sessions.values())
            energy = sum(
                float(s.engine.total_energy_mj)
                for s in self._sessions.values()
            )
        if obs is not None:
            # session counters miss sessionless requests (stats, plan
            # registration); the service counter sees every dispatch
            handled = obs.metrics.counter("service.requests").value
        return {
            "shard": "0",
            "ts": time.time(),
            "uptime_s": self.clock() - self._started_s,
            "sessions_open": open_now,
            "sessions_total": self.sessions_total,
            "requests_handled": handled,
            "requests_shed": shed,
            "cache": self.cache.stats(),
            "wire": self.wire_stats(),
            "blobs": self.blob_counters(),
            "energy_mj": energy,
            "metrics": (
                obs.metrics.to_dict()
                if obs is not None
                else {"counters": {}, "gauges": {}, "histograms": {}}
            ),
            "spans": (
                obs.spans.to_dict()
                if obs is not None
                else {"capacity": 0, "mode": "block", "dropped": 0,
                      "roots": []}
            ),
            "exemplars": self.slow_requests.to_dicts(),
        }

    def _dispatch(self, request: msg.Message) -> msg.Message:
        if isinstance(request, msg.RegisterTopology):
            topology_id = self.register_topology(request.parents)
            return msg.TopologyRegistered(
                topology_id=topology_id,
                num_nodes=self.topology(topology_id).n,
            )
        if isinstance(request, msg.OpenSession):
            session = self.open_session(request)
            return msg.SessionOpened(
                session_id=session.session_id,
                topology_id=session.topology_id,
                planner=request.planner,
            )
        if isinstance(request, msg.GetStats):
            return self._stats_reply()
        # everything below addresses one session
        session = self.session(request.session_id)
        if isinstance(request, msg.CloseSession):
            with session.slot(final=True) as engine:
                session.close()
                return msg.SessionClosed(
                    session_id=session.session_id,
                    epochs=engine.epoch,
                    total_energy_mj=engine.total_energy_mj,
                )
        with session.slot() as engine:
            if isinstance(request, msg.FeedSample):
                engine.feed_sample(np.asarray(request.readings, dtype=float))
                return msg.SampleAccepted(
                    session_id=session.session_id,
                    window_size=len(engine.window),
                )
            if isinstance(request, msg.SubmitQuery):
                result = engine.query(
                    np.asarray(request.readings, dtype=float)
                )
                return msg.QueryReply(
                    session_id=session.session_id,
                    nodes=tuple(int(n) for __, n in result.returned),
                    values=tuple(float(v) for v, __ in result.returned),
                    energy_mj=float(result.energy_mj),
                    accuracy=_json_accuracy(result.accuracy),
                )
            if isinstance(request, msg.SubmitBatch):
                result = engine.query_batch(
                    np.asarray(request.readings, dtype=float)
                )
                return msg.BatchReply(
                    session_id=session.session_id,
                    nodes=result.nodes,
                    values=result.values,
                    energies=result.energies,
                    accuracies=tuple(
                        _json_accuracy(score)
                        for score in result.accuracies
                    ),
                )
            if isinstance(request, msg.StepEpoch):
                outcome = engine.step(
                    np.asarray(request.readings, dtype=float)
                )
                result = outcome.result
                return msg.StepReply(
                    session_id=session.session_id,
                    epoch=outcome.epoch,
                    action=outcome.action,
                    energy_mj=float(outcome.energy_mj),
                    nodes=tuple(
                        int(n) for __, n in result.returned
                    ) if result is not None else (),
                    values=tuple(
                        float(v) for v, __ in result.returned
                    ) if result is not None else (),
                    accuracy=_json_accuracy(result.accuracy)
                    if result is not None else None,
                )
            if isinstance(request, msg.GetPlan):
                return msg.PlanReply(
                    session_id=session.session_id,
                    plan=plan_to_dict(engine.ensure_plan()),
                )
        raise ServiceError(
            f"request kind {request.kind!r} has no handler"
        )  # pragma: no cover - REQUEST_KINDS keeps this unreachable

    def _stats_reply(self) -> msg.StatsReply:
        with self._lock:
            self._expire_idle()
            open_now = sum(1 for s in self._sessions.values() if s.is_open)
            per_state: dict[str, int] = {}
            shed = 0
            handled = 0
            for session in self._sessions.values():
                per_state[session.state] = per_state.get(session.state, 0) + 1
                shed += session.requests_shed
                handled += session.requests_handled
            counters = {
                "cache": self.cache.stats(),
                "sessions_by_state": per_state,
                "requests_handled": handled,
                "requests_shed": shed,
                "wire": self.wire_stats(),
                "blobs": self.blob_counters(),
                "histograms": self._histogram_merge_dumps(),
            }
            return msg.StatsReply(
                sessions_open=open_now,
                sessions_total=self.sessions_total,
                topologies=len(self._topologies),
                counters=counters,
            )


def _json_accuracy(value: float) -> float | None:
    """NaN (truth untracked) maps to None; JSON has no NaN."""
    value = float(value)
    return None if np.isnan(value) else value


# -- asyncio socket front end ----------------------------------------------

PIPELINE_DEPTH = 256
"""Per-connection read-ahead bound: frames decoded but not yet
answered.  Past this the reader stops pulling from the socket, so a
client pipelining faster than the service executes sees TCP
backpressure instead of unbounded server memory."""

COALESCE_REPLIES = 64
"""Replies buffered into one ``write`` before an explicit flush while
a pipelined burst is still in flight (the ``writev``-style batch)."""


class _ReaderFailure:
    """End-of-input marker carrying the wire error to report before
    closing (oversized v1 line, malformed v2 frame, refused protocol)."""

    def __init__(self, error: Exception) -> None:
        self.error = error


class _Connection:
    """One client connection: a reader task feeding a processor task.

    The reader's first ``readline`` doubles as protocol negotiation: a
    ``\\x00``-led v2 hello switches the connection to length-prefixed
    binary framing (after an accept line), anything else is a v1 JSON
    line handled exactly as before — subject to the server's
    ``policy`` (``auto``/``v1``/``v2``).  From then on the reader
    pulls frames into a bounded queue; the processor answers them
    strictly in order (the sync core on the default executor, so a
    slow LP solve never blocks the event loop) and coalesces reply
    writes while a burst is in flight.  Fairness *between* sessions
    comes from the per-session locks, and overload is shed there too.

    ``begin_drain`` stops the reader; the processor then finishes the
    frames already read, flushes their replies, and closes — the clean
    half of :meth:`ServiceServer.shutdown`.
    """

    def __init__(
        self, service, reader, writer, *, policy: str = "auto", spool=None
    ) -> None:
        self.service = service
        self.reader = reader
        self.writer = writer
        self.policy = policy
        self.spool = spool
        self.protocol: str | None = None  # negotiated per connection
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=PIPELINE_DEPTH)
        self._reader_task: asyncio.Task | None = None
        self.done: asyncio.Task | None = None

    def start(self) -> None:
        self._reader_task = asyncio.create_task(self._read_loop())
        self.done = asyncio.create_task(self._process_loop())

    def begin_drain(self) -> None:
        """Stop reading new frames; queued ones still get replies."""
        if self._reader_task is not None:
            self._reader_task.cancel()

    async def _read_loop(self) -> None:
        failure: Exception | None = None
        try:
            try:
                failure = await self._negotiate_and_read()
            except (ConnectionError, OSError):
                pass
        except asyncio.CancelledError:
            pass  # drain: deliver the end-of-input marker below
        finally:
            await self._signal_end(failure)

    async def _negotiate_and_read(self) -> Exception | None:
        """Settle the connection's protocol, then run its read loop.

        Returns the wire error to report before closing, or ``None``
        for a clean end of input.
        """
        try:
            first = await self.reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            self.protocol = "v1"
            return self._oversized_error()
        if not first:
            self.protocol = "v1"  # EOF before a single byte mattered
            return None
        if wire.is_negotiation_line(first) and self.policy != "v1":
            try:
                wire.parse_hello(first)
            except ProtocolError as err:
                self.protocol = "v1"  # reply readable either way
                return err
            self.protocol = "v2"
            self.service.record_connection("v2")
            blob_dir = (
                str(self.spool.root) if self.spool is not None else None
            )
            self.writer.write(wire.accept_line(blob_dir))
            await self.writer.drain()
            return await self._v2_loop()
        if not wire.is_negotiation_line(first) and self.policy == "v2":
            self.protocol = "v1"
            return ProtocolError(
                "server requires wire protocol v2; connect with"
                " protocol='v2' (or 'auto')"
            )
        # v1 — either a plain JSON opening, or a hello at a v1-only
        # server, which answers it like any other unparseable line
        self.protocol = "v1"
        self.service.record_connection("v1")
        await self._queue.put(first)
        return await self._v1_loop()

    @staticmethod
    def _oversized_error() -> ServiceError:
        return ServiceError(
            "frame exceeds the"
            f" {msg.MAX_FRAME_BYTES}-byte protocol limit"
        )

    async def _v1_loop(self) -> Exception | None:
        while True:
            try:
                line = await self.reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                return self._oversized_error()
            if not line:
                return None
            await self._queue.put(line)

    async def _v2_loop(self) -> Exception | None:
        while True:
            try:
                prefix = await self.reader.readexactly(4)
            except asyncio.IncompleteReadError as err:
                if not err.partial:
                    return None  # clean EOF between frames
                return ProtocolError(
                    "truncated frame length prefix"
                    f" ({len(err.partial)} of 4 bytes)"
                )
            (length,) = struct.unpack(">I", prefix)
            if length > msg.MAX_FRAME_BYTES:
                return ProtocolError(
                    f"frame of {length} bytes exceeds the"
                    f" {msg.MAX_FRAME_BYTES}-byte protocol limit"
                )
            if length < 10:  # the "<BBQ" header
                return ProtocolError(
                    f"frame length {length} is below the header size"
                )
            try:
                body = await self.reader.readexactly(length)
            except asyncio.IncompleteReadError as err:
                return ProtocolError(
                    f"truncated frame body ({len(err.partial)} of"
                    f" {length} bytes)"
                )
            await self._queue.put(body)

    async def _signal_end(self, failure: Exception | None) -> None:
        # the queue may be momentarily full; the processor is draining
        # it, so yield until the end marker fits
        marker = (
            _END_OF_INPUT if failure is None else _ReaderFailure(failure)
        )
        while True:
            try:
                self._queue.put_nowait(marker)
                return
            except asyncio.QueueFull:
                await asyncio.sleep(0)

    def _handle_batch(self, frames: list[bytes]) -> list[bytes]:
        """Answer a chunk of frames in one executor hop (in order)."""
        service = self.service
        out = []
        if self.protocol == "v2":
            for frame in frames:
                reply = service.handle_frame(frame, spool=self.spool)
                service.record_wire("v2", len(frame) + 4, len(reply))
                out.append(reply)
            return out
        for line in frames:
            reply = service.handle_line(line.decode()).encode() + b"\n"
            service.record_wire("v1", len(line), len(reply))
            out.append(reply)
        return out

    def _encode_failure(self, error: Exception) -> bytes:
        """The final error reply, framed for the negotiated protocol."""
        reply = msg.error_to_reply(error)
        if self.protocol == "v2":
            return wire.encode_frame(reply)
        return msg.encode(reply).encode() + b"\n"

    async def _process_loop(self) -> None:
        loop = asyncio.get_running_loop()
        out: list[bytes] = []
        stop = False
        failure: _ReaderFailure | None = None
        try:
            while not stop:
                item = await self._queue.get()
                # chunk whatever the reader has already queued: a
                # pipelined burst pays one executor dispatch per chunk
                # instead of one per frame
                batch: list[bytes] = []
                while True:
                    if item is _END_OF_INPUT:
                        stop = True
                        break
                    if isinstance(item, _ReaderFailure):
                        stop = True
                        failure = item
                        break
                    batch.append(item)
                    if len(batch) >= COALESCE_REPLIES:
                        break
                    try:
                        item = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                if batch:
                    out.extend(
                        await loop.run_in_executor(
                            None, self._handle_batch, batch
                        )
                    )
                if stop and failure is not None:
                    out.append(self._encode_failure(failure.error))
                if out and (
                    stop
                    or self._queue.empty()
                    or len(out) >= COALESCE_REPLIES
                ):
                    self.writer.write(b"".join(out))
                    out.clear()
                    await self.writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - peer gone
            out.clear()
        finally:
            if self._reader_task is not None:
                self._reader_task.cancel()
            try:
                if out:
                    self.writer.write(b"".join(out))
                self.writer.close()
                await self.writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


_END_OF_INPUT = object()


class ServiceServer:
    """The listening socket front end, with a graceful shutdown path.

    Duck-compatible with the ``asyncio.Server`` it wraps for the uses
    the code base grew around (``sockets``, ``serve_forever``, ``async
    with``); adds connection tracking and :meth:`shutdown`.
    """

    def __init__(self, service: TopKService) -> None:
        self.service = service
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[_Connection] = set()
        self._spool = None
        blob_dir = getattr(service.config, "blob_dir", None)
        if blob_dir is not None:
            from repro.service.artifacts import BlobSpool

            self._spool = BlobSpool(
                blob_dir, instrumentation=service.instrumentation
            )

    async def start(self, host: str, port: int) -> "ServiceServer":
        self._server = await asyncio.start_server(
            self._on_connection, host, port,
            limit=msg.MAX_FRAME_BYTES + 1024,
        )
        return self

    async def _on_connection(self, reader, writer) -> None:
        connection = _Connection(
            self.service,
            reader,
            writer,
            policy=getattr(self.service.config, "protocol", "auto"),
            spool=self._spool,
        )
        self._connections.add(connection)
        connection.start()
        try:
            await connection.done
        finally:
            self._connections.discard(connection)

    @property
    def sockets(self):
        return self._server.sockets

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    def close(self) -> None:
        self._server.close()

    async def wait_closed(self) -> None:
        await self._server.wait_closed()

    async def shutdown(self, grace_seconds: float = 5.0) -> None:
        """Drain and stop: the clean SIGTERM path.

        Stops accepting connections, flips the service into draining
        mode (new work refused with
        :class:`~repro.errors.ServiceUnavailableError`), stops every
        connection's reader, and gives in-flight requests
        ``grace_seconds`` to finish and flush their final replies
        before force-closing whatever is left.
        """
        self.service.begin_drain()
        self._server.close()
        connections = list(self._connections)
        for connection in connections:
            connection.begin_drain()
        pending = [c.done for c in connections if c.done is not None]
        if pending:
            __, unfinished = await asyncio.wait(
                pending, timeout=grace_seconds
            )
            for task in unfinished:  # grace expired: force-close
                task.cancel()
            if unfinished:
                await asyncio.wait(unfinished, timeout=1.0)
        await self._server.wait_closed()

    async def __aenter__(self) -> "ServiceServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()
        await self.wait_closed()


async def serve(
    service: TopKService, host: str = "127.0.0.1", port: int = 0
) -> ServiceServer:
    """Start the JSON-lines socket server; returns a
    :class:`ServiceServer` (its bound port is
    ``server.sockets[0].getsockname()[1]``)."""
    return await ServiceServer(service).start(host, port)


class ServiceThread:
    """A live socket service on a background thread (context manager).

    ::

        with ServiceThread(TopKService()) as live:
            client = SocketClient(live.host, live.port)

    The event loop, server, and executor all live on the thread;
    ``__exit__`` stops the loop and joins it.
    """

    def __init__(
        self,
        service: TopKService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        grace_seconds: float = 5.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.grace_seconds = grace_seconds
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._server: ServiceServer | None = None
        self._thread: threading.Thread | None = None

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self._server = await serve(self.service, self.host, self.port)
        except OSError as err:
            self._startup_error = err
            self._ready.set()
            return
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready.set()
        await self._stop.wait()
        await self._server.shutdown(self.grace_seconds)

    def shutdown(self, grace_seconds: float | None = None) -> None:
        """Gracefully stop the live server from any thread (idempotent)."""
        if grace_seconds is not None:
            self.grace_seconds = grace_seconds
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already finished (second call)
                pass

    def __enter__(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._startup_error is not None:
            raise ServiceError(
                f"service failed to bind {self.host}:{self.port}:"
                f" {self._startup_error}"
            )
        if not self._ready.is_set():  # pragma: no cover - defensive
            raise ServiceError("service thread failed to start in time")
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
