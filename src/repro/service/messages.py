"""The service wire protocol: typed requests/replies over JSON lines.

Every message is a frozen dataclass with a class-level ``kind`` tag;
:func:`encode` writes one JSON line and :func:`decode` rehydrates the
exact same value (``decode(encode(m)) == m``, property-tested).  To
keep that round-trip exact, sequence fields are tuples (JSON lists
normalize back on decode) and optional accuracies use ``None`` rather
than NaN (JSON has no NaN).

Plan payloads ride as the plain dicts produced by
:func:`repro.plans.serialize.plan_to_dict`, so a reply's plan can be
fed straight to :func:`~repro.plans.serialize.plan_from_dict` or
archived as-is.

Failures cross the wire as :class:`ErrorReply` carrying the exception
*class name* from :mod:`repro.errors`; clients re-raise the matching
typed error (see :func:`error_from_reply`).

**Pipelining envelope.** Correlation ids live at the *envelope* level,
not in the messages: :func:`encode` accepts an optional ``cid`` that
rides as a top-level ``"cid"`` JSON key, and :func:`decode_envelope`
returns ``(message, cid)``.  A server echoes a request's cid on its
reply verbatim, which is what lets a pipelined client fire many frames
without awaiting each reply and still match replies to requests.
Messages themselves stay cid-free, so ``decode(encode(m)) == m`` keeps
holding and old peers interoperate (an absent cid is simply ``None``).

**Frame bound.** :data:`MAX_FRAME_BYTES` caps one encoded line;
:func:`decode` (and the socket server's read limit) reject oversized
frames with a typed :class:`~repro.errors.ServiceError` instead of
buffering without bound.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import ClassVar

import repro.errors as _errors
from repro.errors import ObservabilityError, ServiceError

MAX_FRAME_BYTES = 1_048_576
"""Upper bound on one encoded JSON-lines frame (1 MiB).

Large enough for any realistic readings vector or serialized plan,
small enough that a misbehaving peer cannot make the server buffer an
unbounded line.  Both :func:`decode` and the asyncio front end's
stream limit enforce it.
"""


def _tuplify(message, *names) -> None:
    """Normalize list-valued fields (JSON's sequence type) to tuples so
    decoded messages compare equal to the originals."""
    for name in names:
        value = getattr(message, name)
        if isinstance(value, list):
            object.__setattr__(message, name, tuple(value))


def _tuplify_nested(message, *names) -> None:
    """Like :func:`_tuplify` but one level deeper, for matrix-shaped
    fields (tuples of row tuples).  Numpy arrays pass through untouched:
    the binary codec packs them zero-copy, and the JSON codec's
    ``to_dict`` converts them on the way out."""
    for name in names:
        value = getattr(message, name)
        if isinstance(value, (list, tuple)):
            object.__setattr__(
                message,
                name,
                tuple(
                    tuple(row) if isinstance(row, list) else row
                    for row in value
                ),
            )


@dataclass(frozen=True)
class Message:
    """Base: ``kind`` discriminator plus dict/JSON conversion."""

    kind: ClassVar[str]

    def to_dict(self) -> dict:
        data = {"kind": self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = [
                    list(row) if isinstance(row, tuple) else row
                    for row in value
                ]
            elif hasattr(value, "tolist"):  # numpy payloads, JSON path
                value = value.tolist()
            data[spec.name] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Message":
        payload = {k: v for k, v in data.items() if k != "kind"}
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ServiceError(
                f"unknown field(s) {sorted(unknown)} for message kind"
                f" {cls.kind!r}"
            )
        return cls(**payload)


# -- requests ---------------------------------------------------------------


@dataclass(frozen=True)
class RegisterTopology(Message):
    """Install a topology (by parents vector) into the service registry.

    Idempotent: the reply's ``topology_id`` is the content fingerprint
    (:func:`repro.plans.serialize.topology_fingerprint`), so the same
    tree registers to the same id from any client.
    """

    kind: ClassVar[str] = "register_topology"
    parents: tuple = ()

    def __post_init__(self) -> None:
        _tuplify(self, "parents")


@dataclass(frozen=True)
class OpenSession(Message):
    """Create one tenant session on a registered topology."""

    kind: ClassVar[str] = "open_session"
    topology_id: str = ""
    k: int = 5
    planner: str = "lp-lf"
    budget_mj: float = 500.0
    window_capacity: int = 25
    replan_every: int = 10
    track_truth: bool = True


@dataclass(frozen=True)
class FeedSample(Message):
    """Add one full-network sample to the session's window."""

    kind: ClassVar[str] = "feed_sample"
    session_id: str = ""
    readings: tuple = ()

    def __post_init__(self) -> None:
        _tuplify(self, "readings")


@dataclass(frozen=True)
class SubmitQuery(Message):
    """Execute the session's installed plan on this epoch's readings."""

    kind: ClassVar[str] = "submit_query"
    session_id: str = ""
    readings: tuple = ()

    def __post_init__(self) -> None:
        _tuplify(self, "readings")


@dataclass(frozen=True)
class StepEpoch(Message):
    """One explore/exploit epoch (the engine decides sample vs query)."""

    kind: ClassVar[str] = "step_epoch"
    session_id: str = ""
    readings: tuple = ()

    def __post_init__(self) -> None:
        _tuplify(self, "readings")


@dataclass(frozen=True)
class SubmitBatch(Message):
    """Execute the installed plan on many epochs' readings at once.

    ``readings`` is a ``(B, n)`` matrix (tuple of row tuples, or a
    numpy array on the binary codec's zero-copy path).  The server
    answers with one :class:`BatchReply` whose rows are *bitwise
    identical* to the :class:`QueryReply` stream the same ``B``
    :class:`SubmitQuery` frames would have produced — batching changes
    the framing and the executor (one vectorized pass instead of ``B``
    scalar walks), never the answers.
    """

    kind: ClassVar[str] = "submit_batch"
    session_id: str = ""
    readings: tuple = ()

    def __post_init__(self) -> None:
        _tuplify_nested(self, "readings")


@dataclass(frozen=True)
class GetPlan(Message):
    """Fetch the session's installed plan (planning it if needed)."""

    kind: ClassVar[str] = "get_plan"
    session_id: str = ""


@dataclass(frozen=True)
class CloseSession(Message):
    kind: ClassVar[str] = "close_session"
    session_id: str = ""


@dataclass(frozen=True)
class GetStats(Message):
    """Service-wide stats: sessions, cache counters, energy headlines."""

    kind: ClassVar[str] = "get_stats"


# -- replies ----------------------------------------------------------------


@dataclass(frozen=True)
class TopologyRegistered(Message):
    kind: ClassVar[str] = "topology_registered"
    topology_id: str = ""
    num_nodes: int = 0


@dataclass(frozen=True)
class SessionOpened(Message):
    kind: ClassVar[str] = "session_opened"
    session_id: str = ""
    topology_id: str = ""
    planner: str = ""


@dataclass(frozen=True)
class SampleAccepted(Message):
    kind: ClassVar[str] = "sample_accepted"
    session_id: str = ""
    window_size: int = 0


@dataclass(frozen=True)
class QueryReply(Message):
    """The approximate top-k answer of one query execution.

    ``accuracy`` is ``None`` when the session does not track ground
    truth (never NaN: JSON would not round-trip it).
    """

    kind: ClassVar[str] = "query_reply"
    session_id: str = ""
    nodes: tuple = ()
    values: tuple = ()
    energy_mj: float = 0.0
    accuracy: float | None = None

    def __post_init__(self) -> None:
        _tuplify(self, "nodes", "values")


@dataclass(frozen=True)
class StepReply(Message):
    """Outcome of one engine epoch; ``nodes``/``values`` are empty when
    the epoch sampled instead of querying."""

    kind: ClassVar[str] = "step_reply"
    session_id: str = ""
    epoch: int = 0
    action: str = ""
    energy_mj: float = 0.0
    nodes: tuple = ()
    values: tuple = ()
    accuracy: float | None = None

    def __post_init__(self) -> None:
        _tuplify(self, "nodes", "values")


@dataclass(frozen=True)
class BatchReply(Message):
    """Per-epoch answers of one :class:`SubmitBatch` execution.

    Row ``i`` of ``nodes``/``values`` plus ``energies[i]`` and
    ``accuracies[i]`` is exactly what ``SubmitQuery`` on row ``i``
    would have returned; ``accuracies`` elements are ``None`` when the
    session does not track ground truth.
    """

    kind: ClassVar[str] = "batch_reply"
    session_id: str = ""
    nodes: tuple = ()
    values: tuple = ()
    energies: tuple = ()
    accuracies: tuple = ()

    def __post_init__(self) -> None:
        _tuplify_nested(self, "nodes", "values")
        _tuplify(self, "energies", "accuracies")


@dataclass(frozen=True)
class PlanReply(Message):
    """The installed plan as a :mod:`repro.plans.serialize` payload."""

    kind: ClassVar[str] = "plan_reply"
    session_id: str = ""
    plan: dict | None = None


@dataclass(frozen=True)
class SessionClosed(Message):
    kind: ClassVar[str] = "session_closed"
    session_id: str = ""
    epochs: int = 0
    total_energy_mj: float = 0.0


@dataclass(frozen=True)
class StatsReply(Message):
    kind: ClassVar[str] = "stats_reply"
    sessions_open: int = 0
    sessions_total: int = 0
    topologies: int = 0
    counters: dict | None = None


@dataclass(frozen=True)
class ErrorReply(Message):
    """A typed failure: ``error`` names a :mod:`repro.errors` class."""

    kind: ClassVar[str] = "error"
    error: str = "ServiceError"
    message: str = ""


_MESSAGE_TYPES: tuple[type[Message], ...] = (
    RegisterTopology,
    OpenSession,
    FeedSample,
    SubmitQuery,
    SubmitBatch,
    StepEpoch,
    GetPlan,
    CloseSession,
    GetStats,
    TopologyRegistered,
    SessionOpened,
    SampleAccepted,
    QueryReply,
    BatchReply,
    StepReply,
    PlanReply,
    SessionClosed,
    StatsReply,
    ErrorReply,
)

MESSAGE_KINDS: dict[str, type[Message]] = {
    cls.kind: cls for cls in _MESSAGE_TYPES
}

REQUEST_KINDS: frozenset[str] = frozenset(
    cls.kind
    for cls in (
        RegisterTopology,
        OpenSession,
        FeedSample,
        SubmitQuery,
        SubmitBatch,
        StepEpoch,
        GetPlan,
        CloseSession,
        GetStats,
    )
)


def encode(message: Message, cid: int | None = None, trace=None) -> str:
    """One JSON line (no trailing newline) for ``message``.

    ``cid`` (when given) is attached as the envelope-level correlation
    id a pipelined peer uses to match replies to requests; ``trace``
    (a :class:`~repro.obs.distributed.TraceContext`) rides the same
    envelope as a two-int ``trace`` field — the v1 fallback for the v2
    header trace block.
    """
    data = message.to_dict()
    if cid is not None:
        data["cid"] = int(cid)
    if trace is not None:
        data["trace"] = trace.to_jsonable()
    return json.dumps(data, allow_nan=False, sort_keys=True)


def decode(line: str) -> Message:
    """Rehydrate one JSON line into its typed message.

    Any envelope-level correlation id is discarded; use
    :func:`decode_envelope` to keep it.
    """
    return decode_envelope(line)[0]


def decode_envelope(line: str) -> tuple[Message, int | None]:
    """Rehydrate one JSON line into ``(message, correlation id)``.

    Any envelope-level trace context is discarded; use
    :func:`decode_envelope_trace` to keep it.
    """
    message, cid, __ = decode_envelope_trace(line)
    return message, cid


def decode_envelope_trace(line: str):
    """Rehydrate one JSON line into ``(message, cid, trace context)``.

    The cid is ``None`` for lockstep peers that did not send one; the
    trace is ``None`` unless the envelope carries a valid ``trace``
    field (a :class:`~repro.obs.distributed.TraceContext` otherwise).
    Frames longer than :data:`MAX_FRAME_BYTES` are rejected before any
    JSON parsing.
    """
    from repro.obs.distributed import TraceContext

    if len(line) > MAX_FRAME_BYTES:
        raise ServiceError(
            f"frame of {len(line)} bytes exceeds the"
            f" {MAX_FRAME_BYTES}-byte protocol limit"
        )
    try:
        data = json.loads(line)
    except json.JSONDecodeError as err:
        raise ServiceError(f"request is not valid JSON: {err}") from err
    if not isinstance(data, dict):
        raise ServiceError("request must be a JSON object")
    cid = data.pop("cid", None)
    if cid is not None and not isinstance(cid, int):
        raise ServiceError("correlation id must be an integer")
    trace = data.pop("trace", None)
    if trace is not None:
        try:
            trace = TraceContext.from_jsonable(trace)
        except ObservabilityError as err:
            raise ServiceError(str(err)) from err
    kind = data.get("kind")
    cls = MESSAGE_KINDS.get(kind)
    if cls is None:
        raise ServiceError(f"unknown message kind {kind!r}")
    try:
        return cls.from_dict(data), cid, trace
    except TypeError as err:
        raise ServiceError(f"malformed {kind!r} message: {err}") from err


def error_to_reply(err: Exception) -> ErrorReply:
    """Serialize a failure as a typed :class:`ErrorReply`."""
    return ErrorReply(error=type(err).__name__, message=str(err))


def error_from_reply(reply: ErrorReply) -> Exception:
    """The client-side inverse: re-raise the matching typed error.

    Unknown names (a newer server, say) degrade to
    :class:`~repro.errors.ServiceError` rather than failing opaquely.
    """
    cls = getattr(_errors, reply.error, None)
    if not (isinstance(cls, type) and issubclass(cls, Exception)):
        cls = ServiceError
    return cls(reply.message)
