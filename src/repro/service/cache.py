"""Cross-session compiled-plan caches, keyed by content fingerprint.

Per-planner caches (:class:`~repro.lp.fastbuild.ReplanCache`, the
parametric forms held by ``plan_for_budgets``) only help within one
engine.  A multi-tenant service wants more: two sessions watching the
same topology with the same ``k`` and cost model compile the *same*
LP, so the service promotes both cache levels to one shared pool:

- one :class:`~repro.lp.fastbuild.ReplanCache` shared by every
  session's planner (the sample-independent constraint blocks);
- this module's :class:`SharedPlanCache` of fully-compiled
  :class:`~repro.lp.fastbuild.ParametricForm` objects, keyed by
  ``(formulation, topology content token, k, cost fingerprint,
  sample-window digest)``.

A hit means *zero* compile work — the budget RHS is patched into a
copy of the cached arrays (``form_for``), which is why the service
test can assert exactly one ``fastbuild.compile`` span across two
sessions on the same topology.  Counters land under
``service.cache.*`` when an :class:`~repro.obs.Instrumentation` is
attached.

Planners reach this pool through their ``form_cache`` hook (set via
:class:`~repro.planners.base.PlannerConfig`); the pool itself is
thread-safe and LRU-bounded, like the :class:`ReplanCache` it wraps.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.lp.fastbuild import ParametricForm, ReplanCache, _cost_fingerprint


def array_digest(values, *, extra: str = "", length: int = 16) -> str:
    """A content hash of one numpy array (shape + raw bytes).

    The common fingerprint primitive of the service layer: the shared
    plan cache keys sample windows with it (via :func:`samples_digest`)
    and the wire protocol's shared-memory fast path names and
    integrity-checks spilled blobs with it (see
    :class:`~repro.service.artifacts.BlobSpool`).
    """
    values = np.ascontiguousarray(values)
    digest = hashlib.sha256()
    digest.update(str(values.shape).encode())
    digest.update(extra.encode())
    digest.update(values.tobytes())
    return digest.hexdigest()[:length]


def samples_digest(samples) -> str:
    """A content hash of a sample matrix (values, shape, and k).

    The compiled LP depends on the window's exact values (PROOF) or at
    least its top-k mask (LP±LF); hashing the value array covers both
    and makes the key safe for any formulation.
    """
    values = np.ascontiguousarray(
        getattr(samples, "values", samples), dtype=np.float64
    )
    return array_digest(values, extra=str(getattr(samples, "k", "")))


class SharedPlanCache:
    """Bounded LRU pool of compiled parametric LPs, shared by sessions.

    Parameters
    ----------
    capacity:
        Maximum retained :class:`ParametricForm` entries; least
        recently used beyond that are evicted (counted).
    replan_capacity:
        Capacity of the shared :class:`ReplanCache` handed to every
        planner built against this pool.
    instrumentation:
        Optional :class:`~repro.obs.Instrumentation`; hit/miss/eviction
        counters are mirrored to ``service.cache.{hits,misses,evictions}``.
    artifacts:
        Optional :class:`~repro.service.artifacts.ArtifactStore`; a
        memory miss consults it before compiling (a cold *process*
        loads mmap-backed arrays a sibling already built), and fresh
        compiles spill into it best-effort.
    """

    def __init__(
        self,
        capacity: int = 32,
        replan_capacity: int = 16,
        instrumentation=None,
        artifacts=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("shared plan cache capacity must be >= 1")
        self.capacity = capacity
        self.replan_cache = ReplanCache(capacity=replan_capacity)
        self.instrumentation = instrumentation
        self.artifacts = artifacts
        self._entries: "OrderedDict[tuple, ParametricForm]" = OrderedDict()
        self._solutions: "OrderedDict[tuple, list]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.sweep_hits = 0
        self.sweep_misses = 0

    def _count(self, outcome: str) -> None:
        setattr(self, outcome, getattr(self, outcome) + 1)
        if self.instrumentation is not None:
            self.instrumentation.counter(f"service.cache.{outcome}").inc()

    def key_for(self, formulation: str, context) -> tuple:
        """The content fingerprint of one compile request."""
        return (
            formulation,
            context.topology.cache_token(),
            context.k,
            _cost_fingerprint(context),
            samples_digest(context.samples),
        )

    def parametric(
        self, formulation: str, context, compile_fn
    ) -> ParametricForm:
        """The pooled compiled form for ``context``; compiles at most
        once per content key.

        The lock is held across ``compile_fn`` so concurrent sessions
        racing on a cold key block behind one compile instead of
        duplicating it — exactly-once is the property the shared pool
        exists to provide (and what the one-compile-span test pins).
        """
        key = self.key_for(formulation, context)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._count("hits")
                return entry
            self._count("misses")
            entry = None
            if self.artifacts is not None:
                entry = self.artifacts.load(key)
            if entry is None:
                entry = compile_fn()
                if self.artifacts is not None:
                    self.artifacts.save(key, entry)
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._count("evictions")
            self._entries[key] = entry
            return entry

    def sweep_solutions(
        self, formulation: str, context, parametric, rhs_values, backend
    ) -> list:
        """Pooled solutions for one budget ladder; solves at most once
        per ``(content key, backend, ladder)``.

        The cache level above :meth:`parametric`: equal-content tenants
        sweeping the same budgets share one ``solve_batch`` call (the
        vectorized lockstep pass on the pure simplex).  Like
        :meth:`parametric`, the lock is held across the solve so racing
        sessions block behind one batch instead of duplicating it.
        Entries share the plan-cache LRU capacity and counters land
        under ``service.cache.sweep_{hits,misses}``.
        """
        rhs = np.atleast_1d(np.asarray(rhs_values, dtype=float))
        key = (
            self.key_for(formulation, context),
            backend.name,
            hashlib.sha256(rhs.tobytes()).hexdigest()[:16],
        )
        with self._lock:
            entry = self._solutions.get(key)
            if entry is not None:
                self._solutions.move_to_end(key)
                self._count("sweep_hits")
                return list(entry)
            self._count("sweep_misses")
            if hasattr(backend, "solve_batch"):
                entry = backend.solve_batch(parametric, rhs)
            else:
                entry = backend.solve_sweep(parametric, rhs)
            while len(self._solutions) >= self.capacity:
                self._solutions.popitem(last=False)
                self._count("evictions")
            self._solutions[key] = entry
            return list(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __getstate__(self) -> dict:
        # like ReplanCache: warmth, lock, and the (possibly
        # unpicklable) instrumentation are process-local
        return {
            "capacity": self.capacity,
            "replan_capacity": self.replan_cache.capacity,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            capacity=state["capacity"],
            replan_capacity=state["replan_capacity"],
        )

    def stats(self) -> dict:
        """Counter snapshot (the ``service.cache.*`` numbers)."""
        with self._lock:
            snapshot = {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "sweep_entries": len(self._solutions),
                "sweep_hits": self.sweep_hits,
                "sweep_misses": self.sweep_misses,
                "replan_hits": self.replan_cache.hits,
                "replan_misses": self.replan_cache.misses,
                "replan_evictions": self.replan_cache.evictions,
            }
            if self.artifacts is not None:
                snapshot["artifacts"] = self.artifacts.stats()
            return snapshot
