"""One tenant's session: an engine plus lifecycle and backpressure.

A :class:`Session` wraps one :class:`~repro.query.engine.TopKEngine`
with the three concerns the engine itself does not have:

- **lifecycle** — ``open`` → ``closed`` (client) or ``expired``
  (idle past the service TTL); every request touches the idle clock;
- **serialization** — engines are single-threaded by design, so a
  per-session lock runs requests one at a time even when the socket
  front end handles many connections;
- **backpressure** — at most ``queue_limit`` requests may be pending
  (waiting or executing) per session; the next one is shed with a
  typed :class:`~repro.errors.OverloadError` instead of growing an
  unbounded queue;
- **draining** — during graceful shutdown the service flips every
  session into drain mode: requests already admitted run to their
  final replies, new work is refused with
  :class:`~repro.errors.ServiceUnavailableError` (``close_session``
  stays allowed so clients can wind down cleanly).

Time comes from an injectable monotonic clock so expiry tests are
deterministic.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.errors import (
    OverloadError,
    ServiceUnavailableError,
    SessionError,
)


class Session:
    """Lifecycle shell around one tenant's engine."""

    def __init__(
        self,
        session_id: str,
        topology_id: str,
        engine,
        *,
        queue_limit: int = 8,
        clock=None,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("session queue limit must be >= 1")
        self.session_id = session_id
        self.topology_id = topology_id
        self.engine = engine
        self.queue_limit = queue_limit
        self._clock = clock
        self.state = "open"
        self.draining = False
        self.created_at = self._now()
        self.last_used = self.created_at
        self._serial = threading.Lock()
        self._admission = threading.Lock()
        self._pending = 0
        self.requests_handled = 0
        self.requests_shed = 0

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # -- lifecycle ------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self.state == "open"

    def ensure_open(self) -> None:
        if self.state == "closed":
            raise SessionError(
                f"session {self.session_id!r} is closed"
            )
        if self.state == "expired":
            raise SessionError(
                f"session {self.session_id!r} expired after idling past"
                " the service TTL"
            )

    def idle_seconds(self, now: float) -> float:
        return now - self.last_used

    def expire_if_idle(self, now: float, ttl_s: float) -> bool:
        """Flip an idle-open session to ``expired``; True when flipped."""
        if self.is_open and self.idle_seconds(now) > ttl_s:
            self.state = "expired"
            return True
        return False

    def close(self) -> None:
        self.ensure_open()
        self.state = "closed"

    def begin_drain(self) -> None:
        """Refuse new work from now on; in-flight requests finish."""
        self.draining = True

    # -- request admission ---------------------------------------------
    @contextmanager
    def slot(self, *, final: bool = False):
        """Admit one request: bounded pending count, serialized engine.

        Raises :class:`~repro.errors.OverloadError` when the session
        already has ``queue_limit`` requests pending — the shed happens
        *before* waiting on the serial lock, so an overloaded session
        fails fast instead of queuing unboundedly.  A draining session
        refuses everything except ``final`` requests (session close)
        with :class:`~repro.errors.ServiceUnavailableError`.
        """
        with self._admission:
            if self.draining and not final:
                self.requests_shed += 1
                raise ServiceUnavailableError(
                    f"session {self.session_id!r} is draining for"
                    " shutdown; request refused"
                )
            if self._pending >= self.queue_limit:
                self.requests_shed += 1
                raise OverloadError(
                    f"session {self.session_id!r} has {self._pending}"
                    f" requests pending (limit {self.queue_limit});"
                    " request shed"
                )
            self._pending += 1
        try:
            with self._serial:
                self.ensure_open()  # may have expired while waiting
                self.last_used = self._now()
                self.requests_handled += 1
                yield self.engine
                self.last_used = self._now()
        finally:
            with self._admission:
                self._pending -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session({self.session_id!r}, state={self.state!r},"
            f" pending={self._pending})"
        )
