"""Horizontally sharded service: N worker processes, one front door.

The single-process :class:`~repro.service.server.TopKService` tops out
at one core.  :class:`ShardedService` spawns ``workers`` child
processes, each hosting a full service (its own
:class:`~repro.service.cache.SharedPlanCache`, sessions, asyncio
socket server on its own port), and :class:`ShardedClient` routes
every session to a worker by **rendezvous (highest-random-weight)
hash** of the session's content fingerprint — topology id, planner,
``k`` — so equal-content tenants always land on the same worker and
keep the per-shard exactly-once compile guarantee, while distinct
contents spread across cores.  This is the paper's base-station
partitioning played at process scale.

Workers share one **artifact directory** (see
:mod:`repro.service.artifacts`): the first worker to compile a
parametric form spills its arrays, and every other worker — including
one restarted cold — loads the mmap-backed entry instead of paying
the compile again.

Shutdown is graceful end to end: the parent sends each worker a
shutdown message, each worker drains its connections (in-flight
requests get their final replies) within the grace window, and only
then does the parent reap the process (SIGTERM/kill as the escalation
path).

Per-shard telemetry lands in the parent's optional
:class:`~repro.obs.Instrumentation` under ``service.shard.*`` —
worker-count and per-shard open-session gauges, routed-request
counters, and ``shard_lifecycle`` events around spawn/shutdown.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import tempfile
import threading
from dataclasses import replace as dataclass_replace

from repro.errors import ServiceError, ServiceUnavailableError
from repro.obs.distributed import (
    TelemetryAggregator,
    TelemetryServer,
    adopt_trace,
)
from repro.obs.metrics import Histogram
from repro.obs.spans import maybe_span
from repro.service import messages as msg
from repro.service.client import SocketClient, _BaseClient

READY_TIMEOUT_S = 120.0
"""Bound on worker startup (spawned interpreters import numpy/scipy)."""


def rendezvous_worker(key: str, workers: int) -> int:
    """The rendezvous-hash owner of ``key`` among ``workers`` shards.

    Deterministic across processes and runs (SHA-256, no seed), and
    *consistent*: adding a worker reassigns only the keys it wins,
    which is what keeps equal-content tenants co-located as a
    deployment scales.
    """
    if workers < 1:
        raise ServiceError("sharded routing needs at least one worker")
    best, best_score = 0, b""
    for index in range(workers):
        score = hashlib.sha256(f"{index}|{key}".encode()).digest()
        if score > best_score:
            best, best_score = index, score
    return best


def _session_route_key(topology_id: str, planner: str, k: int) -> str:
    """What a session's placement hashes on: its compile-content axes."""
    return f"{topology_id}|{planner}|{k}"


def _worker_main(index: int, host: str, conn, config) -> None:
    """One shard worker: a full service on its own port (child process).

    Reports ``("ready", port)`` on the pipe, then serves until the
    parent sends ``("shutdown", grace_seconds)`` (or the pipe dies),
    drains gracefully, and replies ``("stopped", cache_stats)``.
    """
    import asyncio

    from repro.obs import Instrumentation
    from repro.service.server import TopKService, serve

    # ring-mode spans: a long-lived worker keeps the newest trees and
    # counts evictions instead of silently dropping telemetry
    service = TopKService(
        config, instrumentation=Instrumentation(span_mode="ring")
    )

    async def _main() -> None:
        try:
            server = await serve(service, host, 0)
        except OSError as err:
            conn.send(("error", f"worker {index} failed to bind: {err}"))
            return
        conn.send(("ready", server.sockets[0].getsockname()[1]))
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        grace = [5.0]

        async def _snapshot() -> dict:
            snapshot = service.telemetry_snapshot()
            snapshot["shard"] = str(index)
            return snapshot

        def _watch_pipe() -> None:
            # served until shutdown: telemetry polls are answered
            # in-line (snapshotted on the event loop so they never
            # race request handling), anything else stops the worker
            while True:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    grace[0] = 0.0  # parent died: fast drain
                    break
                if not isinstance(message, tuple) or not message:
                    continue
                if message[0] == "telemetry":
                    try:
                        future = asyncio.run_coroutine_threadsafe(
                            _snapshot(), loop
                        )
                        payload = future.result(timeout=10.0)
                    except Exception as err:  # pragma: no cover - defensive
                        payload = {"shard": str(index), "error": str(err)}
                    try:
                        conn.send(("telemetry", payload))
                    except (BrokenPipeError, OSError):
                        grace[0] = 0.0
                        break
                    continue
                if message[0] == "shutdown":
                    grace[0] = float(message[1])
                break
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:  # loop already torn down (SIGINT)
                pass

        threading.Thread(target=_watch_pipe, daemon=True).start()
        await stop.wait()
        await server.shutdown(grace[0])
        try:
            conn.send(("stopped", service.cache.stats()))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass

    asyncio.run(_main())


class ShardedService:
    """Spawns and supervises N single-process service workers.

    Usable as a context manager::

        with ShardedService(workers=4) as sharded:
            client = sharded.client()
            ...

    Parameters
    ----------
    workers:
        Worker process count (each hosts a full service on one port).
    config:
        Per-worker :class:`~repro.service.server.ServiceConfig`;
        ``artifact_dir`` is overridden with the shared store path.
    artifact_dir:
        Directory for the cross-process compiled-artifact store; a
        private temporary directory (cleaned up on shutdown) when
        omitted.
    instrumentation:
        Optional parent-side :class:`~repro.obs.Instrumentation` for
        the ``service.shard.*`` gauges/counters/events.
    telemetry_port:
        When not ``None``, :meth:`start` also brings up the live
        telemetry HTTP endpoint
        (:class:`~repro.obs.TelemetryServer`) on this port (0 picks a
        free one; see :attr:`telemetry` for the bound server).  Each
        HTTP request triggers a fresh :meth:`poll_telemetry` sweep.
    start_method:
        ``multiprocessing`` start method (default ``spawn``: immune to
        the parent's threads and event loops; ``fork`` is faster to
        boot where safe).
    """

    def __init__(
        self,
        workers: int = 2,
        config=None,
        *,
        host: str = "127.0.0.1",
        artifact_dir: str | None = None,
        instrumentation=None,
        telemetry_port: int | None = None,
        start_method: str = "spawn",
        grace_seconds: float = 5.0,
    ) -> None:
        if workers < 1:
            raise ServiceError("a sharded service needs >= 1 worker")
        from repro.service.server import ServiceConfig

        self.workers = workers
        self.host = host
        self.config = config or ServiceConfig()
        self.instrumentation = instrumentation
        self.start_method = start_method
        self.grace_seconds = grace_seconds
        self._tmpdir = None
        if artifact_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(
                prefix="repro-shard-artifacts-"
            )
            artifact_dir = self._tmpdir.name
        self.artifact_dir = artifact_dir
        self._processes: list = []
        self._pipes: list = []
        self.endpoints: list[tuple[str, int]] = []
        self._pipe_lock = threading.Lock()
        self.aggregator = TelemetryAggregator()
        self.telemetry_port = telemetry_port
        self.telemetry: "TelemetryServer | None" = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ShardedService":
        if self._processes:
            raise ServiceError("sharded service already started")
        obs = self.instrumentation
        context = multiprocessing.get_context(self.start_method)
        worker_config = dataclass_replace(
            self.config, artifact_dir=self.artifact_dir
        )
        with maybe_span(obs, "service.shard.spawn", workers=self.workers):
            for index in range(self.workers):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(index, self.host, child_end, worker_config),
                    name=f"repro-shard-{index}",
                    daemon=True,
                )
                process.start()
                child_end.close()
                self._processes.append(process)
                self._pipes.append(parent_end)
            for index, pipe in enumerate(self._pipes):
                if not pipe.poll(READY_TIMEOUT_S):
                    self.shutdown(grace_seconds=0.0)
                    raise ServiceUnavailableError(
                        f"shard worker {index} did not report ready"
                        f" within {READY_TIMEOUT_S}s"
                    )
                status, payload = pipe.recv()
                if status != "ready":
                    self.shutdown(grace_seconds=0.0)
                    raise ServiceUnavailableError(str(payload))
                self.endpoints.append((self.host, int(payload)))
        if self.telemetry_port is not None:
            self.telemetry = TelemetryServer(
                self._collect_telemetry,
                host=self.host,
                port=self.telemetry_port,
            ).start()
        if obs is not None:
            obs.gauge("service.shard.workers").set(float(self.workers))
            obs.event(
                "shard_lifecycle",
                phase="spawned",
                workers=self.workers,
                ports=[port for __, port in self.endpoints],
            )
        return self

    def shutdown(self, grace_seconds: float | None = None) -> None:
        """Gracefully stop every worker (idempotent).

        Sends the drain message, waits ``grace + 5`` seconds per
        worker, then escalates to SIGTERM/kill for stragglers.
        """
        grace = self.grace_seconds if grace_seconds is None else grace_seconds
        obs = self.instrumentation
        if self.telemetry is not None:
            self.telemetry.stop()
            self.telemetry = None
        with maybe_span(obs, "service.shard.shutdown", grace=grace):
            with self._pipe_lock:
                for pipe in self._pipes:
                    try:
                        pipe.send(("shutdown", grace))
                    except (BrokenPipeError, OSError):
                        pass
            for process, pipe in zip(self._processes, self._pipes):
                process.join(timeout=grace + 5.0)
                if process.is_alive():  # pragma: no cover - escalation
                    process.terminate()
                    process.join(timeout=2.0)
                    if process.is_alive():
                        process.kill()
                        process.join(timeout=2.0)
                pipe.close()
        self._processes = []
        self._pipes = []
        self.endpoints = []
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
        if obs is not None:
            obs.gauge("service.shard.workers").set(0.0)
            obs.event("shard_lifecycle", phase="stopped", workers=0)

    def __enter__(self) -> "ShardedService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- telemetry ------------------------------------------------------
    def poll_telemetry(
        self, timeout_s: float = 10.0
    ) -> TelemetryAggregator:
        """Sweep every worker for a telemetry snapshot; fold into
        :attr:`aggregator` (which keeps the latest per shard and
        derives qps from successive sweeps).

        Best-effort by design: a dead or slow worker simply
        contributes nothing to this sweep — its previous snapshot (if
        any) stays visible, and the sweep never raises.
        """
        with self._pipe_lock:
            polled = []
            for index, pipe in enumerate(self._pipes):
                try:
                    pipe.send(("telemetry",))
                except (BrokenPipeError, OSError):
                    continue
                polled.append((index, pipe))
            for index, pipe in polled:
                try:
                    if not pipe.poll(timeout_s):
                        continue
                    tag, payload = pipe.recv()
                except (EOFError, OSError):
                    continue
                if tag != "telemetry" or not isinstance(payload, dict):
                    continue  # e.g. a "stopped" racing a shutdown
                if "error" in payload:
                    continue
                self.aggregator.ingest(payload)
        return self.aggregator

    def _collect_telemetry(self) -> TelemetryAggregator:
        """The :class:`TelemetryServer` ``collect`` hook."""
        return self.poll_telemetry()

    # -- routing & clients ----------------------------------------------
    def worker_for(self, topology_id: str, planner: str, k: int) -> int:
        """Which worker owns sessions of this content (deterministic)."""
        return rendezvous_worker(
            _session_route_key(topology_id, planner, k), self.workers
        )

    def client(
        self, *, timeout_s: float = 30.0, protocol: str = "auto"
    ) -> "ShardedClient":
        """A routed client over every live worker endpoint.

        ``protocol`` is the per-connection wire preference handed to
        each worker's :class:`~repro.service.client.SocketClient`
        (``auto``/``v1``/``v2``); the workers themselves accept
        whatever their :class:`~repro.service.server.ServiceConfig`
        ``protocol`` allows.
        """
        if not self.endpoints:
            raise ServiceError("sharded service is not running; start() it")
        return ShardedClient(
            self.endpoints,
            timeout_s=timeout_s,
            instrumentation=self.instrumentation,
            protocol=protocol,
        )


class ShardedClient(_BaseClient):
    """One client surface over many shard workers.

    Sessions are addressed ``w<shard>/<worker session id>`` so every
    later request routes straight to the owning worker; topology
    registration broadcasts (it is content-keyed and idempotent), and
    stats fan out and aggregate.  The pipelined surface
    (``submit_nowait``/``drain``/``stream``) preserves global submit
    order while each underlying connection batches its own frames.
    """

    def __init__(
        self,
        endpoints,
        *,
        timeout_s: float = 30.0,
        instrumentation=None,
        protocol: str = "auto",
    ) -> None:
        self.endpoints = [(str(h), int(p)) for h, p in endpoints]
        if not self.endpoints:
            raise ServiceError("sharded client needs >= 1 endpoint")
        self.timeout_s = timeout_s
        self.instrumentation = instrumentation
        self.protocol = protocol
        self._clients: dict[int, SocketClient] = {}
        self._submit_order: list[int] = []

    @property
    def workers(self) -> int:
        return len(self.endpoints)

    def _shard_client(self, index: int) -> SocketClient:
        client = self._clients.get(index)
        if client is None:
            host, port = self.endpoints[index]
            client = SocketClient(
                host,
                port,
                timeout_s=self.timeout_s,
                protocol=self.protocol,
                instrumentation=self.instrumentation,
            )
            self._clients[index] = client
        return client

    # -- routing --------------------------------------------------------
    def _split_session_id(self, session_id: str) -> tuple[int, str]:
        try:
            prefix, inner = session_id.split("/", 1)
            shard = int(prefix[1:])
            if not prefix.startswith("w") or not (
                0 <= shard < self.workers
            ):
                raise ValueError(session_id)
        except (ValueError, IndexError):
            raise ServiceError(
                f"malformed sharded session id {session_id!r}; expected"
                " 'w<shard>/<session>'"
            ) from None
        return shard, inner

    def _join_session_id(self, shard: int, session_id: str) -> str:
        return f"w{shard}/{session_id}"

    def _route(self, request: msg.Message) -> tuple[int, msg.Message]:
        """The owning shard plus the request rewritten for it."""
        if isinstance(request, msg.OpenSession):
            shard = rendezvous_worker(
                _session_route_key(
                    request.topology_id, request.planner, request.k
                ),
                self.workers,
            )
            return shard, request
        session_id = getattr(request, "session_id", None)
        if session_id is None:
            raise ServiceError(
                f"{request.kind!r} has no single-shard route; it is"
                " broadcast/aggregated by the sharded client"
            )
        shard, inner = self._split_session_id(session_id)
        return shard, dataclass_replace(request, session_id=inner)

    def _namespace_reply(self, shard: int, reply: msg.Message) -> msg.Message:
        inner = getattr(reply, "session_id", None)
        if inner:
            return dataclass_replace(
                reply, session_id=self._join_session_id(shard, inner)
            )
        return reply

    # -- lockstep -------------------------------------------------------
    def request(self, request: msg.Message) -> msg.Message:
        obs = self.instrumentation
        if isinstance(request, msg.RegisterTopology):
            return self._broadcast_register(request)
        if isinstance(request, msg.GetStats):
            return self._aggregate_stats()
        shard, routed = self._route(request)
        if obs is not None:
            obs.counter(f"service.shard.requests.{shard}").inc()
        with maybe_span(
            obs, "service.shard.request", shard=shard, kind=request.kind
        ) as span:
            # the dispatch span joins (or starts) the distributed
            # trace; the nested SocketClient span then inherits the
            # same trace id and carries it to the worker
            adopt_trace(obs, span)
            reply = self._shard_client(shard).request(routed)
        return self._namespace_reply(shard, reply)

    def _broadcast_register(
        self, request: msg.RegisterTopology
    ) -> msg.Message:
        """Every worker must know the topology: any of them may own a
        session content that hashes to it."""
        replies = [
            self._shard_client(index).request(request)
            for index in range(self.workers)
        ]
        return replies[0]

    def _aggregate_stats(self) -> msg.StatsReply:
        obs = self.instrumentation
        per_shard = {}
        sessions_open = sessions_total = 0
        topologies = 0
        for index in range(self.workers):
            reply = self._shard_client(index).request(msg.GetStats())
            per_shard[str(index)] = reply.counters
            sessions_open += reply.sessions_open
            sessions_total += reply.sessions_total
            topologies = max(topologies, reply.topologies)
            if obs is not None:
                obs.gauge(
                    f"service.shard.{index}.sessions_open"
                ).set(float(reply.sessions_open))
        return msg.StatsReply(
            sessions_open=sessions_open,
            sessions_total=sessions_total,
            topologies=topologies,
            counters={
                "workers": self.workers,
                "per_shard": per_shard,
                "histograms": self._merge_histograms(per_shard),
            },
        )

    @staticmethod
    def _merge_histograms(per_shard: dict) -> dict:
        """Fleet latency summaries from the shards' mergeable dumps.

        Bucket counts add exactly and min/max combine exactly, so the
        fleet p50/p95/p99 here are true merged quantiles — not an
        average of per-shard percentiles, which is meaningless.
        """
        merged: dict[str, Histogram] = {}
        for counters in per_shard.values():
            for name, dump in (counters.get("histograms") or {}).items():
                try:
                    hist = Histogram.from_merge_dict(name, dump)
                except Exception:
                    continue  # an old worker without mergeable dumps
                if name in merged:
                    merged[name].merge(hist)
                else:
                    merged[name] = hist
        return {
            name: {
                "count": hist.count,
                "mean": hist.total / hist.count,
                "min": hist.min,
                "max": hist.max,
                "p50": hist.quantile(50.0),
                "p95": hist.quantile(95.0),
                "p99": hist.quantile(99.0),
            }
            for name, hist in sorted(merged.items())
            if hist.count
        }

    # -- pipelining -----------------------------------------------------
    def submit_nowait(self, request: msg.Message) -> int:
        """Pipeline one frame on its owning shard's connection.

        Returns a client-level sequence number; ``drain``/``stream``
        interleave the per-shard reply streams back into global submit
        order.
        """
        shard, routed = self._route(request)
        self._shard_client(shard).submit_nowait(routed)
        self._submit_order.append(shard)
        return len(self._submit_order) - 1

    def stream(self):
        order, self._submit_order = self._submit_order, []
        streams = {
            shard: self._shard_client(shard).stream()
            for shard in set(order)
        }

        def _merged():
            for shard in order:
                yield self._namespace_reply(shard, next(streams[shard]))

        return _merged()

    @property
    def pending(self) -> int:
        return len(self._submit_order)

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients.clear()
        self._submit_order = []

    def __enter__(self) -> "ShardedClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
