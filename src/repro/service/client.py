"""Service clients: one surface, three transports.

:class:`InProcessClient` calls :meth:`TopKService.handle` directly
(zero serialization — the load benchmark's path), while
:class:`SocketClient` speaks the JSON-lines protocol over TCP and
:class:`~repro.service.shard.ShardedClient` routes over many socket
workers.  All raise the same typed :mod:`repro.errors` exceptions and
hand out the same :class:`SessionHandle`, so code written against one
runs against the others; the protocol round-trip tests pin that
equivalence.

Two request disciplines coexist on every client:

- **lockstep** — :meth:`~_BaseClient.request` writes one frame and
  awaits its reply (errors re-raised typed);
- **pipelined** — :meth:`~_BaseClient.submit_nowait` queues a frame
  with an envelope correlation id and returns immediately;
  :meth:`~_BaseClient.drain` (or the :meth:`~_BaseClient.stream`
  iterator) flushes the batch and yields replies in submit order,
  checking each echoed cid.  Failures arrive as
  :class:`~repro.service.messages.ErrorReply` values *in the stream*
  rather than as exceptions, so one bad frame cannot tear down the
  rest of the batch.

:class:`SocketClient` additionally owns the liveness story: connects
and reads are bounded by timeouts, a dead or hung worker surfaces as a
typed :class:`~repro.errors.ServiceUnavailableError`, and idempotent
requests (:data:`IDEMPOTENT_KINDS`) are retried once over a fresh
connection before that error escapes.

:func:`connect` is the front door (also re-exported as
:func:`repro.api.connect`): give it nothing for a private in-process
service, a :class:`~repro.service.server.TopKService` to share one,
``host``/``port`` for a remote one, or ``shards`` for a sharded
deployment.
"""

from __future__ import annotations

import socket
from collections import deque

import numpy as np

from repro.errors import (
    ProtocolError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.obs.distributed import adopt_trace
from repro.obs.spans import maybe_span
from repro.service import messages as msg
from repro.service import wire

IDEMPOTENT_KINDS: frozenset[str] = frozenset(
    ("register_topology", "get_stats", "get_plan")
)
"""Request kinds safe to retry after a transport failure.

Registration is content-keyed (same parents, same id), and the two
reads have no side effects.  Feeds/queries/steps mutate session state,
so a client cannot know whether a timed-out one executed — those are
never retried automatically.
"""


class SessionHandle:
    """One tenant session, whichever transport carries it.

    Usable as a context manager (``with client.open_session(...) as s``)
    so the session is closed — freeing its admission slot — on exit.

    The ``*_nowait`` variants pipeline the frame on the owning client
    (replies come back through ``client.drain()`` / ``client.stream()``
    in submit order), which is the streaming feed-while-querying mode.
    """

    def __init__(self, client, session_id: str) -> None:
        self.client = client
        self.session_id = session_id

    def feed(self, readings) -> msg.SampleAccepted:
        """Add one full-network sample to the session window."""
        return self.client.request(self._feed_message(readings))

    def feed_nowait(self, readings) -> int:
        """Pipeline one feed frame; returns its correlation id."""
        return self.client.submit_nowait(self._feed_message(readings))

    def query(self, readings) -> msg.QueryReply:
        """Execute the installed plan on this epoch's readings."""
        return self.client.request(self._query_message(readings))

    def query_nowait(self, readings) -> int:
        """Pipeline one query frame; returns its correlation id."""
        return self.client.submit_nowait(self._query_message(readings))

    def step(self, readings) -> msg.StepReply:
        """One explore/exploit epoch (engine decides sample vs query)."""
        return self.client.request(self._step_message(readings))

    def step_nowait(self, readings) -> int:
        """Pipeline one epoch-step frame; returns its correlation id."""
        return self.client.submit_nowait(self._step_message(readings))

    def query_batch(self, readings_matrix) -> msg.BatchReply:
        """Execute the installed plan on a whole ``(B, n)`` readings
        matrix in one frame; row ``i`` of the reply is bitwise what
        :meth:`query` on row ``i`` would have returned."""
        return self.client.request(self._batch_message(readings_matrix))

    def query_batch_nowait(self, readings_matrix) -> int:
        """Pipeline one multi-query frame; returns its correlation id."""
        return self.client.submit_nowait(
            self._batch_message(readings_matrix)
        )

    def plan(self) -> dict:
        """The installed plan as a serialized payload (see
        :func:`repro.plans.serialize.plan_from_dict`)."""
        return self.client.request(
            msg.GetPlan(session_id=self.session_id)
        ).plan

    def close(self) -> msg.SessionClosed:
        return self.client.request(
            msg.CloseSession(session_id=self.session_id)
        )

    @staticmethod
    def _vector(readings):
        # numpy payloads pass through untouched: the binary codec
        # packs them zero-copy and the JSON codec converts on encode,
        # so the per-request tuple(float(...)) tax is only paid for
        # plain sequences
        if isinstance(readings, np.ndarray):
            return readings
        return tuple(float(v) for v in readings)

    def _feed_message(self, readings) -> msg.FeedSample:
        return msg.FeedSample(
            session_id=self.session_id, readings=self._vector(readings)
        )

    def _query_message(self, readings) -> msg.SubmitQuery:
        return msg.SubmitQuery(
            session_id=self.session_id, readings=self._vector(readings)
        )

    def _step_message(self, readings) -> msg.StepEpoch:
        return msg.StepEpoch(
            session_id=self.session_id, readings=self._vector(readings)
        )

    def _batch_message(self, readings_matrix) -> msg.SubmitBatch:
        if isinstance(readings_matrix, np.ndarray):
            readings = readings_matrix
        else:
            readings = tuple(
                tuple(float(v) for v in row) for row in readings_matrix
            )
        return msg.SubmitBatch(
            session_id=self.session_id, readings=readings
        )

    def __enter__(self) -> "SessionHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self.close()
        except ServiceError:  # already closed/expired/unreachable
            pass


class _BaseClient:
    """Shared request helpers over abstract ``request``/``submit_nowait``."""

    def request(self, request: msg.Message) -> msg.Message:
        raise NotImplementedError

    def submit_nowait(self, request: msg.Message) -> int:
        raise NotImplementedError

    def stream(self):
        """Iterator of outstanding pipelined replies, in submit order."""
        raise NotImplementedError

    def drain(self) -> list[msg.Message]:
        """Flush pipelined frames and collect every outstanding reply.

        Replies come back in submit order; failures are returned as
        :class:`~repro.service.messages.ErrorReply` values (use
        :func:`~repro.service.messages.error_from_reply` to rehydrate)
        so one shed request does not abort the batch.
        """
        return list(self.stream())

    def register_topology(self, topology_or_parents) -> str:
        """Install a topology (object or parents vector); returns its id."""
        token = getattr(topology_or_parents, "cache_token", None)
        parents = token() if callable(token) else topology_or_parents
        reply = self.request(
            msg.RegisterTopology(parents=tuple(int(p) for p in parents))
        )
        return reply.topology_id

    def open_session(
        self,
        topology_id: str,
        k: int,
        *,
        planner: str = "lp-lf",
        budget_mj: float = 500.0,
        window_capacity: int = 25,
        replan_every: int = 10,
        track_truth: bool = True,
    ) -> SessionHandle:
        reply = self.request(
            msg.OpenSession(
                topology_id=topology_id,
                k=k,
                planner=planner,
                budget_mj=budget_mj,
                window_capacity=window_capacity,
                replan_every=replan_every,
                track_truth=track_truth,
            )
        )
        return SessionHandle(self, reply.session_id)

    def stats(self) -> msg.StatsReply:
        return self.request(msg.GetStats())


class InProcessClient(_BaseClient):
    """Direct calls into a service living in this process.

    The pipelined surface executes each frame eagerly (there is no
    wire to batch over) but preserves the socket client's observable
    semantics exactly: ``submit_nowait`` never raises on application
    errors — they come back as ``ErrorReply`` values from ``drain`` —
    which is what the socket-vs-in-process streaming parity test pins.
    """

    def __init__(self, service, *, instrumentation=None) -> None:
        self.service = service
        self.instrumentation = instrumentation
        self._pending: deque[tuple[int, msg.Message]] = deque()
        self._next_cid = 0

    def request(self, request: msg.Message) -> msg.Message:
        obs = self.instrumentation
        with maybe_span(
            obs, "client.request", kind=request.kind, transport="inprocess"
        ) as span:
            trace = adopt_trace(obs, span)
            reply = self.service.handle(request, trace=trace)
        if isinstance(reply, msg.ErrorReply):  # pragma: no cover - handle
            raise msg.error_from_reply(reply)  # raises typed errors itself
        return reply

    def submit_nowait(self, request: msg.Message) -> int:
        if request.kind not in msg.REQUEST_KINDS:
            raise ServiceError(
                f"{request.kind!r} is a reply kind, not a request"
            )
        cid = self._next_cid
        self._next_cid += 1
        obs = self.instrumentation
        try:
            with maybe_span(
                obs,
                "client.submit",
                kind=request.kind,
                transport="inprocess",
            ) as span:
                trace = adopt_trace(obs, span)
                reply = self.service.handle(request, trace=trace)
        except Exception as err:  # typed errors included — parity with wire
            reply = msg.error_to_reply(err)
        self._pending.append((cid, reply))
        return cid

    def stream(self):
        while self._pending:
            __, reply = self._pending.popleft()
            yield reply

    @property
    def pending(self) -> int:
        """Outstanding pipelined replies not yet drained."""
        return len(self._pending)

    def close(self) -> None:
        """Nothing to release (sessions close via their handles)."""


class SocketClient(_BaseClient):
    """The negotiated wire protocol over one TCP connection.

    Requests on one connection are answered in order; failures come
    back as :class:`~repro.service.messages.ErrorReply` frames and are
    re-raised (lockstep) or streamed (pipelined) as typed
    :mod:`repro.errors` values.

    Parameters
    ----------
    timeout_s:
        Read timeout per reply; a worker dying mid-request surfaces as
        :class:`~repro.errors.ServiceUnavailableError` after this long
        instead of hanging the client forever.
    connect_timeout_s:
        Bound on establishing (and re-establishing) the TCP
        connection; defaults to ``timeout_s``.
    protocol:
        Wire preference: ``"auto"`` (default) opens with a binary v2
        hello and transparently falls back to JSON-lines v1 when the
        server does not accept it; ``"v2"`` raises
        :class:`~repro.errors.ProtocolError` instead of falling back;
        ``"v1"`` never sends the hello (an old client).  The version a
        connection actually negotiated is :attr:`protocol_version`
        (``None`` until the first request settles it), and a reconnect
        re-negotiates with the same preference, so a retried
        idempotent request stays on the same protocol.
    instrumentation:
        Optional :class:`~repro.obs.instrument.Instrumentation`: each
        lockstep request then runs under a ``client.request`` span
        whose trace context rides the wire (v2 frame flag, v1
        envelope field), stitching client and server spans into one
        distributed trace (see :mod:`repro.obs.distributed`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        *,
        connect_timeout_s: float | None = None,
        protocol: str = "auto",
        instrumentation=None,
    ) -> None:
        if protocol not in ("v1", "v2", "auto"):
            raise ServiceError(
                f"unknown wire protocol {protocol!r}; choose v1, v2,"
                " or auto"
            )
        self.host = host
        self.port = port
        self.instrumentation = instrumentation
        self.timeout_s = timeout_s
        self.connect_timeout_s = (
            timeout_s if connect_timeout_s is None else connect_timeout_s
        )
        self.protocol = protocol
        self.protocol_version: str | None = None
        self._sock = None
        self._file = None
        self._spool = None
        self._pending: deque[int] = deque()
        self._next_cid = 0
        self._connect()

    # -- connection management -----------------------------------------
    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s
            )
        except OSError as err:
            raise ServiceUnavailableError(
                f"cannot connect to service at {self.host}:{self.port}:"
                f" {err}"
            ) from err
        self._sock.settimeout(self.timeout_s)
        self._file = self._sock.makefile("rwb")
        self._spool = None
        # negotiation is deferred to the first request so constructing
        # a client never blocks on reading from the server
        self.protocol_version = "v1" if self.protocol == "v1" else None

    def _negotiate(self) -> None:
        """Send the v2 hello; settle on what the server answers.

        A v2 server answers with an accept line (switch to binary
        framing, optionally adopting its shared-memory spool); any
        other server answers the hello like a garbage line — that
        reply is consumed here and the connection stays on v1 (or
        raises, when the caller demanded v2).
        """
        try:
            self._file.write(wire.hello_line())
            self._file.flush()
            answer = self._file.readline()
        except TimeoutError as err:
            raise self._unavailable(
                f"did not reply within {self.timeout_s}s", err
            ) from err
        except OSError as err:
            raise self._unavailable("dropped the connection", err) from err
        if not answer:
            raise self._unavailable("closed the connection")
        if wire.is_negotiation_line(answer):
            opts = wire.parse_accept(answer)
            self.protocol_version = "v2"
            blob_dir = opts.get("blob_dir")
            if blob_dir:
                from repro.service.artifacts import BlobSpool

                # best-effort: if this process cannot actually write
                # there (different host, say), spill() degrades to
                # inline frames
                self._spool = BlobSpool(blob_dir)
            return
        # the server spoke JSON back: a v1-only peer answering the
        # hello with an error line, which completes the fallback
        if self.protocol == "v2":
            self._teardown()
            raise ProtocolError(
                f"service at {self.host}:{self.port} does not speak"
                " wire protocol v2 and fallback was disabled"
            )
        self.protocol_version = "v1"

    def _teardown(self) -> None:
        """Drop the broken connection; outstanding pipeline is lost."""
        self._pending.clear()
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover - already broken
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already broken
                pass
            self._sock = None

    def _unavailable(self, what: str, err=None) -> ServiceUnavailableError:
        self._teardown()
        detail = f": {err}" if err is not None else ""
        return ServiceUnavailableError(
            f"service at {self.host}:{self.port} {what}{detail}"
        )

    # -- framing --------------------------------------------------------
    def _write_request(self, request: msg.Message, cid=None, trace=None) -> None:
        if self._file is None:
            self._connect()
        if self.protocol_version is None:
            self._negotiate()
        try:
            if self.protocol_version == "v2":
                self._file.write(
                    wire.encode_frame(
                        request, cid=cid, spool=self._spool, trace=trace
                    )
                )
            else:
                self._file.write(
                    (msg.encode(request, cid=cid, trace=trace) + "\n").encode()
                )
        except OSError as err:
            raise self._unavailable("dropped the connection", err) from err

    def _read_envelope(self) -> tuple[msg.Message, int | None]:
        try:
            if self.protocol_version == "v2":
                body = wire.read_frame_blocking(self._file)
                if not body:
                    raise self._unavailable("closed the connection")
                return wire.decode_frame(body, spool=self._spool)
            line = self._file.readline()
        except ProtocolError:
            # framing is unrecoverable; surface the typed error but
            # drop the connection first
            self._teardown()
            raise
        except (TimeoutError, OSError) as err:
            raise self._unavailable(
                f"did not reply within {self.timeout_s}s", err
            ) from err
        if not line:
            raise self._unavailable("closed the connection")
        return msg.decode_envelope(line.decode())

    # -- lockstep -------------------------------------------------------
    def request(self, request: msg.Message) -> msg.Message:
        if request.kind not in msg.REQUEST_KINDS:
            raise ServiceError(
                f"{request.kind!r} is a reply kind, not a request"
            )
        if self._pending:
            raise ServiceError(
                f"{len(self._pending)} pipelined replies outstanding;"
                " drain() before issuing a lockstep request"
            )
        obs = self.instrumentation
        with maybe_span(
            obs, "client.request", kind=request.kind, transport="socket"
        ) as span:
            trace = adopt_trace(obs, span)
            try:
                reply = self._roundtrip(request, trace=trace)
            except ServiceUnavailableError:
                if request.kind not in IDEMPOTENT_KINDS:
                    raise
                # reconnect-once retry: the request has no side effects,
                # the fresh connection re-negotiates the same protocol,
                # and the retry carries the same trace context so both
                # attempts stitch into one distributed trace
                span.annotate(retried=True)
                self._connect()
                reply = self._roundtrip(request, trace=trace)
            span.annotate(protocol=self.protocol_version)
        if isinstance(reply, msg.ErrorReply):
            raise msg.error_from_reply(reply)
        return reply

    def _roundtrip(self, request: msg.Message, trace=None) -> msg.Message:
        self._write_request(request, trace=trace)
        try:
            self._file.flush()
        except OSError as err:
            raise self._unavailable("dropped the connection", err) from err
        return self._read_envelope()[0]

    # -- pipelining -----------------------------------------------------
    def submit_nowait(self, request: msg.Message) -> int:
        """Buffer one frame (with a fresh correlation id); no reply wait.

        Frames accumulate in the client's send buffer until ``drain``/
        ``stream`` flushes them, so a burst crosses the wire as few
        large writes instead of one syscall per request.
        """
        if request.kind not in msg.REQUEST_KINDS:
            raise ServiceError(
                f"{request.kind!r} is a reply kind, not a request"
            )
        cid = self._next_cid
        self._next_cid += 1
        obs = self.instrumentation
        with maybe_span(
            obs,
            "client.submit",
            kind=request.kind,
            transport="socket",
            cid=cid,
        ) as span:
            trace = adopt_trace(obs, span)
            self._write_request(request, cid=cid, trace=trace)
        self._pending.append(cid)
        return cid

    def stream(self):
        """Flush buffered frames; iterate replies in submit order.

        Each reply's echoed correlation id is checked against the
        submit order — a mismatch means the connection lost framing and
        raises :class:`~repro.errors.ServiceError`.
        """
        if self._pending:
            try:
                self._file.flush()
            except OSError as err:
                raise self._unavailable(
                    "dropped the connection", err
                ) from err
        return self._stream_replies()

    def _stream_replies(self):
        while self._pending:
            expected = self._pending[0]
            reply, cid = self._read_envelope()
            if cid != expected:
                self._teardown()
                raise ServiceError(
                    f"pipelined reply correlation mismatch: expected cid"
                    f" {expected}, got {cid!r}"
                )
            self._pending.popleft()
            yield reply

    @property
    def pending(self) -> int:
        """Outstanding pipelined frames not yet drained."""
        return len(self._pending)

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    service=None,
    *,
    host: str | None = None,
    port: int | None = None,
    shards=None,
    protocol: str = "auto",
    instrumentation=None,
):
    """The service front door.

    - ``connect()`` — a private in-process service with defaults;
    - ``connect(service)`` — share an existing
      :class:`~repro.service.server.TopKService`;
    - ``connect(host=..., port=...)`` — a remote socket service;
    - ``connect(shards=[(host, port), ...])`` — a sharded deployment
      (sessions routed by content hash; see
      :class:`~repro.service.shard.ShardedClient`).

    ``protocol`` picks the socket wire preference (``"auto"`` opens
    binary v2 with transparent JSON v1 fallback; see
    :class:`SocketClient`); in-process transports ignore it.
    """
    if shards is not None:
        if service is not None or host is not None or port is not None:
            raise ServiceError(
                "pass shards alone, not with a service or host/port"
            )
        from repro.service.shard import ShardedClient

        return ShardedClient(
            shards, protocol=protocol, instrumentation=instrumentation
        )
    if host is not None or port is not None:
        if service is not None:
            raise ServiceError(
                "pass either a service instance or host/port, not both"
            )
        if host is None or port is None:
            raise ServiceError("socket connection needs both host and port")
        return SocketClient(
            host, port, protocol=protocol, instrumentation=instrumentation
        )
    if service is None:
        from repro.service.server import TopKService

        service = TopKService()
    return InProcessClient(service, instrumentation=instrumentation)
