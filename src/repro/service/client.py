"""Service clients: one surface, two transports.

:class:`InProcessClient` calls :meth:`TopKService.handle` directly
(zero serialization — the load benchmark's path), while
:class:`SocketClient` speaks the JSON-lines protocol over TCP.  Both
raise the same typed :mod:`repro.errors` exceptions and hand out the
same :class:`SessionHandle`, so code written against one runs against
the other; the protocol round-trip test pins that equivalence.

:func:`connect` is the front door (also re-exported as
:func:`repro.api.connect`): give it nothing for a private in-process
service, a :class:`~repro.service.server.TopKService` to share one,
or ``host``/``port`` for a remote one.
"""

from __future__ import annotations

import socket

from repro.errors import ServiceError
from repro.service import messages as msg


class SessionHandle:
    """One tenant session, whichever transport carries it.

    Usable as a context manager (``with client.open_session(...) as s``)
    so the session is closed — freeing its admission slot — on exit.
    """

    def __init__(self, client, session_id: str) -> None:
        self.client = client
        self.session_id = session_id

    def feed(self, readings) -> msg.SampleAccepted:
        """Add one full-network sample to the session window."""
        return self.client.request(
            msg.FeedSample(
                session_id=self.session_id,
                readings=tuple(float(v) for v in readings),
            )
        )

    def query(self, readings) -> msg.QueryReply:
        """Execute the installed plan on this epoch's readings."""
        return self.client.request(
            msg.SubmitQuery(
                session_id=self.session_id,
                readings=tuple(float(v) for v in readings),
            )
        )

    def step(self, readings) -> msg.StepReply:
        """One explore/exploit epoch (engine decides sample vs query)."""
        return self.client.request(
            msg.StepEpoch(
                session_id=self.session_id,
                readings=tuple(float(v) for v in readings),
            )
        )

    def plan(self) -> dict:
        """The installed plan as a serialized payload (see
        :func:`repro.plans.serialize.plan_from_dict`)."""
        return self.client.request(
            msg.GetPlan(session_id=self.session_id)
        ).plan

    def close(self) -> msg.SessionClosed:
        return self.client.request(
            msg.CloseSession(session_id=self.session_id)
        )

    def __enter__(self) -> "SessionHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self.close()
        except ServiceError:  # already closed/expired: nothing to free
            pass


class _BaseClient:
    """Shared request helpers over an abstract ``request``."""

    def request(self, request: msg.Message) -> msg.Message:
        raise NotImplementedError

    def register_topology(self, topology_or_parents) -> str:
        """Install a topology (object or parents vector); returns its id."""
        token = getattr(topology_or_parents, "cache_token", None)
        parents = token() if callable(token) else topology_or_parents
        reply = self.request(
            msg.RegisterTopology(parents=tuple(int(p) for p in parents))
        )
        return reply.topology_id

    def open_session(
        self,
        topology_id: str,
        k: int,
        *,
        planner: str = "lp-lf",
        budget_mj: float = 500.0,
        window_capacity: int = 25,
        replan_every: int = 10,
        track_truth: bool = True,
    ) -> SessionHandle:
        reply = self.request(
            msg.OpenSession(
                topology_id=topology_id,
                k=k,
                planner=planner,
                budget_mj=budget_mj,
                window_capacity=window_capacity,
                replan_every=replan_every,
                track_truth=track_truth,
            )
        )
        return SessionHandle(self, reply.session_id)

    def stats(self) -> msg.StatsReply:
        return self.request(msg.GetStats())


class InProcessClient(_BaseClient):
    """Direct calls into a service living in this process."""

    def __init__(self, service) -> None:
        self.service = service

    def request(self, request: msg.Message) -> msg.Message:
        reply = self.service.handle(request)
        if isinstance(reply, msg.ErrorReply):  # pragma: no cover - handle
            raise msg.error_from_reply(reply)  # raises typed errors itself
        return reply

    def close(self) -> None:
        """Nothing to release (sessions close via their handles)."""


class SocketClient(_BaseClient):
    """JSON-lines protocol over one TCP connection.

    Requests on one connection are answered in order; failures come
    back as :class:`~repro.service.messages.ErrorReply` lines and are
    re-raised as their typed :mod:`repro.errors` classes.
    """

    def __init__(
        self, host: str, port: int, timeout_s: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection(
            (host, port), timeout=timeout_s
        )
        self._file = self._sock.makefile("rw", encoding="utf-8", newline="\n")

    def request(self, request: msg.Message) -> msg.Message:
        if request.kind not in msg.REQUEST_KINDS:
            raise ServiceError(
                f"{request.kind!r} is a reply kind, not a request"
            )
        self._file.write(msg.encode(request) + "\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError(
                f"service at {self.host}:{self.port} closed the connection"
            )
        reply = msg.decode(line)
        if isinstance(reply, msg.ErrorReply):
            raise msg.error_from_reply(reply)
        return reply

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    service=None, *, host: str | None = None, port: int | None = None
):
    """The service front door.

    - ``connect()`` — a private in-process service with defaults;
    - ``connect(service)`` — share an existing
      :class:`~repro.service.server.TopKService`;
    - ``connect(host=..., port=...)`` — a remote JSON-lines service.
    """
    if host is not None or port is not None:
        if service is not None:
            raise ServiceError(
                "pass either a service instance or host/port, not both"
            )
        if host is None or port is None:
            raise ServiceError("socket connection needs both host and port")
        return SocketClient(host, port)
    if service is None:
        from repro.service.server import TopKService

        service = TopKService()
    return InProcessClient(service)
