"""repro — sampling-based optimization of top-k queries in sensor networks.

A full reproduction of Silberstein, Braynard, Ellis, Munagala & Yang,
"A Sampling-Based Approach to Optimizing Top-k Queries in Sensor
Networks" (ICDE 2006): the PROSPECTOR family of query planners
(Greedy, LP−LF, LP+LF, Proof, Exact), the naive and oracle baselines,
and every substrate they need — an LP modeling layer with two solver
backends, a tree-topology sensor network with a MICA2-style energy
model, a message-level simulator with failure injection, sample-matrix
maintenance, workload generators, and the experiment harness that
regenerates each figure of the paper's evaluation.

Quickstart
----------
>>> import numpy as np
>>> from repro import (EnergyModel, LPLFPlanner, PlanningContext,
...                    SampleMatrix, random_topology)
>>> rng = np.random.default_rng(7)
>>> topology = random_topology(40, rng=rng)
>>> samples = SampleMatrix(rng.normal(25, 3, size=(20, 40)), k=5)
>>> context = PlanningContext(topology, EnergyModel.mica2(), samples,
...                           k=5, budget=60.0)
>>> plan = LPLFPlanner().plan(context)
>>> plan.static_cost(context.energy) <= context.budget
True
"""

from repro.analysis import compare_plans, explain_plan
from repro.datagen import (
    GaussianField,
    IntelLabSurrogate,
    Trace,
    ZoneWorkload,
    intel_lab_network,
    random_gaussian_field,
)
from repro.errors import (
    AdmissionError,
    BudgetError,
    ModelError,
    ObservabilityError,
    OverloadError,
    PlanError,
    ReproError,
    SamplingError,
    ServiceError,
    SessionError,
    SolverError,
    TopologyError,
    TraceError,
)
from repro.lp import available_backends, get_backend
from repro.network import (
    EnergyModel,
    GHSOutcome,
    LinkFailureModel,
    Topology,
    balanced_tree,
    build_mst,
    grid_topology,
    line_topology,
    random_topology,
    remove_node,
    star_topology,
    zoned_topology,
)
from repro.planners import (
    DPPlanner,
    ExactOutcome,
    ExactTopK,
    GreedyPlanner,
    LPLFPlanner,
    LPNoLFPlanner,
    OraclePlanner,
    OracleProofPlanner,
    PlannerConfig,
    PlanningContext,
    ProofPlanner,
    WeightedMajorityPlanner,
)
from repro.obs import (
    EnergyLedger,
    EventTrace,
    Instrumentation,
    MetricsRegistry,
    SpanTracer,
    chrome_trace_json,
    prometheus_text,
    render_flame,
    render_report,
)
from repro.plans import (
    QueryPlan,
    ThresholdPlan,
    ThresholdPlanner,
    count_topk_hits,
    execute_plan,
    execute_proof_plan,
    execute_threshold_plan,
    expected_hits,
    naive_k_collect,
    naive_one_collect,
)
from repro.queries import (
    AnswerMatrix,
    ClusterTopKQuery,
    QuantileQuery,
    SelectionQuery,
    SubsetQueryPlanner,
    TopKQuery,
    run_subset_query,
)
from repro.query import (
    AuditResult,
    EngineConfig,
    QueryResult,
    TopKEngine,
    accuracy,
)
from repro.sampling import AdaptiveSampler, SampleMatrix, SampleWindow
from repro.service import (
    InProcessClient,
    ServiceConfig,
    ServiceThread,
    SessionHandle,
    SharedPlanCache,
    SocketClient,
    TopKService,
)
from repro.simulation import (
    BatchSimulationReport,
    BatchSimulator,
    SimulationReport,
    Simulator,
)
from repro.stochastic import (
    ScenarioSet,
    SimpleTopKInstance,
    TwoStageSteinerTree,
)

__version__ = "1.1.0"

__all__ = [
    "AdaptiveSampler",
    "AdmissionError",
    "AuditResult",
    "AnswerMatrix",
    "BatchSimulationReport",
    "BatchSimulator",
    "BudgetError",
    "ClusterTopKQuery",
    "DPPlanner",
    "EnergyLedger",
    "EnergyModel",
    "EngineConfig",
    "EventTrace",
    "ExactOutcome",
    "ExactTopK",
    "GHSOutcome",
    "GaussianField",
    "GreedyPlanner",
    "InProcessClient",
    "Instrumentation",
    "IntelLabSurrogate",
    "LPLFPlanner",
    "LPNoLFPlanner",
    "LinkFailureModel",
    "MetricsRegistry",
    "ModelError",
    "ObservabilityError",
    "OraclePlanner",
    "OracleProofPlanner",
    "OverloadError",
    "PlanError",
    "PlannerConfig",
    "PlanningContext",
    "ProofPlanner",
    "QuantileQuery",
    "QueryPlan",
    "QueryResult",
    "ReproError",
    "SampleMatrix",
    "SampleWindow",
    "SamplingError",
    "ScenarioSet",
    "SelectionQuery",
    "ServiceConfig",
    "ServiceError",
    "ServiceThread",
    "SessionError",
    "SessionHandle",
    "SharedPlanCache",
    "SimpleTopKInstance",
    "SimulationReport",
    "Simulator",
    "SocketClient",
    "SolverError",
    "SpanTracer",
    "SubsetQueryPlanner",
    "ThresholdPlan",
    "ThresholdPlanner",
    "TopKEngine",
    "TopKQuery",
    "TopKService",
    "TwoStageSteinerTree",
    "WeightedMajorityPlanner",
    "Topology",
    "TopologyError",
    "Trace",
    "TraceError",
    "ZoneWorkload",
    "accuracy",
    "available_backends",
    "balanced_tree",
    "build_mst",
    "chrome_trace_json",
    "compare_plans",
    "count_topk_hits",
    "execute_plan",
    "execute_proof_plan",
    "execute_threshold_plan",
    "expected_hits",
    "explain_plan",
    "get_backend",
    "grid_topology",
    "intel_lab_network",
    "line_topology",
    "naive_k_collect",
    "naive_one_collect",
    "prometheus_text",
    "random_gaussian_field",
    "random_topology",
    "remove_node",
    "render_flame",
    "render_report",
    "run_subset_query",
    "star_topology",
    "zoned_topology",
]
