"""Contention-zone workloads (paper §5, Figures 5-7).

The scenario behind Figure 6: ``z`` zones around the network perimeter,
each holding ``2k`` nodes.  Nodes outside zones have a fixed mean
``mu`` and low variance; nodes inside a zone have lower means but
variances tuned so each has probability ``p = 1 / (2 z)`` of exceeding
``mu``.  The expected number of zone nodes above ``mu`` is then
``z * 2k * p = k``: each zone supplies top values, but *which* of its
nodes supply them varies sample to sample — the negative correlation
that only local filtering exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from repro.datagen.gaussian import GaussianField
from repro.datagen.trace import Trace
from repro.errors import TraceError
from repro.network.builder import zone_members, zone_relays, zoned_topology
from repro.network.topology import Topology


@dataclass
class ZoneWorkload:
    """A contention-zone topology plus its value distribution.

    Parameters
    ----------
    num_zones:
        ``z``; the paper uses 6 in Figure 5 and sweeps 1..6 in Figure 7.
    k:
        Query size; each zone holds ``2k`` nodes.
    background_mean / background_std:
        The fixed distribution of non-zone nodes (``mu`` and its low
        variance).
    zone_mean:
        Zone nodes' (lower) mean.
    relay_hops:
        Length of the relay chain from the root to each zone.
    """

    num_zones: int = 6
    k: int = 10
    background_mean: float = 50.0
    background_std: float = 0.5
    zone_mean: float = 45.0
    relay_hops: int = 3
    exceed_probability: float | None = None
    topology: Topology = field(init=False)
    fieldmodel: GaussianField = field(init=False)

    def __post_init__(self) -> None:
        if self.num_zones < 1 or self.k < 1:
            raise TraceError("num_zones and k must be >= 1")
        if self.zone_mean >= self.background_mean:
            raise TraceError("zone mean must sit below the background mean")
        self.topology = zoned_topology(
            self.num_zones, zone_size=2 * self.k, relay_hops=self.relay_hops
        )
        p = self.exceed_probability
        if p is None:
            # clamped below 1/2: at p = 1/2 the required variance would
            # be infinite (the single-zone corner of Figure 7)
            p = min(0.45, 1.0 / (2.0 * self.num_zones))
        if not 0.0 < p < 0.5:
            raise TraceError("exceed probability must be in (0, 0.5)")
        # sigma such that P(N(zone_mean, sigma) > background_mean) = p
        sigma = (self.background_mean - self.zone_mean) / stats.norm.ppf(1.0 - p)

        n = self.topology.n
        means = np.full(n, self.background_mean)
        stds = np.full(n, self.background_std)
        for zone in self.members():
            for node in zone:
                means[node] = self.zone_mean
                stds[node] = sigma
        # the root measures too; keep it background-like
        self.fieldmodel = GaussianField(means, stds)

    def members(self) -> list[list[int]]:
        """Node ids of each zone."""
        return zone_members(
            self.num_zones, zone_size=2 * self.k, relay_hops=self.relay_hops
        )

    def relays(self) -> list[int]:
        return zone_relays(
            self.num_zones, zone_size=2 * self.k, relay_hops=self.relay_hops
        )

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return self.fieldmodel.sample(rng)

    def trace(self, epochs: int, rng: np.random.Generator) -> Trace:
        return self.fieldmodel.trace(epochs, rng)
