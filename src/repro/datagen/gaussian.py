"""Independent Gaussian sensor fields (paper §5, Figures 3-4).

"Sensor values in this synthetic data experiment are drawn from
independent normal distributions whose means and variances are chosen
randomly from small ranges."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.trace import Trace
from repro.errors import TraceError


@dataclass(frozen=True)
class GaussianField:
    """Per-node independent normal distributions."""

    means: np.ndarray
    stds: np.ndarray

    def __post_init__(self) -> None:
        if self.means.shape != self.stds.shape or self.means.ndim != 1:
            raise TraceError("means and stds must be equal-length vectors")
        if np.any(self.stds < 0):
            raise TraceError("standard deviations must be non-negative")

    @property
    def num_nodes(self) -> int:
        return int(self.means.shape[0])

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """One epoch of readings."""
        return rng.normal(self.means, self.stds)

    def trace(self, epochs: int, rng: np.random.Generator) -> Trace:
        """An i.i.d. trace of the given length."""
        if epochs < 1:
            raise TraceError("epochs must be >= 1")
        return Trace(rng.normal(self.means, self.stds, size=(epochs, self.num_nodes)))

    def scaled_variance(self, factor: float) -> "GaussianField":
        """Same means, standard deviations scaled by sqrt(factor) —
        the variance knob of Figure 4."""
        if factor < 0:
            raise TraceError("variance factor must be non-negative")
        return GaussianField(self.means, self.stds * np.sqrt(factor))


def random_gaussian_field(
    num_nodes: int,
    rng: np.random.Generator,
    mean_range: tuple[float, float] = (20.0, 30.0),
    std_range: tuple[float, float] = (1.0, 3.0),
) -> GaussianField:
    """Means and variances chosen uniformly from small ranges (paper §5)."""
    if num_nodes < 1:
        raise TraceError("num_nodes must be >= 1")
    means = rng.uniform(*mean_range, size=num_nodes)
    stds = rng.uniform(*std_range, size=num_nodes)
    return GaussianField(means, stds)
