"""Workload generators for the paper's experiments.

- :mod:`repro.datagen.gaussian` — independent normal readings with
  randomly drawn means/variances (Figures 3 and 4);
- :mod:`repro.datagen.zones` — the "contention zone" negative
  correlation scenario (Figures 5-7);
- :mod:`repro.datagen.intel` — a synthetic surrogate of the Intel
  Berkeley Lab temperature trace (Figure 9; see DESIGN.md §4 for the
  substitution rationale);
- :mod:`repro.datagen.trace` — the epoch-trace container shared by all.
"""

from repro.datagen.gaussian import GaussianField, random_gaussian_field
from repro.datagen.intel import IntelLabSurrogate, intel_lab_network
from repro.datagen.trace import Trace
from repro.datagen.zones import ZoneWorkload

__all__ = [
    "GaussianField",
    "IntelLabSurrogate",
    "Trace",
    "ZoneWorkload",
    "intel_lab_network",
    "random_gaussian_field",
]
