"""Parser for the real Intel Berkeley Lab trace format.

The original dataset (http://db.csail.mit.edu/labdata/labdata.html, not
redistributable here) is a whitespace-separated text file with one
reading per line::

    date        time             epoch  moteid  temperature humidity light voltage
    2004-02-28  00:59:16.02785   3      1       19.9884     37.09    45.08 2.69964

This module turns that file into the :class:`~repro.datagen.trace.Trace`
the rest of the library consumes: readings are pivoted to an
``epochs x motes`` matrix, motes with too few readings are dropped,
missing values are filled with the neighbour-epoch average (the paper's
§5 repair rule), and mote ids are renumbered densely with the query
station as node 0.

With the real file on disk, the Figure 9 experiment can run against it
instead of the synthetic surrogate::

    trace, mote_ids = load_intel_trace("data.txt")
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.datagen.trace import Trace
from repro.errors import TraceError

TEMPERATURE_COLUMN = 4
_PLAUSIBLE_RANGE = (-10.0, 60.0)  # the raw trace contains sensor glitches


@dataclass(frozen=True)
class ParsedReading:
    """One line of the raw trace."""

    epoch: int
    mote: int
    temperature: float


def parse_line(line: str) -> ParsedReading | None:
    """Parse one raw line; None for malformed/incomplete rows.

    The real file contains truncated lines and occasional garbage; the
    loader's contract is to skip them silently (they are a documented
    property of the dataset), not to crash.
    """
    fields = line.split()
    if len(fields) < TEMPERATURE_COLUMN + 1:
        return None
    try:
        epoch = int(fields[2])
        mote = int(fields[3])
        temperature = float(fields[TEMPERATURE_COLUMN])
    except ValueError:
        return None
    if epoch < 0 or mote < 1:
        return None
    if not _PLAUSIBLE_RANGE[0] <= temperature <= _PLAUSIBLE_RANGE[1]:
        return None  # voltage glitches produce readings like 122.15
    return ParsedReading(epoch=epoch, mote=mote, temperature=temperature)


def load_intel_trace(
    path: str | Path,
    max_epochs: int | None = None,
    min_coverage: float = 0.5,
) -> tuple[Trace, list[int]]:
    """Load the raw file into a Trace plus the retained raw mote ids.

    Parameters
    ----------
    max_epochs:
        Keep only the first this-many epochs (the file holds weeks of
        data; experiments need dozens of epochs).
    min_coverage:
        Motes reporting in fewer than this fraction of the retained
        epochs are dropped (some motes died early in the deployment).

    Returns
    -------
    (trace, mote_ids):
        ``trace.values[e, i]`` is the temperature of raw mote
        ``mote_ids[i]`` at the ``e``-th retained epoch; node 0 of the
        resulting network corresponds to ``mote_ids[0]``.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")

    readings: dict[tuple[int, int], float] = {}
    epochs: set[int] = set()
    motes: set[int] = set()
    with open(path) as handle:
        for line in handle:
            parsed = parse_line(line)
            if parsed is None:
                continue
            readings[parsed.epoch, parsed.mote] = parsed.temperature
            epochs.add(parsed.epoch)
            motes.add(parsed.mote)
    if not readings:
        raise TraceError(f"no parsable readings in {path}")

    epoch_list = sorted(epochs)
    if max_epochs is not None:
        epoch_list = epoch_list[:max_epochs]
    if len(epoch_list) < 3:
        raise TraceError("need at least 3 epochs to repair missing values")

    mote_list = sorted(motes)
    coverage = {
        mote: sum(1 for e in epoch_list if (e, mote) in readings)
        / len(epoch_list)
        for mote in mote_list
    }
    kept = [m for m in mote_list if coverage[m] >= min_coverage]
    if len(kept) < 2:
        raise TraceError(
            f"fewer than 2 motes meet the {min_coverage:.0%} coverage bar"
        )

    values = np.full((len(epoch_list), len(kept)), np.nan)
    for row, epoch in enumerate(epoch_list):
        for col, mote in enumerate(kept):
            value = readings.get((epoch, mote))
            if value is not None:
                values[row, col] = value

    values = fill_missing(values)
    return Trace(values), kept


def fill_missing(values: np.ndarray) -> np.ndarray:
    """The paper's repair rule, robust to runs of missing epochs.

    A missing reading is replaced by the average of the nearest
    non-missing readings before and after it (either side alone at the
    trace boundaries).  A mote missing for an entire trace would be
    unrecoverable, but the coverage filter upstream prevents that.
    """
    filled = values.copy()
    epochs, motes = filled.shape
    for mote in range(motes):
        column = filled[:, mote]
        missing = np.isnan(column)
        if not missing.any():
            continue
        if missing.all():
            raise TraceError(f"mote column {mote} has no readings at all")
        known = np.flatnonzero(~missing)
        for epoch in np.flatnonzero(missing):
            before = known[known < epoch]
            after = known[known > epoch]
            neighbours = []
            if before.size:
                neighbours.append(column[before[-1]])
            if after.size:
                neighbours.append(column[after[0]])
            column[epoch] = float(np.mean(neighbours))
    return filled
